#!/usr/bin/env python
"""Link and reference checker for the markdown docs (stdlib only).

Validates, across ``README.md`` and ``docs/*.md``:

* **Relative links** ``[text](path)`` resolve to an existing file or
  directory (links that deliberately climb above the repo, like the CI
  badge's ``../../actions/...``, are skipped — that is the GitHub
  convention for repo-relative service URLs).
* **Anchors** ``[text](#section)`` and ``[text](file.md#section)``
  match a heading slug in the target document (GitHub slug rules:
  lowercase, punctuation dropped, spaces to hyphens).
* **Code references** — backticked repo paths such as
  ``src/repro/service/contract.py`` name files that exist, so renames
  can't silently strand the prose.

Exit status is non-zero when anything dangles; every problem is
reported as ``file:line: message``.

Run:  python tools/check_docs.py [files...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target) — target captured without the
#: optional "title" suffix; images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Backticked repo paths: `src/...`, `tests/...`, etc. (optionally with
#: a :line suffix as used in review prose).
CODE_PATH = re.compile(
    r"`((?:src|tests|docs|examples|tools|benchmarks)/[\w./-]+?)(?::\d+)?`"
)

HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def display(path: Path) -> str:
    """Repo-relative path when possible, else the path as given."""
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs defined by a markdown file's headings."""
    slugs: set[str] = set()
    fenced = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        match = HEADING.match(line)
        if match:
            base = slugify(match.group(1))
            slug, n = base, 1
            while slug in slugs:  # duplicate headings get -1, -2, ...
                slug, n = f"{base}-{n}", n + 1
            slugs.add(slug)
    return slugs


def check_file(path: Path) -> list[str]:
    """Return a list of ``file:line: message`` problems in one doc."""
    problems: list[str] = []
    slug_cache: dict[Path, set[str]] = {}

    def slugs_of(target: Path) -> set[str]:
        if target not in slug_cache:
            slug_cache[target] = heading_slugs(target)
        return slug_cache[target]

    fenced = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue

        for match in LINK.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            base, _, anchor = target.partition("#")
            if base:
                resolved = (path.parent / base).resolve()
                if not str(resolved).startswith(str(REPO)):
                    continue  # GitHub repo-relative URL (e.g. CI badge)
                if not resolved.exists():
                    problems.append(
                        f"{display(path)}:{lineno}: "
                        f"broken link target '{target}'"
                    )
                    continue
            else:
                resolved = path
            if anchor and resolved.suffix == ".md":
                if anchor not in slugs_of(resolved):
                    problems.append(
                        f"{display(path)}:{lineno}: "
                        f"missing anchor '#{anchor}' in "
                        f"{display(resolved)}"
                    )

        for match in CODE_PATH.finditer(line):
            ref = REPO / match.group(1)
            if not ref.exists():
                problems.append(
                    f"{display(path)}:{lineno}: "
                    f"dangling code reference '{match.group(1)}'"
                )

    return problems


def main(argv: list[str]) -> int:
    """Check the given files (default: README.md and docs/*.md)."""
    files = [Path(arg).resolve() for arg in argv] or [
        REPO / "README.md",
        *sorted((REPO / "docs").glob("*.md")),
    ]
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = ", ".join(display(f) for f in files)
    if problems:
        print(f"{len(problems)} problem(s) across {checked}")
        return 1
    print(f"docs check clean: {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
