#!/usr/bin/env python
"""Metric-catalog lint: code and docs must agree, both directions.

Cross-checks three sources of truth:

* **Code** — every ``repro_*`` metric family registered anywhere under
  ``src/repro`` (the ``REGISTRY.counter/gauge/histogram`` calls);
* **Catalog** — every backticked ``repro_*`` name in the metric tables
  of ``docs/OBSERVABILITY.md``.

Failures:

* a family registered in code but missing from the catalog
  (undocumented metric);
* a catalog entry naming no registered family (stale doc);
* a family name violating the Prometheus conventions the catalog
  promises (counters end in ``_total``, timing histograms in
  ``_seconds``, gauges carry neither suffix).

With ``--validate TRACE.jsonl EXPOSITION.prom`` the script also checks
CI obs-smoke artifacts: every trace line parses as a span record with
the documented schema keys, and the exposition file parses as
Prometheus text format whose sample names belong to a known family.

Exit status is non-zero when anything dangles; every problem is
reported on its own line.

Run:  python tools/check_metrics.py [--validate TRACE EXPOSITION]
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: One registration call: REGISTRY.counter("repro_x_total", ...) —
#: possibly via an alias (obs_metrics.REGISTRY / get_registry()).
REGISTRATION = re.compile(
    r"\.(counter|gauge|histogram)\(\s*\n?\s*\"(repro_[a-z0-9_]+)\""
)

#: A catalog row: | `repro_x_total` | counter | ... |
CATALOG_ROW = re.compile(r"^\|\s*`(repro_[a-z0-9_]+)`\s*\|\s*(\w+)\s*\|")

#: Span-record schema (docs/OBSERVABILITY.md, "Span taxonomy").
SPAN_KEYS = {"name", "id", "parent", "ts", "duration_s", "attrs"}

#: Prometheus text-format sample line: name{labels} value
SAMPLE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{.*\})?\s+\S+$")


def registered_families() -> dict[str, str]:
    """Scan ``src/repro`` for registrations: name -> instrument kind."""
    families: dict[str, str] = {}
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        for kind, name in REGISTRATION.findall(path.read_text()):
            families[name] = kind
    return families


def documented_families() -> dict[str, str]:
    """Parse the catalog tables: name -> documented type."""
    doc = REPO / "docs" / "OBSERVABILITY.md"
    documented: dict[str, str] = {}
    for line in doc.read_text().splitlines():
        match = CATALOG_ROW.match(line.strip())
        if match:
            documented[match.group(1)] = match.group(2)
    return documented


def check_catalog() -> list[str]:
    """Return every code <-> catalog disagreement."""
    problems: list[str] = []
    code = registered_families()
    docs = documented_families()
    for name in sorted(set(code) - set(docs)):
        problems.append(
            f"{name}: registered in code ({code[name]}) but missing from "
            f"docs/OBSERVABILITY.md"
        )
    for name in sorted(set(docs) - set(code)):
        problems.append(
            f"{name}: documented in docs/OBSERVABILITY.md but never "
            f"registered in src/repro"
        )
    for name, kind in sorted(code.items()):
        if kind == "counter" and not name.endswith("_total"):
            problems.append(f"{name}: counter must end in _total")
        if kind == "histogram" and not name.endswith("_seconds"):
            problems.append(f"{name}: timing histogram must end in _seconds")
        if kind == "gauge" and name.endswith(("_total", "_seconds")):
            problems.append(f"{name}: gauge must not carry a counter/histogram suffix")
        if docs.get(name, kind) != kind:
            problems.append(
                f"{name}: documented as {docs[name]} but registered as {kind}"
            )
    return problems


def check_trace(path: Path) -> list[str]:
    """Validate one ``--trace`` JSONL artifact against the span schema."""
    problems: list[str] = []
    lines = path.read_text().splitlines()
    if not lines:
        problems.append(f"{path}: trace file is empty")
    for number, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{number}: invalid JSON ({exc})")
            continue
        if set(record) != SPAN_KEYS:
            problems.append(
                f"{path}:{number}: span keys {sorted(record)} != "
                f"{sorted(SPAN_KEYS)}"
            )
        elif record["duration_s"] < 0:
            problems.append(f"{path}:{number}: negative duration_s")
    return problems


def check_exposition(path: Path) -> list[str]:
    """Validate one ``--metrics`` artifact as Prometheus text format."""
    problems: list[str] = []
    known = set(registered_families())
    sample_names: set[str] = set()
    for number, line in enumerate(path.read_text().splitlines(), 1):
        if not line or line.startswith("#"):
            continue
        match = SAMPLE.match(line)
        if match is None:
            problems.append(f"{path}:{number}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base not in known and name not in known:
            problems.append(f"{path}:{number}: unknown family for {name!r}")
        sample_names.add(base if base in known else name)
    if not sample_names:
        problems.append(f"{path}: no samples found")
    return problems


def main(argv: list[str]) -> int:
    problems = check_catalog()
    if argv and argv[0] == "--validate":
        if len(argv) != 3:
            print("usage: check_metrics.py [--validate TRACE EXPOSITION]")
            return 2
        problems += check_trace(Path(argv[1]))
        problems += check_exposition(Path(argv[2]))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} metric-catalog problem(s)")
        return 1
    suffix = " + artifacts" if argv else ""
    print(f"metric catalog OK{suffix}: code and docs agree")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
