"""Command-line interface: ``sunmap <command>``.

Commands mirror the tool's phases and the paper's experiments:

* ``apps`` / ``topologies`` / ``library`` — inventory listings;
* ``map`` — map one application onto one topology;
* ``select`` — full phase-1/2 topology selection (Figures 6, 7(b));
  ``--synthesize`` races automatically synthesized custom fabrics
  against the library in the same table;
* ``synthesize`` — application-specific topology synthesis: generate
  custom fabrics from the core graph, rank them by the objective, and
  optionally save the winner for later re-evaluation
  (``--save-topology``);
* ``explore`` — routing-function bandwidth sweep + Pareto points
  (Figure 9);
* ``simulate`` — cycle-accurate latency measurement: one point with
  ``--rate`` (Figures 8(b), 10(c)), or a full engine-parallel campaign
  with ``--rates``/``--patterns``/``--seeds``/``--jobs`` (latency–
  throughput curves with saturation detection);
* ``generate`` — phase-3 SystemC generation (Figure 11);
* ``serve`` / ``submit`` — the async design service and its client:
  concurrent JSON requests against one warm, optionally persistent,
  evaluation cache (``docs/SERVICE_API.md``).

Engine-backed commands accept ``--cache SPEC`` (``sqlite:PATH`` /
``dir:PATH``) to persist evaluations across runs — a warm store answers
repeated work without recomputing, with bit-identical results. They
also accept ``--journal PATH`` to append every completed evaluation to
a run journal as it finishes; after a crash or a kill, re-running the
same command with ``--resume`` replays the journaled prefix and only
computes what is missing — the output is bit-identical to an
uninterrupted run.

Observability (``docs/OBSERVABILITY.md``): ``--trace PATH`` appends
structured spans to a JSONL file, ``--metrics PATH`` dumps the process
metrics registry in Prometheus text format on exit, and the global
``--log-level``/``-v`` flags tune the unified ``repro`` logger. All of
it is passive — traced runs produce bit-identical results.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APPLICATIONS, load_application
from repro.core.constraints import Constraints
from repro.core.exploration import (
    area_power_exploration,
    minimum_bandwidth_per_routing,
)
from repro.core.mapper import map_onto
from repro.core.selector import select_topology
from repro.engine.engine import ExplorationEngine
from repro.engine.journal import open_journal
from repro.errors import ReproError
from repro.physical.library import AreaPowerLibrary
from repro.simulation.stats import run_measurement
from repro.simulation.traffic import (
    PATTERNS,
    SyntheticTraffic,
    adversarial_pattern,
)
from repro.sunmap import run_sunmap
from repro.topology.library import available_topologies, make_topology


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--app", choices=sorted(APPLICATIONS), help="built-in application"
    )
    parser.add_argument(
        "--app-file", default=None,
        help="JSON core-graph file (see repro.io schema)",
    )
    parser.add_argument(
        "--routing", default="MP", choices=["DO", "MP", "SM", "SA"],
        help="routing function (paper codes)",
    )
    parser.add_argument(
        "--objective", default="hops",
        choices=["hops", "area", "power", "bandwidth"],
        help="mapping objective",
    )
    parser.add_argument(
        "--capacity", type=float, default=500.0,
        help="link capacity in MB/s (paper default 500)",
    )


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel worker processes (1 = serial, 0 = one per CPU); "
        "results are identical to the serial run",
    )
    parser.add_argument(
        "--cache", default=None, metavar="SPEC",
        help="persistent evaluation-cache backend: 'sqlite:PATH' or "
        "'dir:PATH' (default: in-memory). A warm store skips "
        "evaluations from earlier runs; results are identical either "
        "way",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append-only run journal (JSONL): each completed "
        "evaluation is recorded as it finishes, so an interrupted "
        "run can be resumed with --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from an existing --journal file: journaled "
        "results replay bit-identically and only missing work is "
        "computed (a torn final line from a crash is truncated)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append structured spans (engine passes, per-job timings, "
        "campaign runs) to a JSONL trace file; tracing is passive and "
        "never changes results",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the process metrics registry in Prometheus text "
        "format to PATH when the command finishes",
    )


def _journal(args):
    """Open the run journal requested by ``--journal``/``--resume``."""
    return open_journal(
        getattr(args, "journal", None),
        resume=getattr(args, "resume", False),
    )


def _close_journal(journal) -> None:
    """Report journal counters and release the file handle."""
    if journal is None:
        return
    print(str(journal.stats), file=sys.stderr)
    journal.close()


def _constraints(args) -> Constraints:
    return Constraints(link_capacity_mb_s=args.capacity)


def _load_app(args):
    if getattr(args, "app_file", None):
        from repro.io import load_core_graph

        return load_core_graph(args.app_file)
    if args.app:
        return load_application(args.app)
    raise ReproError("provide --app or --app-file")


def cmd_apps(_args) -> int:
    for name in sorted(APPLICATIONS):
        app = load_application(name)
        print(
            f"{name:10s} cores={app.num_cores:3d} flows={app.num_flows:3d} "
            f"total={app.total_bandwidth():8.1f} MB/s"
        )
    return 0


def cmd_topologies(args) -> int:
    for name in available_topologies():
        try:
            topo = make_topology(name, args.cores)
        except ReproError as exc:
            print(f"{name:12s} (not available for {args.cores} cores: {exc})")
            continue
        rs = topo.resource_summary()
        print(
            f"{name:12s} {topo.name:22s} slots={topo.num_slots:3d} "
            f"switches={rs.num_switches:3d} links={rs.num_links:3d}"
        )
    return 0


def cmd_library(args) -> int:
    library = AreaPowerLibrary()
    print(f"{'config':>8} {'area mm2':>10} {'pJ/bit':>8} {'static mW':>10}")
    for entry in library.table(max_radix=args.max_radix):
        cfg = entry.config
        print(
            f"{cfg.n_in}x{cfg.n_out:>6} {entry.area_mm2:>10.4f} "
            f"{entry.energy_pj_per_bit:>8.3f} {entry.static_power_mw:>10.2f}"
        )
    return 0


def _load_topology_arg(args, app):
    """Resolve --topology / --topology-file into a topology instance."""
    if getattr(args, "topology_file", None):
        from repro.io import load_topology

        return load_topology(args.topology_file)
    if getattr(args, "topology", None):
        return make_topology(args.topology, app.num_cores)
    raise ReproError("provide --topology or --topology-file")


def cmd_map(args) -> int:
    app = _load_app(args)
    topology = _load_topology_arg(args, app)
    evaluation = map_onto(
        app,
        topology,
        routing=args.routing,
        objective=args.objective,
        constraints=_constraints(args),
    )
    row = evaluation.summary_row()
    for key, value in row.items():
        print(f"{key:22s} {value}")
    print("assignment:")
    for core_index, slot in sorted(evaluation.assignment.items()):
        print(f"  {app.core(core_index).name:14s} -> slot {slot}")
    return 0


def _save_best_synthesized(selection, path) -> None:
    """Write the best synthesized fabric of a selection to JSON."""
    from repro.io import save_topology

    synthesized = {
        name: ev
        for name, ev in selection.feasible.items()
        if name in set(selection.synthesized)
    }
    if not synthesized:
        print("no feasible synthesized fabric to save", file=sys.stderr)
        return
    best = min(synthesized, key=lambda n: (synthesized[n].cost, n))
    save_topology(synthesized[best].topology, path)
    print(f"synthesized fabric {best} saved to {path}")


def cmd_select(args) -> int:
    app = _load_app(args)
    topologies = None
    if args.topology_file:
        from repro.io import load_topology
        from repro.topology.library import standard_library

        topologies = standard_library(app.num_cores)
        topologies.append(load_topology(args.topology_file))
    synthesize = args.synthesize or None
    if synthesize and args.fault_tolerance:
        from repro.synthesis import SynthesisConfig

        synthesize = SynthesisConfig(fault_tolerance=args.fault_tolerance)
    journal = _journal(args)
    try:
        if args.fallback:
            report = run_sunmap(
                app,
                routing=args.routing,
                objective=args.objective,
                constraints=_constraints(args),
                topologies=topologies,
                generate=False,
                jobs=args.jobs,
                synthesize=synthesize,
                cache_backend=args.cache,
                journal=journal,
            )
            print(report.summary())
            if args.save_topology:
                _save_best_synthesized(report.selection, args.save_topology)
            return 0
        selection = select_topology(
            app,
            topologies=topologies,
            routing=args.routing,
            objective=args.objective,
            constraints=_constraints(args),
            jobs=args.jobs,
            synthesize=synthesize,
            cache_backend=args.cache,
            journal=journal,
        )
    finally:
        _close_journal(journal)
    if args.markdown:
        from repro.report import selection_to_markdown

        print(selection_to_markdown(selection))
    else:
        print(selection.format_table())
    print(f"best: {selection.best_name or 'NO FEASIBLE TOPOLOGY'}")
    if args.save:
        from repro.io import save_selection

        save_selection(selection, args.save)
        print(f"selection saved to {args.save}")
    if args.save_topology:
        _save_best_synthesized(selection, args.save_topology)
    return 0


def cmd_synthesize(args) -> int:
    from repro.synthesis import SynthesisConfig, synthesize_topologies

    app = _load_app(args)
    config = SynthesisConfig(
        strategies=_csv(args.strategies, str),
        concentrations=_csv(args.concentrations, int),
        max_switch_degrees=_csv(args.degrees, int),
        max_candidates=args.max_candidates,
        fault_tolerance=args.fault_tolerance,
    )
    journal = _journal(args)
    try:
        result = synthesize_topologies(
            app,
            config=config,
            routing=args.routing,
            objective=args.objective,
            constraints=_constraints(args),
            jobs=args.jobs,
            cache_backend=args.cache,
            journal=journal,
        )
    finally:
        _close_journal(journal)
    print(
        f"synthesized candidates for {app.name} "
        f"[{args.routing}/{result.objective_name}]:"
    )
    print(result.format_table())
    if result.pruned:
        print(f"({len(result.pruned)} candidates pruned before evaluation)")
    best = result.best
    if best is None:
        print("best: NO FEASIBLE SYNTHESIZED FABRIC")
        return 0
    print(f"best: {best.name} (cost {best.cost:.3f})")
    if args.save_topology:
        from repro.io import save_topology

        save_topology(best.topology, args.save_topology)
        print(f"synthesized fabric saved to {args.save_topology}")
    return 0


def cmd_explore(args) -> int:
    app = _load_app(args)
    topology = make_topology(args.topology, app.num_cores)
    journal = _journal(args)
    try:
        engine = ExplorationEngine(
            jobs=args.jobs, cache_backend=args.cache, journal=journal
        )
        print(
            f"minimum link bandwidth per routing function on "
            f"{topology.name}:"
        )
        sweep = minimum_bandwidth_per_routing(app, topology, engine=engine)
        for code, value in sweep.items():
            text = "unsupported" if value is None else f"{value:8.1f} MB/s"
            print(f"  {code}: {text}")
        points, front = area_power_exploration(
            app,
            topology,
            routing=args.routing,
            constraints=_constraints(args),
            engine=engine,
        )
        print(f"area-power exploration: {len(points)} feasible mappings, "
              f"{len(front)} Pareto points:")
        for p in front:
            print(
                f"  area {p.area_mm2:7.2f} mm2   power {p.power_mw:7.1f} mW"
            )
        return 0
    finally:
        _close_journal(journal)


def _csv(text: str, cast):
    try:
        return tuple(cast(part) for part in text.split(",") if part)
    except ValueError:
        raise ReproError(
            f"expected a comma-separated list of {cast.__name__} values, "
            f"got {text!r}"
        ) from None


def cmd_simulate(args) -> int:
    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _cmd_simulate(args)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            print("\n--- cProfile (top 25 by cumulative time) ---",
                  file=sys.stderr)
            stats.print_stats(25)
            if args.profile:
                stats.dump_stats(args.profile)
                print(f"profile data written to {args.profile} "
                      f"(inspect with python -m pstats)", file=sys.stderr)
    return _cmd_simulate(args)


def _cmd_simulate(args) -> int:
    app = load_application(args.app)
    topology = make_topology(args.topology, app.num_cores)
    if args.rates is None:
        # Single-point measurement (the original Figure 8(b) probe),
        # optionally on a degraded fabric (first fault seed only;
        # campaign mode sweeps every seed).
        if args.faults:
            from repro.faults import FaultedTopology, sample_faults

            fault_seed = (_csv(args.fault_seeds, int) or (1,))[0]
            topology = FaultedTopology(
                topology,
                sample_faults(topology, args.faults, seed=fault_seed),
            )
        pattern = args.pattern
        if pattern == "adversarial":
            pattern = adversarial_pattern(topology)
        slots = list(range(min(app.num_cores, topology.num_slots)))
        report = run_measurement(
            topology,
            SyntheticTraffic(pattern, args.rate),
            warmup=args.warmup,
            measure=args.cycles,
            drain=args.drain,
            active_slots=slots,
            offered_rate=args.rate,
        )
        print(
            f"{topology.name} pattern={pattern} rate={args.rate}: "
            f"avg latency {report.avg_latency:.1f} cy, "
            f"p95 {report.p95_latency:.1f} cy, "
            f"delivered {report.delivered_fraction * 100:.1f}%"
        )
        return 0

    # Campaign mode: sweep rates x patterns x seeds through the engine.
    from repro.core.greedy import initial_greedy_mapping
    from repro.simulation.campaign import CampaignConfig, run_campaign

    patterns = _csv(args.patterns, str)
    patterns = tuple(
        dict.fromkeys(  # dedupe, e.g. 'adversarial' aliasing a listed one
            adversarial_pattern(topology) if p == "adversarial" else p
            for p in patterns
        )
    )
    # The campaign validates a mapped design; the greedy phase-1 mapping
    # is deterministic and fast (use `generate`/`run_sunmap` for the
    # fully optimized assignment).
    assignment = initial_greedy_mapping(app, topology)
    config = CampaignConfig(
        rates=_csv(args.rates, float),
        patterns=patterns,
        seeds=_csv(args.seeds, int),
        warmup=args.warmup,
        measure=args.cycles,
        drain=args.drain,
        faults=args.faults,
        fault_seeds=_csv(args.fault_seeds, int),
        sim_engine=args.sim_engine,
    )
    journal = _journal(args)
    try:
        result = run_campaign(
            topology,
            core_graph=app,
            assignment=assignment,
            config=config,
            jobs=args.jobs,
            cache_backend=args.cache,
            journal=journal,
        )
    finally:
        _close_journal(journal)
    if args.markdown:
        from repro.report import campaign_to_markdown

        print(campaign_to_markdown(result))
    else:
        print(result.summary())
    return 0


def cmd_generate(args) -> int:
    app = _load_app(args)
    topologies = None
    if args.topology_file:
        from repro.io import load_topology

        topologies = [load_topology(args.topology_file)]
    elif args.topology:
        topologies = [make_topology(args.topology, app.num_cores)]
    journal = _journal(args)
    try:
        report = run_sunmap(
            app,
            routing=args.routing,
            objective=args.objective,
            constraints=_constraints(args),
            topologies=topologies,
            jobs=args.jobs,
            cache_backend=args.cache,
            journal=journal,
        )
    finally:
        _close_journal(journal)
    print(report.summary())
    if args.output and report.systemc is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.systemc)
        print(f"SystemC written to {args.output}")
    elif report.systemc is not None:
        print(report.systemc)
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import DesignService

    service = DesignService(
        jobs=args.jobs,
        cache_backend=args.cache,
        batch_window_s=args.batch_window,
        max_inflight=args.max_inflight,
        max_request_bytes=args.max_request_bytes,
    )
    journal = _journal(args)
    if journal is not None:
        # The BatchingEngine facade mirrors the inner engine's journal
        # reference at construction; attach to both so journaled
        # service computations replay on the next start with --resume.
        service.engine.inner.journal = journal
        service.engine.journal = journal
    backend = service.engine.cache.backend
    print(
        f"design service on {args.host}:{args.port} "
        f"(jobs={args.jobs}, cache={getattr(backend, 'name', 'memory')})",
        file=sys.stderr,
    )
    try:
        asyncio.run(service.serve(args.host, args.port))
    except KeyboardInterrupt:
        print("design service stopped", file=sys.stderr)
    finally:
        _close_journal(journal)
    return 0


def cmd_submit(args) -> int:
    import json

    from repro.service import submit

    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            raw = handle.read()
    else:
        raw = sys.stdin.read()
    raw = raw.strip()
    if not raw:
        raise ReproError("no requests given (pass --file or pipe JSON in)")
    try:
        # Accept one JSON value (object or array of objects) or
        # JSON-lines, the same format the wire protocol uses.
        if raw.lstrip().startswith(("[", "{")) and "\n{" not in raw:
            parsed = json.loads(raw)
            payloads = parsed if isinstance(parsed, list) else [parsed]
        else:
            payloads = [
                json.loads(line) for line in raw.splitlines() if line.strip()
            ]
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid request JSON: {exc}") from None
    try:
        responses = submit(payloads, host=args.host, port=args.port)
    except OSError as exc:
        raise ReproError(
            f"cannot reach the design service at {args.host}:{args.port} "
            f"({exc}); start one with 'sunmap serve'"
        ) from None
    failures = 0
    for response in responses:
        print(json.dumps(response, indent=None if args.compact else 2))
        if not response.get("ok"):
            failures += 1
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sunmap",
        description="SUNMAP reproduction: NoC topology selection & generation",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        help="logging threshold for the unified 'repro' logger "
        "(default WARNING; overrides -v)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise log verbosity: -v = INFO, -vv = DEBUG "
        "(place before the command name)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of plain text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list benchmark applications")

    p = sub.add_parser("topologies", help="list library topologies")
    p.add_argument("--cores", type=int, default=12)

    p = sub.add_parser("library", help="print the switch area/power library")
    p.add_argument("--max-radix", type=int, default=8)

    p = sub.add_parser("map", help="map one application onto one topology")
    _add_common(p)
    p.add_argument("--topology", default=None)
    p.add_argument(
        "--topology-file", default=None, metavar="PATH",
        help="JSON custom-topology file (e.g. saved by synthesize "
        "--save-topology) to map onto instead of a library name",
    )

    p = sub.add_parser("select", help="full topology selection")
    _add_common(p)
    _add_jobs(p)
    p.add_argument(
        "--fallback", action="store_true",
        help="escalate to split routing when nothing is feasible",
    )
    p.add_argument(
        "--markdown", action="store_true",
        help="print the comparison table as markdown",
    )
    p.add_argument(
        "--save", default=None, metavar="PATH",
        help="write the selection outcome as JSON",
    )
    p.add_argument(
        "--synthesize", action="store_true",
        help="race automatically synthesized custom fabrics against "
        "the library in the same selection table",
    )
    p.add_argument(
        "--topology-file", default=None, metavar="PATH",
        help="add a saved custom topology (JSON) to the candidate "
        "library",
    )
    p.add_argument(
        "--save-topology", default=None, metavar="PATH",
        help="write the best feasible synthesized fabric as JSON",
    )
    p.add_argument(
        "--fault-tolerance", type=int, default=0, metavar="K",
        help="with --synthesize: candidate fabrics stay connected "
        "under any K dead inter-switch links (k-connectivity)",
    )

    p = sub.add_parser(
        "synthesize",
        help="generate application-specific custom fabrics and rank "
        "them by the objective",
    )
    _add_common(p)
    _add_jobs(p)
    p.add_argument(
        "--strategies", default="greedy,bisect,bounded",
        metavar="S1,S2,...",
        help="partition strategies to sweep",
    )
    p.add_argument(
        "--concentrations", default="2,3,4", metavar="C1,C2,...",
        help="cores-per-switch bounds to sweep",
    )
    p.add_argument(
        "--degrees", default="4,6,8", metavar="D1,D2,...",
        help="max network channels per switch to sweep",
    )
    p.add_argument(
        "--max-candidates", type=int, default=12,
        help="cap on candidates evaluated after pruning",
    )
    p.add_argument(
        "--save-topology", default=None, metavar="PATH",
        help="write the best synthesized fabric as JSON (reload with "
        "map/select/generate --topology-file)",
    )
    p.add_argument(
        "--fault-tolerance", type=int, default=0, metavar="K",
        help="candidate fabrics stay connected under any K dead "
        "inter-switch links (k-connectivity objective)",
    )

    p = sub.add_parser("explore", help="routing sweep + Pareto exploration")
    _add_common(p)
    _add_jobs(p)
    p.add_argument("--topology", required=True)

    p = sub.add_parser(
        "simulate",
        help="cycle-accurate latency measurement (single point or "
        "campaign sweep)",
    )
    p.add_argument("--app", required=True, choices=sorted(APPLICATIONS))
    p.add_argument("--topology", required=True)
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument(
        "--pattern", default="adversarial",
        choices=sorted(PATTERNS) + ["adversarial"],
    )
    p.add_argument("--cycles", type=int, default=5000)
    p.add_argument("--warmup", type=int, default=1000)
    p.add_argument("--drain", type=int, default=3000)
    p.add_argument(
        "--rates", default=None, metavar="R1,R2,...",
        help="campaign mode: sweep these injection rates "
        "(flits/cycle/node) instead of the single --rate point",
    )
    p.add_argument(
        "--patterns", default="app,uniform,hotspot,transpose",
        metavar="P1,P2,...",
        help="campaign traffic patterns ('app' = application trace, "
        "'adversarial' = the topology's stress permutation)",
    )
    p.add_argument(
        "--seeds", default="1", metavar="S1,S2,...",
        help="campaign traffic seeds; curves average across them",
    )
    p.add_argument(
        "--faults", type=int, default=0, metavar="K",
        help="dead random inter-switch links per fault variant "
        "(0 = pristine fabric); single-point mode degrades with the "
        "first fault seed, campaign mode sweeps every fault seed",
    )
    p.add_argument(
        "--fault-seeds", default="1", metavar="S1,S2,...",
        help="fault-sampling seeds: one deterministic non-partitioning "
        "fault set per seed; campaign curves average across them",
    )
    p.add_argument(
        "--sim-engine", default="exact", choices=["exact", "batch"],
        help="campaign simulator lane: 'exact' runs the bit-identical "
        "reference kernel point by point; 'batch' advances every point "
        "of a fault variant in lockstep through the vectorized numpy "
        "kernel (statistically equivalent curves, much faster)",
    )
    p.add_argument(
        "--markdown", action="store_true",
        help="print campaign curves as a markdown table",
    )
    p.add_argument(
        "--profile", nargs="?", const="", default=None, metavar="PATH",
        help="profile the simulation under cProfile and print the top "
        "functions to stderr; with PATH, also dump the raw stats for "
        "python -m pstats",
    )
    _add_jobs(p)

    p = sub.add_parser("generate", help="select and emit SystemC")
    _add_common(p)
    _add_jobs(p)
    p.add_argument("--topology", default=None)
    p.add_argument(
        "--topology-file", default=None, metavar="PATH",
        help="generate for a saved custom topology (JSON) instead of "
        "running library selection",
    )
    p.add_argument("--output", "-o", default=None)

    p = sub.add_parser(
        "serve",
        help="run the async design service (JSON requests over TCP; "
        "see docs/SERVICE_API.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument(
        "--batch-window", type=float, default=0.005, metavar="SECONDS",
        help="straggler window for merging concurrent requests into "
        "one engine pass (0 disables the wait)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admission budget: at most N computations in flight; "
        "excess requests get a retryable typed 'busy' error "
        "(default: unlimited)",
    )
    p.add_argument(
        "--max-request-bytes", type=int, default=1_048_576, metavar="B",
        help="largest accepted request line; longer lines get a "
        "ContractError response and the connection survives",
    )
    _add_jobs(p)

    p = sub.add_parser(
        "submit",
        help="submit design requests to a running service and print "
        "the responses",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument(
        "--file", "-f", default=None, metavar="PATH",
        help="JSON request file: one object, an array, or JSON-lines "
        "(default: read stdin)",
    )
    p.add_argument(
        "--compact", action="store_true",
        help="one response per line instead of pretty-printed JSON",
    )
    return parser


_COMMANDS = {
    "apps": cmd_apps,
    "topologies": cmd_topologies,
    "library": cmd_library,
    "map": cmd_map,
    "select": cmd_select,
    "synthesize": cmd_synthesize,
    "explore": cmd_explore,
    "simulate": cmd_simulate,
    "generate": cmd_generate,
    "serve": cmd_serve,
    "submit": cmd_submit,
}


def _log_level(args) -> str:
    """Resolve --log-level / -v into a level name (explicit flag wins)."""
    if args.log_level:
        return args.log_level
    if args.verbose >= 2:
        return "DEBUG"
    if args.verbose == 1:
        return "INFO"
    return "WARNING"


def _setup_observability(args):
    """Configure logging and install the --trace sink; return the sink."""
    from repro.obs import JsonlSink, add_sink, configure_logging

    configure_logging(level=_log_level(args), json=args.log_json)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return None
    sink = JsonlSink(trace_path)
    add_sink(sink)
    return sink


def _teardown_observability(args, sink) -> None:
    """Detach the trace sink and honour --metrics on command exit."""
    from repro.obs import get_registry, remove_sink

    if sink is not None:
        remove_sink(sink)
        sink.close()
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        with open(metrics_path, "w", encoding="utf-8") as handle:
            handle.write(get_registry().exposition())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    sink = _setup_observability(args)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except OSError as exc:
        # Transport-level failures (service bind/connect, file I/O)
        # deserve a one-line diagnosis, not a traceback. Ordered after
        # BrokenPipeError, which is an OSError subclass.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        _teardown_observability(args, sink)


if __name__ == "__main__":
    sys.exit(main())
