"""Video Object Plane Decoder core graph (Figure 3(a); [13]).

12 cores, 14 flows. Edge bandwidths (MB/s) are read off the paper's
figure annotations {500, 362x3, 357, 353, 313x2, 300, 94, 70, 49, 27,
16}; endpoint reconstruction follows the figure's layout and the same
authors' companion DATE'04 mapping paper. Core areas are not given in the
paper ("area-power values of the cores are an input to our tool") and are
assigned here so the floorplanned totals land near the reported ~55 mm²
design area.
"""

from __future__ import annotations

from repro.core.coregraph import CoreGraph

#: (name, area mm^2) — synthetic areas, memories largest.
VOPD_CORES = (
    ("vld", 3.0),
    ("run_le_dec", 2.5),
    ("inv_scan", 2.2),
    ("acdc_pred", 3.0),
    ("stripe_mem", 5.0),
    ("iquant", 2.5),
    ("idct", 4.5),
    ("up_samp", 3.0),
    ("vop_rec", 4.0),
    ("pad", 2.5),
    ("vop_mem", 7.0),
    ("arm", 5.5),
)

#: (src, dst, MB/s) — the VOPD pipeline plus ARM control traffic.
VOPD_FLOWS = (
    ("vld", "run_le_dec", 70.0),
    ("run_le_dec", "inv_scan", 362.0),
    ("inv_scan", "acdc_pred", 362.0),
    ("acdc_pred", "iquant", 362.0),
    ("acdc_pred", "stripe_mem", 49.0),
    ("stripe_mem", "acdc_pred", 27.0),
    ("iquant", "idct", 357.0),
    ("idct", "up_samp", 353.0),
    ("up_samp", "vop_rec", 300.0),
    ("vop_rec", "pad", 313.0),
    ("pad", "vop_mem", 313.0),
    ("vop_mem", "vop_rec", 94.0),
    ("arm", "pad", 16.0),
    ("vop_mem", "arm", 500.0),
)


def vopd() -> CoreGraph:
    """The 12-core VOPD benchmark."""
    graph = CoreGraph("vopd")
    for name, area in VOPD_CORES:
        graph.add_core(name, area_mm2=area)
    for src, dst, bandwidth in VOPD_FLOWS:
        graph.add_flow(src, dst, bandwidth)
    graph.validate()
    return graph
