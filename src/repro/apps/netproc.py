"""16-node network processor (Section 6.2; node architecture from [6]).

Each node packages a request generator, scheduler, processor, memory and
arbiter behind one network port (Figure 8(a)); the communication goal is
low contention for large data flows between nodes. The paper does not
tabulate the traffic, so we synthesize the paper-described behaviour: a
deterministic all-around pattern in which every node sources three large
flows at increasing distance (ring neighbour, quarter-ring, opposite
node). Mapping experiments relax the bandwidth constraints, as the paper
does, and the latency evaluation (Figure 8(b)) uses the cycle-accurate
simulator with adversarial traffic instead of this static graph.
"""

from __future__ import annotations

from repro.core.coregraph import CoreGraph

#: Number of processing nodes.
NETPROC_NODES = 16

#: (node offset, MB/s) of the flows every node sources.
NETPROC_PATTERN = ((1, 400.0), (4, 300.0), (8, 200.0))

#: Area of one node (proc + mem + scheduler + arbiter), mm^2.
NETPROC_NODE_AREA = 4.0


def network_processor() -> CoreGraph:
    """The 16-node network-processor benchmark."""
    graph = CoreGraph("netproc")
    for i in range(NETPROC_NODES):
        graph.add_core(f"node{i:02d}", area_mm2=NETPROC_NODE_AREA)
    for i in range(NETPROC_NODES):
        for offset, bandwidth in NETPROC_PATTERN:
            graph.add_flow(i, (i + offset) % NETPROC_NODES, bandwidth)
    graph.validate()
    return graph
