"""Synthetic core-graph generation for tests and scaling studies."""

from __future__ import annotations

import random

from repro.core.coregraph import CoreGraph


def random_core_graph(
    n_cores: int,
    n_flows: int | None = None,
    seed: int = 0,
    bandwidth_range: tuple[float, float] = (10.0, 500.0),
    area_range: tuple[float, float] = (1.0, 6.0),
    connected: bool = True,
    name: str | None = None,
) -> CoreGraph:
    """A reproducible random application.

    Args:
        n_flows: number of directed flows; defaults to ``2 * n_cores``.
        connected: chain all cores first so the graph is weakly
            connected (a realistic pipeline backbone), then add random
            extra flows.
    """
    if n_cores < 2:
        raise ValueError("need at least 2 cores")
    rng = random.Random(seed)
    if n_flows is None:
        n_flows = 2 * n_cores
    graph = CoreGraph(name or f"synthetic-{n_cores}c-{seed}")
    for i in range(n_cores):
        graph.add_core(
            f"core{i:02d}", area_mm2=rng.uniform(*area_range)
        )
    existing: set[tuple[int, int]] = set()
    if connected:
        for i in range(n_cores - 1):
            graph.add_flow(i, i + 1, rng.uniform(*bandwidth_range))
            existing.add((i, i + 1))
    attempts = 0
    while len(existing) < n_flows and attempts < 50 * n_flows:
        attempts += 1
        src = rng.randrange(n_cores)
        dst = rng.randrange(n_cores)
        if src == dst or (src, dst) in existing:
            continue
        graph.add_flow(src, dst, rng.uniform(*bandwidth_range))
        existing.add((src, dst))
    graph.validate()
    return graph


def pipeline_core_graph(
    n_cores: int, bandwidth: float = 300.0, name: str | None = None
) -> CoreGraph:
    """A pure pipeline (chain) application — best-case for any topology."""
    graph = CoreGraph(name or f"pipeline-{n_cores}")
    for i in range(n_cores):
        graph.add_core(f"stage{i:02d}", area_mm2=3.0)
    for i in range(n_cores - 1):
        graph.add_flow(i, i + 1, bandwidth)
    return graph


def hotspot_core_graph(
    n_cores: int,
    hotspot_bandwidth: float = 600.0,
    side_bandwidth: float = 50.0,
    name: str | None = None,
) -> CoreGraph:
    """All cores talk to core 0 (a shared-memory-style hotspot)."""
    graph = CoreGraph(name or f"hotspot-{n_cores}")
    for i in range(n_cores):
        graph.add_core(f"core{i:02d}", area_mm2=3.0)
    for i in range(1, n_cores):
        graph.add_flow(i, 0, hotspot_bandwidth / (n_cores - 1))
        graph.add_flow(0, i, side_bandwidth)
    return graph
