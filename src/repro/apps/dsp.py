"""DSP filter application (Figure 10(a), Section 6.4).

Six cores — ARM, Memory, Display, FFT, IFFT, Filter — with the figure's
bandwidth annotations: six 200 MB/s flows and the two 600 MB/s
FFT->Filter->IFFT stream links. SUNMAP maps this design onto a 3-ary
2-fly butterfly (3x3 switches, Figure 10(b)) and the paper's SystemC
simulation confirms the butterfly's latency win (Figure 10(c)).
"""

from __future__ import annotations

from repro.core.coregraph import CoreGraph

DSP_CORES = (
    ("arm", 4.0),
    ("memory", 5.0),
    ("display", 3.0),
    ("fft", 3.5),
    ("ifft", 3.5),
    ("filter", 3.0),
)

DSP_FLOWS = (
    ("arm", "memory", 200.0),
    ("memory", "arm", 200.0),
    ("arm", "fft", 200.0),
    ("fft", "filter", 600.0),
    ("filter", "ifft", 600.0),
    ("ifft", "memory", 200.0),
    ("memory", "display", 200.0),
    ("arm", "display", 200.0),
)


def dsp_filter() -> CoreGraph:
    """The 6-core DSP filter benchmark."""
    graph = CoreGraph("dsp-filter")
    for name, area in DSP_CORES:
        graph.add_core(name, area_mm2=area)
    for src, dst, bandwidth in DSP_FLOWS:
        graph.add_flow(src, dst, bandwidth)
    graph.validate()
    return graph
