"""Benchmark applications of the paper plus synthetic generators."""

from repro.apps.dsp import DSP_CORES, DSP_FLOWS, dsp_filter
from repro.apps.mpeg4 import MPEG4_CORES, MPEG4_FLOWS, mpeg4
from repro.apps.netproc import (
    NETPROC_NODES,
    NETPROC_PATTERN,
    network_processor,
)
from repro.apps.synthetic import (
    hotspot_core_graph,
    pipeline_core_graph,
    random_core_graph,
)
from repro.apps.vopd import VOPD_CORES, VOPD_FLOWS, vopd

#: Registry used by the CLI and examples.
APPLICATIONS = {
    "vopd": vopd,
    "mpeg4": mpeg4,
    "dsp": dsp_filter,
    "netproc": network_processor,
}


def load_application(name: str):
    """Instantiate a named benchmark application."""
    try:
        return APPLICATIONS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(APPLICATIONS)}"
        ) from None


__all__ = [
    "vopd",
    "mpeg4",
    "dsp_filter",
    "network_processor",
    "random_core_graph",
    "pipeline_core_graph",
    "hotspot_core_graph",
    "APPLICATIONS",
    "load_application",
    "VOPD_CORES",
    "VOPD_FLOWS",
    "MPEG4_CORES",
    "MPEG4_FLOWS",
    "DSP_CORES",
    "DSP_FLOWS",
    "NETPROC_NODES",
    "NETPROC_PATTERN",
]
