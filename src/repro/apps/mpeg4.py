"""MPEG4 decoder core graph (Figure 7(a); [13]).

The canonical 12-core MPEG4 decoder graph with the shared SDRAM hub. Edge
bandwidths match the paper's figure annotations {910, 670, 600, 600, 500,
250, 190, 173, 40, 40, 32, 0.5, 0.5} (the paper's prose says "14 cores"
but its figure — and the companion DATE'04 paper — draw this 12-core
graph; see DESIGN.md).

The graph's defining property for the experiments: four flows exceed the
500 MB/s link capacity (910/670/600/600), so minimum-path routing is
infeasible on *every* topology and the path-diversity-free butterfly has
no feasible mapping at all (Section 6.1).
"""

from __future__ import annotations

from repro.core.coregraph import CoreGraph

#: (name, area mm^2) — synthetic areas, shared SDRAM largest.
MPEG4_CORES = (
    ("vu", 4.0),
    ("au", 3.5),
    ("med_cpu", 6.0),
    ("sdram", 13.0),
    ("sram1", 6.0),
    ("sram2", 6.0),
    ("rast", 3.0),
    ("adsp", 4.0),
    ("up_samp", 2.5),
    ("bab", 3.0),
    ("risc", 4.5),
    ("idct_etc", 4.0),
)

#: (src, dst, MB/s) — SDRAM-centric traffic.
MPEG4_FLOWS = (
    ("sdram", "up_samp", 910.0),
    ("rast", "sdram", 670.0),
    ("med_cpu", "sdram", 600.0),
    ("idct_etc", "sram1", 600.0),
    ("up_samp", "rast", 500.0),
    ("risc", "sram2", 250.0),
    ("vu", "sdram", 190.0),
    ("sram2", "bab", 173.0),
    ("adsp", "sram2", 40.0),
    ("sdram", "med_cpu", 40.0),
    ("bab", "risc", 32.0),
    ("au", "sdram", 0.5),
    ("sdram", "au", 0.5),
)


def mpeg4() -> CoreGraph:
    """The 12-core MPEG4 decoder benchmark."""
    graph = CoreGraph("mpeg4")
    for name, area in MPEG4_CORES:
        graph.add_core(name, area_mm2=area)
    for src, dst, bandwidth in MPEG4_FLOWS:
        graph.add_flow(src, dst, bandwidth)
    graph.validate()
    return graph
