"""Application-specific topology synthesis.

The paper's conclusions name "automatic heterogeneous topology
modeling" as future work. :mod:`repro.topology.custom` supplies the
modeling half — arbitrary switch fabrics that drop into the existing
mapping/selection/generation machinery. This package supplies the
*generation* half: given a core graph and constraints, it invents
candidate fabrics shaped like the application and races them against
the standard topology library in the same selection table.

Pipeline
--------

1. **Partition** (:mod:`repro.synthesis.partition`) — cut the core
   graph into clusters, one future switch each. Three deterministic
   strategies span the trade-off space:

   * ``greedy`` — communication-weighted cluster merging (KL-style
     coarsening). Best bandwidth locality; uneven cluster sizes, so
     some switches grow large (area/power risk on radix-sensitive
     objectives).
   * ``bisect`` — recursive balanced min-cut bisection. Uniform switch
     radices and predictable area; may split a heavy flow across the
     cut when balance forces it.
   * ``bounded`` — degree/bandwidth-bounded clustering. Guarantees the
     aggregate external traffic of every cluster fits what its
     switch's channels can carry — the safest strategy under tight
     link capacities, at some cost in hop locality.

2. **Fabricate** (:mod:`repro.synthesis.fabric`) — one switch per
   cluster, cores concentrated on their cluster's switch, inter-switch
   channels sized from aggregate commodity bandwidth
   (``ceil(demand / capacity)`` parallel channels — the fat-link
   multiplicity of :class:`~repro.topology.custom.CustomTopology`),
   connectivity guaranteed by a degree-constrained maximum spanning
   tree over the cluster communication graph.

3. **Generate & prune** (:mod:`repro.synthesis.generate`) — sweep
   strategies × concentration × degree bounds, drop structural
   duplicates and Pareto-dominated shapes (hop proxy vs resource
   proxy, through the existing
   :func:`~repro.core.exploration.pareto_front`), cap the survivors.

4. **Evaluate** — each survivor becomes a
   :class:`~repro.engine.jobs.SynthesisJob`: the engine rebuilds the
   fabric from its spec and runs the full Figure-5 mapping search,
   parallel with ``jobs=N``, memoized by content.

Determinism guarantees
----------------------

Every stage is a pure function of ``(core graph, SynthesisConfig,
seed)``: the partitioners use no RNG and break ties by index, fabric
wiring is order-deterministic, pruning is proxy-ranked with label
tie-breaks, and candidate evaluation goes through the exploration
engine's content-derived seeds and submission-order reduction. The
same inputs therefore reproduce bit-identical candidate sets at
``jobs=1`` and ``jobs=4``, across processes and machines — asserted by
the golden tests and by ``benchmarks/bench_synthesis.py``.

Entry points: :func:`synthesize_topologies` for a standalone sweep,
``select_topology(..., synthesize=...)`` /
``run_sunmap(..., synthesize=...)`` to race synthesized fabrics
against the standard library head-to-head, and the CLI commands
``sunmap synthesize`` and ``sunmap select --synthesize``.
"""

from repro.synthesis.fabric import (
    CandidateSpec,
    build_candidate,
    fabric_from_partition,
    intended_assignment,
)
from repro.synthesis.generate import (
    SynthesisConfig,
    SynthesisResult,
    SynthesizedCandidate,
    enumerate_candidates,
    synthesis_jobs,
    synthesize_topologies,
)
from repro.synthesis.partition import (
    PARTITION_STRATEGIES,
    bisection_partition,
    bounded_partition,
    greedy_merge_partition,
    make_partition,
)

__all__ = [
    "CandidateSpec",
    "SynthesisConfig",
    "SynthesisResult",
    "SynthesizedCandidate",
    "PARTITION_STRATEGIES",
    "build_candidate",
    "fabric_from_partition",
    "intended_assignment",
    "enumerate_candidates",
    "synthesis_jobs",
    "synthesize_topologies",
    "greedy_merge_partition",
    "bisection_partition",
    "bounded_partition",
    "make_partition",
]
