"""Candidate generation, pruning and engine fan-out for synthesis.

``synthesize_topologies`` is the subsystem's front door: sweep the
partition strategies over switch counts, concentration factors and
degree bounds (:class:`SynthesisConfig`), build each candidate fabric
locally, drop structural duplicates and Pareto-dominated shapes, then
fan the survivors out through the
:class:`~repro.engine.ExplorationEngine` as
:class:`~repro.engine.jobs.SynthesisJob` batches — one full mapping
search per candidate, parallel with ``jobs=N``, memoized by content,
bit-identical regardless of worker count.

Structural pruning reuses the existing
:func:`~repro.core.exploration.pareto_front` machinery on two cheap
axes computed without any mapping search:

* a **hop proxy** — bandwidth-weighted hop distance of the partition's
  intended placement (cluster-local traffic is 1 hop, direct-linked
  clusters 2, and so on);
* a **resource proxy** — analytic switch silicon plus channel wiring
  area of the fabric.

A candidate dominated on both axes by another candidate cannot win any
selection objective that trades performance against cost, so it never
reaches the (much more expensive) mapping search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation, nominal_pitch_mm
from repro.core.exploration import ParetoPoint, pareto_front
from repro.core.mapper import MapperConfig
from repro.engine.engine import ExplorationEngine
from repro.engine.jobs import SynthesisJob, hash_seed
from repro.errors import TopologyError
from repro.physical.estimate import NetworkEstimator
from repro.synthesis.fabric import (
    CandidateSpec,
    candidate_clusters,
    fabric_from_partition,
    intended_assignment,
)
from repro.topology.custom import CustomTopology


@dataclass(frozen=True)
class SynthesisConfig:
    """Sweep definition for automatic topology synthesis.

    Attributes:
        strategies: partition strategies to sweep
            (:data:`~repro.synthesis.partition.PARTITION_STRATEGIES`).
        concentrations: cores-per-switch bounds; each value ``c``
            targets ``ceil(n_cores / c)`` switches.
        max_switch_degrees: network-channel bounds per switch.
        max_candidates: cap on candidates submitted for evaluation
            after dedup/pruning (proxy-ranked; the cap is logged in the
            result's ``pruned`` field, never silent).
        min_candidates: floor of candidates kept for evaluation even
            when the Pareto front is smaller — proxies are estimates,
            and a front-only sweep could lose everything to one
            infeasible mapping; near-misses are backfilled in proxy
            rank order.
        link_capacity_mb_s: per-channel capacity used to size fat
            links; ``None`` uses the selection constraints' capacity.
        prune: drop Pareto-dominated shapes before evaluation (disable
            to evaluate the full sweep, e.g. for diagnostics).
        seed: mixed into every candidate job's content-derived seed, so
            a future stochastic partitioner stays reproducible.
        fault_tolerance: surviving-link guarantee for every candidate —
            fabrics embed a protection ring keeping all communicating
            clusters connected under any ``fault_tolerance`` dead
            inter-switch links (Chen et al.; 0 = unprotected). Sweep
            points whose switch count or degree budget cannot honor the
            guarantee are pruned as unbuildable, never silently
            weakened.
    """

    strategies: tuple[str, ...] = ("greedy", "bisect", "bounded")
    concentrations: tuple[int, ...] = (2, 3, 4)
    max_switch_degrees: tuple[int, ...] = (4, 6, 8)
    max_candidates: int = 12
    min_candidates: int = 4
    link_capacity_mb_s: float | None = None
    prune: bool = True
    seed: int = 1
    fault_tolerance: int = 0


@dataclass
class SynthesizedCandidate:
    """One synthesized fabric and its evaluation outcome."""

    spec: CandidateSpec
    topology: CustomTopology
    evaluation: MappingEvaluation | None = None
    error: str | None = None

    @property
    def name(self) -> str:
        return self.spec.label

    @property
    def feasible(self) -> bool:
        return self.evaluation is not None and self.evaluation.feasible

    @property
    def cost(self) -> float:
        if self.evaluation is None:
            return math.inf
        return self.evaluation.cost


@dataclass
class SynthesisResult:
    """Ranked outcome of one synthesis sweep."""

    application: str
    objective_name: str
    routing_code: str
    candidates: list[SynthesizedCandidate] = field(default_factory=list)
    #: Candidate labels dropped by dedup/pruning/capping (with reason).
    pruned: dict[str, str] = field(default_factory=dict)

    @property
    def ranked(self) -> list[SynthesizedCandidate]:
        """Feasible candidates by increasing cost, then the rest."""
        return sorted(
            self.candidates,
            key=lambda c: (not c.feasible, c.cost, c.name),
        )

    @property
    def best(self) -> SynthesizedCandidate | None:
        ranked = self.ranked
        if ranked and ranked[0].feasible:
            return ranked[0]
        return None

    def table(self) -> list[dict]:
        rows = []
        best = self.best
        for cand in self.ranked:
            if cand.evaluation is not None:
                row = cand.evaluation.summary_row()
            else:
                row = {
                    "topology": cand.name,
                    "routing": self.routing_code,
                    "feasible": False,
                }
            row["selected"] = best is not None and cand.name == best.name
            if cand.error is not None:
                row["note"] = cand.error
            rows.append(row)
        return rows

    def to_dict(self) -> dict:
        """JSON-able form (used by reports and bit-identity checks)."""
        best = self.best
        return {
            "application": self.application,
            "objective": self.objective_name,
            "routing": self.routing_code,
            "best": None if best is None else best.name,
            "rows": self.table(),
            "pruned": dict(sorted(self.pruned.items())),
        }

    def format_table(self) -> str:
        """Human-readable ranking (CLI / examples)."""
        header = (
            f"{'candidate':<26}{'ok':<4}{'cost':>10}{'avg hops':>9}"
            f"{'area mm2':>10}{'power mW':>10}  note"
        )
        lines = [header, "-" * len(header)]
        for cand in self.ranked:
            ev = cand.evaluation
            mark = "*" if self.best is cand else ""
            lines.append(
                f"{cand.name + mark:<26}"
                f"{'y' if cand.feasible else 'n':<4}"
                f"{cand.cost if math.isfinite(cand.cost) else math.inf:>10.3f}"
                f"{ev.avg_hops if ev else float('nan'):>9.3f}"
                f"{(ev.area_mm2 if ev and ev.area_mm2 is not None else float('nan')):>10.2f}"
                f"{(ev.power_mw if ev and ev.power_mw is not None else float('nan')):>10.1f}"
                f"  {cand.error or ''}"
            )
        return "\n".join(lines)


def _sweep_specs(
    core_graph: CoreGraph, config: SynthesisConfig, capacity: float
) -> list[CandidateSpec]:
    """The raw spec grid, before building/dedup/pruning."""
    n = core_graph.num_cores
    specs: list[CandidateSpec] = []
    seen: set[tuple] = set()
    for strategy in config.strategies:
        for concentration in config.concentrations:
            if concentration < 1 or concentration > n:
                continue
            num_switches = max(1, math.ceil(n / concentration))
            for degree in config.max_switch_degrees:
                key = (strategy, num_switches, concentration, degree)
                if key in seen:
                    continue
                seen.add(key)
                specs.append(
                    CandidateSpec(
                        strategy=strategy,
                        num_switches=num_switches,
                        max_cluster_size=concentration,
                        max_switch_degree=degree,
                        link_capacity_mb_s=capacity,
                        fault_tolerance=config.fault_tolerance,
                    )
                )
    return specs


def _proxies(
    core_graph: CoreGraph,
    clusters: list[list[int]],
    topology: CustomTopology,
    estimator: NetworkEstimator,
) -> tuple[float, float]:
    """(hop proxy, resource proxy) for structural pruning.

    The hop proxy evaluates the *intended* placement (cores laid out
    cluster by cluster); the mapper can only do better. The resource
    proxy is the analytic switch + channel area at nominal lengths —
    mapping-independent for these direct fabrics.
    """
    slot_of = intended_assignment(clusters)
    total = 0.0
    weighted = 0.0
    for (src, dst), value in core_graph.flows().items():
        total += value
        weighted += value * topology.hop_distance(slot_of[src], slot_of[dst])
    hop_proxy = weighted / total if total > 0 else 0.0
    pitch = nominal_pitch_mm(core_graph)
    resource = estimator.switches_area_mm2(topology) + (
        estimator.channels_area_mm2(topology, pitch_mm=pitch)
    )
    return hop_proxy, resource


def enumerate_candidates(
    core_graph: CoreGraph,
    config: SynthesisConfig | None = None,
    constraints: Constraints | None = None,
    estimator: NetworkEstimator | None = None,
) -> tuple[list[tuple[CandidateSpec, CustomTopology]], dict[str, str]]:
    """Build, dedupe and prune the candidate sweep.

    Returns ``(survivors, pruned)``: the (spec, fabric) pairs worth a
    mapping search, in deterministic proxy-ranked order, and a
    ``{label: reason}`` record of everything dropped — unbuildable
    specs, structural duplicates, Pareto-dominated shapes and the
    ``max_candidates`` cap (coverage is never truncated silently).
    """
    config = config or SynthesisConfig()
    constraints = constraints or Constraints()
    estimator = estimator or NetworkEstimator()
    capacity = (
        config.link_capacity_mb_s
        if config.link_capacity_mb_s is not None
        else constraints.link_capacity_mb_s
    )

    pruned: dict[str, str] = {}
    built: list[tuple[CandidateSpec, CustomTopology, list[list[int]]]] = []
    fingerprints: dict[tuple, str] = {}
    for spec in _sweep_specs(core_graph, config, capacity):
        try:
            # Partition once per spec; the fabric build and the proxy
            # scoring below share the clusters (workers re-derive them
            # via build_candidate, which is the same pure function).
            clusters = candidate_clusters(core_graph, spec)
            topology = fabric_from_partition(
                core_graph,
                clusters,
                name=spec.label,
                max_switch_degree=spec.max_switch_degree,
                link_capacity_mb_s=spec.link_capacity_mb_s,
                fault_tolerance=spec.fault_tolerance,
            )
        except TopologyError as exc:
            pruned[spec.label] = f"unbuildable: {exc}"
            continue
        # Structural key (name excluded): different sweep points often
        # build the same fabric — e.g. a degree bound that never binds.
        fp = (
            tuple(topology.slot_switch),
            tuple(sorted(topology.link_multiplicity().items())),
            tuple(sorted(topology.switch_positions().items())),
        )
        twin = fingerprints.get(fp)
        if twin is not None:
            pruned[spec.label] = f"duplicate of {twin}"
            continue
        fingerprints[fp] = spec.label
        built.append((spec, topology, clusters))

    scored = [
        (spec, topology, *_proxies(core_graph, clusters, topology, estimator))
        for spec, topology, clusters in built
    ]
    if config.prune and len(scored) > 1:
        points = {
            spec.label: ParetoPoint(
                area_mm2=resource,
                power_mw=hops,
                avg_hops=hops,
                assignment=(spec.label,),
            )
            for spec, _, hops, resource in scored
        }
        front = {
            p.assignment[0] for p in pareto_front(list(points.values()))
        }
        kept = []
        dropped = []
        for entry in scored:
            if entry[0].label in front:
                kept.append(entry)
            else:
                dropped.append(entry)
        # Backfill near-misses up to the floor: proxies are estimates,
        # so a front-only sweep must not stake everything on one shape.
        floor = min(config.min_candidates, config.max_candidates)
        if len(kept) < floor and dropped:
            dropped.sort(key=lambda e: (e[2], e[3], e[0].label))
            refill = dropped[: floor - len(kept)]
            kept.extend(refill)
            dropped = dropped[len(refill):]
        for entry in dropped:
            pruned[entry[0].label] = "pareto-dominated (proxy axes)"
        scored = kept

    # Deterministic proxy ranking; cap the number of mapping searches.
    scored.sort(key=lambda e: (e[2], e[3], e[0].label))
    if len(scored) > config.max_candidates:
        for spec, _, _, _ in scored[config.max_candidates:]:
            pruned[spec.label] = (
                f"over max_candidates={config.max_candidates}"
            )
        scored = scored[: config.max_candidates]
    return [(spec, topology) for spec, topology, _, _ in scored], pruned


def synthesis_jobs(
    core_graph: CoreGraph,
    config: SynthesisConfig | None = None,
    routing: str = "MP",
    objective="hops",
    constraints: Constraints | None = None,
    mapper_config: MapperConfig | None = None,
    estimator: NetworkEstimator | None = None,
) -> tuple[list[tuple[CandidateSpec, CustomTopology]], list[SynthesisJob], dict[str, str]]:
    """Candidates plus their engine jobs (shared by selection/synthesis).

    Returns ``(candidates, jobs, pruned)`` with ``jobs[i]`` evaluating
    ``candidates[i]``; every job's tag is the candidate label.
    """
    config = config or SynthesisConfig()
    candidates, pruned = enumerate_candidates(
        core_graph,
        config=config,
        constraints=constraints,
        estimator=estimator,
    )
    jobs = [
        SynthesisJob(
            core_graph=core_graph,
            spec=spec,
            routing=routing,
            objective=objective,
            constraints=constraints,
            config=mapper_config,
            estimator=estimator,
            tag=spec.label,
            # Mix the sweep seed with the spec so every candidate gets
            # a stable, content-derived RNG seed; the current mapper is
            # deterministic, but a stochastic partitioner/search must
            # reproduce per (core graph, config, seed) exactly.
            seed=hash_seed(("synth-seed", config.seed, spec.label)),
        )
        for spec, _ in candidates
    ]
    return candidates, jobs, pruned


def synthesize_topologies(
    core_graph: CoreGraph,
    config: SynthesisConfig | None = None,
    routing: str = "MP",
    objective="hops",
    constraints: Constraints | None = None,
    mapper_config: MapperConfig | None = None,
    estimator: NetworkEstimator | None = None,
    jobs: int = 1,
    engine: ExplorationEngine | None = None,
    cache_backend=None,
    journal=None,
) -> SynthesisResult:
    """Generate and evaluate custom fabrics for an application.

    The full subsystem flow: sweep → build → prune → fan out one
    mapping search per surviving candidate through the exploration
    engine → rank by objective cost. Results are bit-identical for any
    ``jobs`` count (content-derived seeds, submission-order reduction).

    ``cache_backend`` gives the auto-built engine persistent storage
    (a :func:`~repro.engine.backends.make_backend` spec); pass
    ``engine=`` instead to share a cache across calls. ``journal``
    (a :class:`~repro.engine.journal.RunJournal`) records completed
    candidate evaluations and replays them bit-identically on resume.
    """
    objective_name = (
        objective if isinstance(objective, str) else objective.name
    )
    if engine is None:
        engine = ExplorationEngine(
            jobs=jobs, cache_backend=cache_backend, journal=journal
        )
    elif journal is not None and engine.journal is None:
        engine.journal = journal
    candidates, job_list, pruned = synthesis_jobs(
        core_graph,
        config=config,
        routing=routing,
        objective=objective,
        constraints=constraints,
        mapper_config=mapper_config,
        estimator=estimator,
    )
    result = SynthesisResult(
        application=core_graph.name,
        objective_name=objective_name,
        routing_code=routing,
        pruned=pruned,
    )
    for (spec, topology), job_result in zip(
        candidates, engine.run(job_list)
    ):
        if job_result.ok:
            result.candidates.append(
                SynthesizedCandidate(
                    spec=spec,
                    # The evaluated instance (worker-rebuilt fabrics are
                    # bit-identical to the local build, but the
                    # evaluation's topology is the one its assignment,
                    # floorplan and netlist refer to).
                    topology=job_result.evaluation.topology,
                    evaluation=job_result.evaluation,
                )
            )
        else:
            result.candidates.append(
                SynthesizedCandidate(
                    spec=spec, topology=topology, error=job_result.error
                )
            )
    return result
