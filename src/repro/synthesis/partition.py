"""Core-graph partitioning strategies for topology synthesis.

Every strategy cuts the application's core graph into clusters that will
each become one switch of a synthesized fabric
(:mod:`repro.synthesis.fabric`). The objective is the classic
application-specific NoC partitioning goal: keep heavy communication
*inside* a cluster (one-hop traffic through a shared switch) and make
the traffic that must cross clusters as light as possible (it pays for
inter-switch channels).

Three deterministic strategies, spanning the trade-off space:

* ``greedy`` — communication-weighted cluster merging in the spirit of
  Kernighan–Lin coarsening: start one cluster per core and repeatedly
  merge the pair of clusters exchanging the most bandwidth, subject to
  the concentration bound. Chases bandwidth locality aggressively;
  cluster sizes can be uneven.
* ``bisect`` — recursive min-cut bisection: split the core set into two
  balanced halves minimizing the cut bandwidth (greedy gain-driven
  growth), recursing until every part fits the concentration bound.
  Produces balanced clusters, so switch radices stay uniform.
* ``bounded`` — degree/bandwidth-bounded clustering: place cores in
  decreasing-traffic order into the cluster with the highest affinity
  whose size *and* aggregate external bandwidth stay under budget.
  Respects physical limits first (a cluster whose external traffic
  exceeds what its switch's links can carry is never formed), locality
  second.

All strategies are pure functions of their arguments with deterministic
tie-breaking (no RNG), which is what lets synthesized candidate sets
reproduce bit-identically across runs, worker counts and processes.
"""

from __future__ import annotations

from repro.core.coregraph import CoreGraph
from repro.errors import TopologyError


def _check_bounds(n: int, num_clusters: int, max_cluster_size: int) -> None:
    if max_cluster_size < 1:
        raise TopologyError("max_cluster_size must be at least 1")
    if num_clusters < 1:
        raise TopologyError("need at least one cluster")
    if num_clusters * max_cluster_size < n:
        raise TopologyError(
            f"{num_clusters} clusters of at most {max_cluster_size} cores "
            f"cannot hold {n} cores"
        )


def _normalized(clusters: list[list[int]]) -> list[list[int]]:
    """Canonical form: members sorted, clusters ordered by first member."""
    parts = [sorted(c) for c in clusters if c]
    parts.sort(key=lambda c: c[0])
    return parts


def greedy_merge_partition(
    core_graph: CoreGraph,
    num_clusters: int,
    max_cluster_size: int,
    bw_budget: float | None = None,
) -> list[list[int]]:
    """Kernighan–Lin-style greedy communication-weighted merging.

    Merges the cluster pair with the largest inter-cluster bandwidth
    until ``num_clusters`` remain (or no merge fits the size bound).
    Ties break on the smallest cluster indices.
    """
    n = core_graph.num_cores
    _check_bounds(n, num_clusters, max_cluster_size)
    clusters: list[list[int]] = [[i] for i in range(n)]

    def inter_comm(a: list[int], b: list[int]) -> float:
        return sum(
            core_graph.comm_between(x, y) for x in a for y in b
        )

    while len(clusters) > num_clusters:
        best: tuple[float, int, int] | None = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                if len(clusters[i]) + len(clusters[j]) > max_cluster_size:
                    continue
                comm = inter_comm(clusters[i], clusters[j])
                if best is None or comm > best[0] + 1e-12:
                    best = (comm, i, j)
        if best is None:
            break  # no merge fits the concentration bound
        _, i, j = best
        clusters[i] = sorted(clusters[i] + clusters[j])
        del clusters[j]
    return _normalized(clusters)


def bisection_partition(
    core_graph: CoreGraph,
    num_clusters: int,
    max_cluster_size: int,
    bw_budget: float | None = None,
) -> list[list[int]]:
    """Recursive min-cut bisection over the core graph.

    Each level splits a part into two balanced halves, growing the
    first half greedily from the part's heaviest core by the classic
    gain (communication into the half minus communication to the rest).
    Recursion stops when a part fits the concentration bound; the
    ``num_clusters`` argument only validates feasibility (the leaf
    count is driven by the size bound, keeping halves balanced).
    """
    n = core_graph.num_cores
    _check_bounds(n, num_clusters, max_cluster_size)

    def internal_traffic(core: int, cores: list[int]) -> float:
        return sum(
            core_graph.comm_between(core, o) for o in cores if o != core
        )

    def split(cores: list[int]) -> list[list[int]]:
        if len(cores) <= max_cluster_size:
            return [sorted(cores)]
        half = (len(cores) + 1) // 2
        seed = max(
            cores, key=lambda c: (internal_traffic(c, cores), -c)
        )
        part = [seed]
        rest = [c for c in cores if c != seed]
        while len(part) < half:
            def gain(c: int) -> float:
                to_part = sum(
                    core_graph.comm_between(c, p) for p in part
                )
                to_rest = sum(
                    core_graph.comm_between(c, r) for r in rest if r != c
                )
                return to_part - to_rest

            pick = max(rest, key=lambda c: (gain(c), -c))
            part.append(pick)
            rest.remove(pick)
        return split(part) + split(rest)

    return _normalized(split(list(range(n))))


def bounded_partition(
    core_graph: CoreGraph,
    num_clusters: int,
    max_cluster_size: int,
    bw_budget: float | None = None,
) -> list[list[int]]:
    """Degree/bandwidth-bounded clustering.

    Cores join clusters in decreasing-traffic order; a core joins the
    existing cluster with the highest affinity (bandwidth exchanged with
    its members) among those whose size stays within the concentration
    bound and whose aggregate *external* bandwidth — traffic between
    members and everything outside — stays within ``bw_budget`` (the
    capacity a switch's network links can collectively carry; ``None``
    lifts the bound). A core with no admissible cluster opens a new one.
    """
    n = core_graph.num_cores
    _check_bounds(n, num_clusters, max_cluster_size)

    def external_bw(members: list[int]) -> float:
        inside = set(members)
        return sum(
            v
            for (s, d), v in core_graph.flows().items()
            if (s in inside) != (d in inside)
        )

    order = sorted(
        range(n), key=lambda c: (-core_graph.core_traffic(c), c)
    )
    clusters: list[list[int]] = []
    for core in order:
        best_index: int | None = None
        best_affinity = 0.0
        for index, members in enumerate(clusters):
            if len(members) >= max_cluster_size:
                continue
            affinity = sum(
                core_graph.comm_between(core, m) for m in members
            )
            if affinity <= best_affinity:
                continue
            if bw_budget is not None:
                if external_bw(members + [core]) > bw_budget + 1e-9:
                    continue
            best_index = index
            best_affinity = affinity
        if best_index is None:
            clusters.append([core])
        else:
            clusters[best_index].append(core)
    return _normalized(clusters)


#: Registry used by :mod:`repro.synthesis.fabric` (spec.strategy values).
PARTITION_STRATEGIES = {
    "greedy": greedy_merge_partition,
    "bisect": bisection_partition,
    "bounded": bounded_partition,
}


def make_partition(
    strategy: str,
    core_graph: CoreGraph,
    num_clusters: int,
    max_cluster_size: int,
    bw_budget: float | None = None,
) -> list[list[int]]:
    """Run one registered strategy; validates the invariants.

    Returns clusters in canonical order (each sorted, ordered by first
    member); every core appears in exactly one cluster and no cluster
    exceeds ``max_cluster_size``.
    """
    try:
        fn = PARTITION_STRATEGIES[strategy]
    except KeyError:
        raise TopologyError(
            f"unknown partition strategy {strategy!r}; available: "
            f"{sorted(PARTITION_STRATEGIES)}"
        ) from None
    clusters = fn(core_graph, num_clusters, max_cluster_size, bw_budget)
    seen = [c for cluster in clusters for c in cluster]
    if sorted(seen) != list(range(core_graph.num_cores)):
        raise TopologyError(
            f"{strategy}: partition does not cover every core exactly once"
        )
    oversized = [c for c in clusters if len(c) > max_cluster_size]
    if oversized:
        raise TopologyError(
            f"{strategy}: cluster exceeds max size {max_cluster_size}"
        )
    return clusters
