"""Build a :class:`~repro.topology.custom.CustomTopology` from a partition.

The fabric construction rule is switch-per-cluster: every cluster of the
partition becomes one switch carrying its cores as terminal slots
(concentration), and clusters that exchange traffic are wired together
with channels sized from their aggregate commodity bandwidth — a pair
whose directional demand exceeds one link capacity gets a *fat link*
(parallel channels, the ``mult`` machinery of
:class:`~repro.topology.custom.CustomTopology`).

Link placement is degree-bounded and deterministic:

1. a degree-constrained maximum spanning tree over the cluster
   communication graph guarantees connectivity while spending as few
   channels as possible on it (heaviest pairs first, Kruskal with a
   per-switch channel budget);
2. remaining channel budget is spent upgrading the heaviest
   communicating pairs toward their demanded multiplicity
   ``ceil(demand / capacity)`` — direct links first for hop locality,
   extra channels for bandwidth.

The result is an explicit, connected, degree-bounded switch fabric that
drops into the existing mapping/selection/generation pipeline unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.coregraph import CoreGraph
from repro.errors import TopologyError
from repro.synthesis.partition import make_partition
from repro.topology.custom import CustomTopology


@dataclass(frozen=True)
class CandidateSpec:
    """Everything needed to rebuild one synthesized fabric.

    A spec is a pure value: ``build_candidate(core_graph, spec)`` is a
    deterministic function, so specs can ship to worker processes (the
    fabric is rebuilt on the other side) and serve as engine cache keys.

    Attributes:
        strategy: partition strategy name
            (:data:`~repro.synthesis.partition.PARTITION_STRATEGIES`).
        num_switches: target cluster count handed to the partitioner
            (strategies may return more when bounds force it).
        max_cluster_size: concentration bound — cores per switch.
        max_switch_degree: maximum network channels per switch
            (core ports excluded; parallel channels each count).
        link_capacity_mb_s: per-channel capacity used to size fat links.
        fault_tolerance: surviving-link guarantee — the fabric stays
            connected under any ``fault_tolerance`` dead inter-switch
            links (Chen et al.'s k-connectivity objective; 0 = the
            plain spanning-tree fabric).
    """

    strategy: str
    num_switches: int
    max_cluster_size: int
    max_switch_degree: int
    link_capacity_mb_s: float
    fault_tolerance: int = 0

    @property
    def label(self) -> str:
        """Unique topology/table name for this candidate.

        The fault-tolerance suffix appears only when the guarantee is
        non-trivial, keeping every pre-existing label (and the
        deterministic per-candidate seeds derived from it) unchanged.
        """
        base = (
            f"syn-{self.strategy}-s{self.num_switches}"
            f"c{self.max_cluster_size}d{self.max_switch_degree}"
        )
        if self.fault_tolerance:
            base += f"-ft{self.fault_tolerance}"
        return base


def intended_assignment(clusters: list[list[int]]) -> dict[int, int]:
    """The placement the fabric was shaped for: cores in cluster order.

    Slot ``j`` of the fabric belongs to the ``j``-th core of the
    flattened cluster list, so this is the identity the partitioner had
    in mind. The mapper is free to find a better one; structural pruning
    uses this to estimate hop locality without running a search.
    """
    flat = [core for cluster in clusters for core in cluster]
    return {core: slot for slot, core in enumerate(flat)}


def fabric_from_partition(
    core_graph: CoreGraph,
    clusters: list[list[int]],
    name: str,
    max_switch_degree: int,
    link_capacity_mb_s: float,
    fault_tolerance: int = 0,
) -> CustomTopology:
    """Wire one switch per cluster into a connected, degree-bounded fabric.

    With ``fault_tolerance=k > 0`` the fabric additionally embeds a
    Harary circulant ring ``C(1..ceil((k+1)/2))`` over the switches
    before any demand-driven links, making the switch network at least
    ``k+1``-edge-connected — every communicating cluster pair stays
    routable under any ``k`` dead inter-switch links (Chen et al.'s
    generalized fault-tolerance objective).

    Raises:
        TopologyError: when the degree bound cannot even hold a
            connected fabric (``max_switch_degree < 2`` with three or
            more clusters, ``< 1`` with two), or when the
            fault-tolerance guarantee is infeasible (fewer than
            ``fault_tolerance + 2`` switches, or a degree budget too
            small for the protection ring).
    """
    k = len(clusters)
    if k == 0:
        raise TopologyError("fabric needs at least one cluster")
    if k == 2 and max_switch_degree < 1:
        raise TopologyError("two clusters need at least degree 1")
    if k > 2 and max_switch_degree < 2:
        raise TopologyError(
            f"{k} clusters cannot form a connected fabric with "
            f"max_switch_degree={max_switch_degree}"
        )

    slot_switch = [
        ci for ci, cluster in enumerate(clusters) for _ in cluster
    ]

    # Aggregate directional bandwidth between cluster pairs.
    cluster_of: dict[int, int] = {}
    for ci, cluster in enumerate(clusters):
        for core in cluster:
            cluster_of[core] = ci
    directional: dict[tuple[int, int], float] = {}
    for (src, dst), value in core_graph.flows().items():
        a, b = cluster_of[src], cluster_of[dst]
        if a != b:
            directional[(a, b)] = directional.get((a, b), 0.0) + value

    def demand(a: int, b: int) -> float:
        """Worst directional demand across the (a, b) channel pair."""
        return max(
            directional.get((a, b), 0.0), directional.get((b, a), 0.0)
        )

    def weight(a: int, b: int) -> float:
        return directional.get((a, b), 0.0) + directional.get((b, a), 0.0)

    pairs = [(a, b) for a in range(k) for b in range(a + 1, k)]
    # Heaviest-communication pairs first; zero-weight pairs follow in
    # index order, so the spanning phase prefers useful links but can
    # always fall back to them for connectivity.
    pairs.sort(key=lambda p: (-weight(*p), p))

    degree_left = {ci: max_switch_degree for ci in range(k)}
    mult: dict[tuple[int, int], int] = {}

    root = list(range(k))

    def find(x: int) -> int:
        while root[x] != x:
            root[x] = root[root[x]]
            x = root[x]
        return x

    joined = 1

    # Phase 0 — fault-tolerance ring. A Harary circulant C_k(1..j) is
    # 2j-edge-connected for k > 2j (and collapses to the complete graph
    # K_k, (k-1)-edge-connected, for small k), so j = ceil((ft+1)/2)
    # chords per direction guarantee ft+1 edge connectivity whenever
    # k >= ft+2. Spent before demand links: protection is the contract,
    # bandwidth upgrades get whatever budget remains.
    if fault_tolerance > 0 and k >= 2:
        if k < fault_tolerance + 2:
            raise TopologyError(
                f"{name}: {k} switches cannot stay connected under "
                f"{fault_tolerance} dead links (needs at least "
                f"{fault_tolerance + 2} switches)"
            )
        span = (fault_tolerance + 2) // 2
        for j in range(1, span + 1):
            for i in range(k):
                a, b = sorted((i, (i + j) % k))
                if a == b or (a, b) in mult:
                    continue
                if degree_left[a] < 1 or degree_left[b] < 1:
                    raise TopologyError(
                        f"{name}: degree budget {max_switch_degree} "
                        f"cannot hold the fault-tolerance ring "
                        f"(fault_tolerance={fault_tolerance} needs up "
                        f"to {min(2 * span, k - 1)} channels per switch)"
                    )
                mult[(a, b)] = 1
                degree_left[a] -= 1
                degree_left[b] -= 1
                ra, rb = find(a), find(b)
                if ra != rb:
                    root[ra] = rb
                    joined += 1

    # Phase 1 — degree-constrained maximum spanning tree (connectivity).
    # With a budget of >= 2 per switch this always connects: a forest on
    # m nodes spends fewer than 2m channel-ends, so every component
    # keeps a node with spare budget, and the complete pair list
    # eventually offers a pair of spare nodes across any two components.
    # (A no-op when the fault-tolerance ring already joined everything.)
    for a, b in pairs:
        if joined == k:
            break
        ra, rb = find(a), find(b)
        if ra == rb or degree_left[a] < 1 or degree_left[b] < 1:
            continue
        root[ra] = rb
        mult[(a, b)] = 1
        degree_left[a] -= 1
        degree_left[b] -= 1
        joined += 1
    if k > 1 and len({find(x) for x in range(k)}) != 1:
        raise TopologyError(
            f"{name}: degree budget {max_switch_degree} cannot connect "
            f"{k} switches"
        )

    # Phase 2 — spend remaining budget on demanded capacity: heaviest
    # pairs first, each toward ceil(demand / capacity) channels.
    for a, b in pairs:
        d = demand(a, b)
        if d <= 0.0:
            continue
        if math.isfinite(link_capacity_mb_s) and link_capacity_mb_s > 0:
            desired = max(1, math.ceil(d / link_capacity_mb_s - 1e-9))
        else:
            desired = 1
        have = mult.get((a, b), 0)
        while (
            have < desired and degree_left[a] > 0 and degree_left[b] > 0
        ):
            have += 1
            degree_left[a] -= 1
            degree_left[b] -= 1
        if have:
            mult[(a, b)] = have

    links = [
        pair for pair, count in sorted(mult.items()) for _ in range(count)
    ]
    return CustomTopology(name=name, slot_switch=slot_switch, links=links)


def build_candidate(
    core_graph: CoreGraph, spec: CandidateSpec
) -> CustomTopology:
    """Deterministically rebuild the fabric a spec describes.

    Pure function of ``(core_graph, spec)`` — executed locally for
    structural pruning and re-executed inside engine workers, always
    yielding a bit-identical topology.
    """
    clusters = make_partition(
        spec.strategy,
        core_graph,
        spec.num_switches,
        spec.max_cluster_size,
        bw_budget=spec.max_switch_degree * spec.link_capacity_mb_s
        if math.isfinite(spec.link_capacity_mb_s)
        else None,
    )
    return fabric_from_partition(
        core_graph,
        clusters,
        name=spec.label,
        max_switch_degree=spec.max_switch_degree,
        link_capacity_mb_s=spec.link_capacity_mb_s,
        fault_tolerance=spec.fault_tolerance,
    )


def candidate_clusters(
    core_graph: CoreGraph, spec: CandidateSpec
) -> list[list[int]]:
    """The partition behind a spec (for proxies and diagnostics)."""
    return make_partition(
        spec.strategy,
        core_graph,
        spec.num_switches,
        spec.max_cluster_size,
        bw_budget=spec.max_switch_degree * spec.link_capacity_mb_s
        if math.isfinite(spec.link_capacity_mb_s)
        else None,
    )
