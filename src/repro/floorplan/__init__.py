"""LP-based floorplanning (paper Section 5)."""

from repro.floorplan.blocks import Block, BlockRect
from repro.floorplan.lp import (
    DEFAULT_CHANNEL_MM,
    FloorplanResult,
    floorplan_mapping,
)
from repro.floorplan.positions import derive_columns

__all__ = [
    "Block",
    "BlockRect",
    "FloorplanResult",
    "floorplan_mapping",
    "derive_columns",
    "DEFAULT_CHANNEL_MM",
]
