"""LP-based floorplanner (paper Section 5, after [21]).

Given the column structure from :mod:`repro.floorplan.positions` (the
relative positions implied by the mapping), a single linear program finds
exact positions and soft-block sizes minimizing chip width + height:

* variables: column boundaries, per-block ``(y, w, h)``, chip height H;
* hard blocks are fixed squares, soft blocks choose a width within their
  aspect-ratio range, with the non-linear area law ``h >= A / w``
  approximated from below by tangent cuts (a standard LP floorplanning
  linearization);
* after the LP, a legalization pass restores exact areas
  (``h = max(h_lp, A / w)``) and re-stacks columns, so the result is
  always overlap-free and area-conserving even where the tangent
  approximation was loose.

The resulting block rectangles give the design area / aspect-ratio
feasibility checks and the link lengths used for power estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.core.coregraph import CoreGraph
from repro.errors import FloorplanError
from repro.floorplan.blocks import Block, BlockRect
from repro.floorplan.positions import derive_columns
from repro.physical.technology import TECH_100NM, Technology
from repro.topology.base import Topology, is_term

#: Wiring-channel margin between blocks and columns (mm).
DEFAULT_CHANNEL_MM = 0.15

#: Number of tangent cuts approximating h >= A/w for soft blocks.
TANGENT_CUTS = 5

#: Shortest physical link length accounted (same-tile connections), mm.
MIN_LINK_MM = 0.05


@dataclass
class FloorplanResult:
    """A legalized floorplan."""

    rects: dict[tuple, BlockRect]
    width_mm: float
    height_mm: float
    columns: list[list[tuple]]

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def aspect_ratio(self) -> float:
        """max(W, H) / min(W, H) >= 1."""
        lo = min(self.width_mm, self.height_mm)
        hi = max(self.width_mm, self.height_mm)
        return hi / lo if lo > 0 else math.inf

    @property
    def block_area_mm2(self) -> float:
        return sum(r.area_mm2 for r in self.rects.values())

    @property
    def whitespace_fraction(self) -> float:
        if self.area_mm2 <= 0:
            return 0.0
        return max(0.0, 1.0 - self.block_area_mm2 / self.area_mm2)

    # ------------------------------------------------------------------
    def node_center(self, topology: Topology, assignment: dict, node):
        """Physical center of a topology-graph node, or None if pruned."""
        if is_term(node):
            slot_to_core = {s: c for c, s in assignment.items()}
            core = slot_to_core.get(node[1])
            if core is None:
                return None
            rect = self.rects.get(("core", core))
        else:
            rect = self.rects.get(node)
        return rect.center if rect is not None else None

    def link_lengths(
        self, topology: Topology, assignment: dict
    ) -> dict[tuple, float]:
        """Manhattan length (mm) of every placed topology link."""
        lengths = {}
        slot_to_core = {s: c for c, s in assignment.items()}
        for u, v in topology.graph.edges():
            cu = self._center(u, slot_to_core)
            cv = self._center(v, slot_to_core)
            if cu is None or cv is None:
                continue
            dist = abs(cu[0] - cv[0]) + abs(cu[1] - cv[1])
            lengths[(u, v)] = max(dist, MIN_LINK_MM)
        return lengths

    def _center(self, node, slot_to_core):
        if is_term(node):
            core = slot_to_core.get(node[1])
            rect = self.rects.get(("core", core)) if core is not None else None
        else:
            rect = self.rects.get(node)
        return rect.center if rect is not None else None

    def validate(self) -> None:
        """Check legality; raises :class:`FloorplanError` on violation."""
        rects = list(self.rects.values())
        for r in rects:
            if r.x < -1e-9 or r.y < -1e-9:
                raise FloorplanError(f"block {r.block.name} outside origin")
            if r.x + r.w > self.width_mm + 1e-6:
                raise FloorplanError(f"block {r.block.name} exceeds width")
            if r.y + r.h > self.height_mm + 1e-6:
                raise FloorplanError(f"block {r.block.name} exceeds height")
            if r.area_mm2 < r.block.area_mm2 - 1e-6:
                raise FloorplanError(f"block {r.block.name} under area")
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                if a.overlaps(b):
                    raise FloorplanError(
                        f"blocks {a.block.name} and {b.block.name} overlap"
                    )


# ----------------------------------------------------------------------
def _solve_lp(
    columns: list[list[Block]],
    channel: float,
    max_aspect: float | None,
) -> tuple[np.ndarray, list[Block]]:
    """Solve the sizing LP; returns (solution vector, flat block list)."""
    n_cols = len(columns)
    blocks: list[Block] = [b for col in columns for b in col]
    n_blocks = len(blocks)
    # Variable layout: [X_0..X_{C-1}] then per block (y, w, h), then H.
    def xvar(c):
        return c

    def yvar(i):
        return n_cols + 3 * i

    def wvar(i):
        return n_cols + 3 * i + 1

    def hvar(i):
        return n_cols + 3 * i + 2

    hv = n_cols + 3 * n_blocks
    n_vars = hv + 1

    rows_a: list[np.ndarray] = []
    rows_b: list[float] = []

    def add(coeffs: dict[int, float], rhs: float) -> None:
        row = np.zeros(n_vars)
        for idx, val in coeffs.items():
            row[idx] += val
        rows_a.append(row)
        rows_b.append(rhs)

    flat_index = 0
    for c, col in enumerate(columns):
        prev_y = None
        for block in col:
            i = flat_index
            flat_index += 1
            # Width fits the column (with channel margin).
            coeffs = {wvar(i): 1.0, xvar(c): -1.0}
            if c > 0:
                coeffs[xvar(c - 1)] = 1.0
            add(coeffs, -channel)
            # Stacking below the previous block of the column.
            if prev_y is not None:
                j = prev_y
                add({yvar(j): 1.0, hvar(j): 1.0, yvar(i): -1.0}, -channel)
            prev_y = i
            # Below the chip top.
            add({yvar(i): 1.0, hvar(i): 1.0, hv: -1.0}, 0.0)
            # Soft-block area tangents: h >= 2A/w0 - (A/w0^2) w.
            if block.is_soft:
                w_lo, w_hi = block.width_min, block.width_max
                for t in range(TANGENT_CUTS):
                    frac = t / max(1, TANGENT_CUTS - 1)
                    w0 = w_lo * (w_hi / w_lo) ** frac
                    area = block.area_mm2
                    add(
                        {hvar(i): -1.0, wvar(i): -area / w0**2},
                        -2.0 * area / w0,
                    )
    # Chip aspect-ratio constraints.
    if max_aspect is not None:
        add({hv: 1.0, xvar(n_cols - 1): -max_aspect}, 0.0)
        add({xvar(n_cols - 1): 1.0, hv: -max_aspect}, 0.0)

    bounds: list[tuple] = []
    for c in range(n_cols):
        bounds.append((0.0, None))
    for block in blocks:
        bounds.append((0.0, None))  # y
        bounds.append((block.width_min, block.width_max))  # w
        if block.is_soft:
            h_lo = math.sqrt(block.area_mm2 / block.aspect_max)
            h_hi = math.sqrt(block.area_mm2 / block.aspect_min)
        else:
            h_lo = h_hi = math.sqrt(block.area_mm2)
        bounds.append((h_lo, h_hi))  # h
    bounds.append((0.0, None))  # H

    cost = np.zeros(n_vars)
    cost[xvar(n_cols - 1)] = 1.0  # W
    cost[hv] = 1.0  # H

    res = linprog(
        cost,
        A_ub=np.vstack(rows_a),
        b_ub=np.array(rows_b),
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        raise FloorplanError(f"floorplan LP failed: {res.message}")
    return res.x, blocks


def _legalize(
    columns: list[list[Block]],
    solution: np.ndarray,
    blocks: list[Block],
    channel: float,
    max_aspect: float | None = None,
) -> FloorplanResult:
    """Restore exact areas and re-stack; always overlap-free.

    When the tight packing violates ``max_aspect``, the short dimension
    is padded with whitespace — the aspect bound thus converts into an
    area cost that the area constraint judges downstream.
    """
    n_cols = len(columns)
    widths = []
    flat = 0
    sizes: list[tuple[float, float]] = []
    for col in columns:
        col_w = 0.0
        for block in col:
            w = float(solution[n_cols + 3 * flat + 1])
            if block.is_soft:
                h = max(
                    float(solution[n_cols + 3 * flat + 2]),
                    block.area_mm2 / w,
                )
            else:
                h = math.sqrt(block.area_mm2)
                w = h
            sizes.append((w, h))
            col_w = max(col_w, w)
            flat += 1
        widths.append(col_w + channel)

    rects: dict[tuple, BlockRect] = {}
    col_keys: list[list[tuple]] = []
    x0 = 0.0
    flat = 0
    height = 0.0
    for c, col in enumerate(columns):
        keys = []
        y = channel / 2.0
        inner = widths[c] - channel
        for block in col:
            w, h = sizes[flat]
            if block.is_soft:
                # Widen to fill the column (within aspect bounds); the
                # freed height tightens the chip without re-solving.
                w = min(block.width_max, inner)
                h = max(block.area_mm2 / w,
                        math.sqrt(block.area_mm2 / block.aspect_max))
            x = x0 + channel / 2.0 + (inner - w) / 2.0
            rects[block.key] = BlockRect(block=block, x=x, y=y, w=w, h=h)
            keys.append(block.key)
            y += h + channel
            flat += 1
        height = max(height, y - channel / 2.0)
        col_keys.append(keys)
        x0 += widths[c]
    if max_aspect is not None and x0 > 0 and height > 0:
        if height > max_aspect * x0:
            x0 = height / max_aspect
        elif x0 > max_aspect * height:
            height = x0 / max_aspect
    return FloorplanResult(
        rects=rects, width_mm=x0, height_mm=height, columns=col_keys
    )


def floorplan_mapping(
    topology: Topology,
    assignment: dict[int, int],
    core_graph: CoreGraph,
    used_switches: set | None = None,
    tech: Technology = TECH_100NM,
    channel_mm: float = DEFAULT_CHANNEL_MM,
    max_aspect: float | None = 3.0,
) -> FloorplanResult:
    """Floorplan one mapping (Figure 5, step 7).

    Args:
        topology: the NoC.
        assignment: core index -> terminal slot.
        core_graph: supplies core block areas and softness.
        used_switches: prune unused multistage switches before placing.
        max_aspect: chip aspect-ratio bound fed to the LP (None = free).

    Raises:
        FloorplanError: if the LP is infeasible (e.g. impossible aspect
            bound) — the mapping is then area-infeasible.
    """
    columns = derive_columns(
        topology,
        assignment,
        core_graph,
        used_switches=used_switches,
        tech=tech,
    )
    columns = [col for col in columns if col]
    if not columns:
        raise FloorplanError("nothing to floorplan")
    solution, blocks = _solve_lp(columns, channel_mm, max_aspect)
    result = _legalize(columns, solution, blocks, channel_mm, max_aspect)
    result.validate()
    return result
