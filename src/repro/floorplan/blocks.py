"""Floorplan block model.

Two block kinds exist in a SUNMAP floorplan: core blocks (areas supplied
with the application, usually *soft* — reshapeable within aspect-ratio
bounds) and switch blocks (areas from the analytical model of Section 5,
treated as hard square macros).

Block identity keys deliberately mirror the topology-graph node scheme:
``("core", core_index)`` and ``("sw", switch_key)``, so link-length lookup
is a direct translation of graph edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FloorplanError


@dataclass(frozen=True)
class Block:
    """One rectangular block to place.

    Attributes:
        key: ``("core", index)`` or ``("sw", switch_key)``.
        name: display name.
        area_mm2: required area; soft blocks may exceed it slightly after
            legalization, never undershoot it.
        is_soft: soft blocks choose their width within the aspect bounds,
            hard blocks are fixed squares.
        aspect_min / aspect_max: allowed width/height ratio for soft
            blocks.
    """

    key: tuple
    name: str
    area_mm2: float
    is_soft: bool = True
    aspect_min: float = 1.0 / 3.0
    aspect_max: float = 3.0

    def __post_init__(self):
        if self.area_mm2 <= 0:
            raise FloorplanError(f"block {self.name!r} needs positive area")
        if self.aspect_min <= 0 or self.aspect_max < self.aspect_min:
            raise FloorplanError(f"block {self.name!r} has bad aspect bounds")

    @property
    def width_min(self) -> float:
        """Smallest legal width (soft) or the fixed width (hard)."""
        if not self.is_soft:
            return math.sqrt(self.area_mm2)
        return math.sqrt(self.area_mm2 * self.aspect_min)

    @property
    def width_max(self) -> float:
        if not self.is_soft:
            return math.sqrt(self.area_mm2)
        return math.sqrt(self.area_mm2 * self.aspect_max)


@dataclass(frozen=True)
class BlockRect:
    """A placed block: lower-left corner plus dimensions (mm)."""

    block: Block
    x: float
    y: float
    w: float
    h: float

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    @property
    def area_mm2(self) -> float:
        return self.w * self.h

    def overlaps(self, other: "BlockRect", tol: float = 1e-9) -> bool:
        return not (
            self.x + self.w <= other.x + tol
            or other.x + other.w <= self.x + tol
            or self.y + self.h <= other.y + tol
            or other.y + other.h <= self.y + tol
        )
