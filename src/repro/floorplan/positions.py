"""Relative block positions from a topology and a mapping.

"For a particular mapping that needs to be evaluated for
area-power-latency, the relative positions of the cores and switches are
known. Thus the floorplanning problem is reduced to the one of finding
the exact positions and sizes" (Section 5). This module computes those
relative positions as an ordered *column structure*: a list of columns
(left to right), each an ordered list of blocks (bottom to top), which is
exactly the partial order the LP floorplanner consumes.

Direct topologies use their natural grid (core and switch share a tile).
Multistage topologies follow the paper's Figure 10(b) layout: half of the
cores on the left, the switch stages as thin middle columns, the
remaining cores on the right.
"""

from __future__ import annotations

import math

from repro.core.coregraph import CoreGraph
from repro.errors import FloorplanError
from repro.floorplan.blocks import Block
from repro.physical.library import AreaPowerLibrary
from repro.physical.switch_area import SwitchConfig
from repro.physical.technology import TECH_100NM, Technology
from repro.topology.base import Topology, term

#: Maximum core blocks stacked in one generated column (indirect layout).
MAX_CORES_PER_COLUMN = 4


def _core_block(core_graph: CoreGraph, core_index: int) -> Block:
    core = core_graph.core(core_index)
    return Block(
        key=("core", core_index),
        name=core.name,
        area_mm2=core.area_mm2,
        is_soft=core.is_soft,
        aspect_min=core.aspect_min,
        aspect_max=core.aspect_max,
    )


def _switch_block(
    topology: Topology, sw, library: AreaPowerLibrary
) -> Block:
    n_in, n_out = topology.switch_ports(sw)
    cfg = SwitchConfig(
        n_in=n_in,
        n_out=n_out,
        flit_width_bits=library.tech.flit_width_bits,
        buffer_depth_flits=library.tech.buffer_depth_flits,
    )
    return Block(
        key=sw,
        name=f"sw{sw[1]}",
        area_mm2=library.entry(cfg).area_mm2,
        is_soft=False,
    )


def _chunk_columns(blocks: list[Block], per_column: int) -> list[list[Block]]:
    """Split a block list into balanced columns of at most ``per_column``."""
    if not blocks:
        return []
    n_cols = math.ceil(len(blocks) / per_column)
    rows = math.ceil(len(blocks) / n_cols)
    return [blocks[i : i + rows] for i in range(0, len(blocks), rows)]


def _direct_columns(
    topology: Topology,
    slot_to_core: dict[int, int],
    core_graph: CoreGraph,
    library: AreaPowerLibrary,
) -> list[list[Block]]:
    """Group blocks by the x coordinate of their topology position."""
    entries = []  # (x, y, order, block)
    for sw in topology.switches:
        x, y = topology.position(sw)
        entries.append((x, y, 1, _switch_block(topology, sw, library)))
    for slot, core_index in slot_to_core.items():
        x, y = topology.position(term(slot))
        entries.append((x, y, 0, _core_block(core_graph, core_index)))
    xs = sorted({round(x, 6) for x, _, _, _ in entries})
    columns = []
    for x in xs:
        column = sorted(
            (e for e in entries if round(e[0], 6) == x),
            key=lambda e: (e[1], e[2]),
        )
        columns.append([e[3] for e in column])
    return columns


def _indirect_columns(
    topology: Topology,
    slot_to_core: dict[int, int],
    core_graph: CoreGraph,
    library: AreaPowerLibrary,
    used_switches: set | None,
) -> list[list[Block]]:
    """Figure 10(b)-style layout: cores split around the switch stages."""
    slots = sorted(slot_to_core)
    half = math.ceil(len(slots) / 2)
    left = [_core_block(core_graph, slot_to_core[s]) for s in slots[:half]]
    right = [_core_block(core_graph, slot_to_core[s]) for s in slots[half:]]

    stages = getattr(topology, "stages", None)
    if stages is None:
        raise FloorplanError(
            f"indirect topology {topology.name} lacks a stages() layout"
        )
    stage_columns = []
    for stage in stages():
        column = [
            _switch_block(topology, sw, library)
            for sw in stage
            if used_switches is None or sw in used_switches
        ]
        if column:
            stage_columns.append(column)

    columns = _chunk_columns(left, MAX_CORES_PER_COLUMN)
    columns += stage_columns
    columns += _chunk_columns(right, MAX_CORES_PER_COLUMN)
    return columns


def derive_columns(
    topology: Topology,
    assignment: dict[int, int],
    core_graph: CoreGraph,
    used_switches: set | None = None,
    tech: Technology = TECH_100NM,
    library: AreaPowerLibrary | None = None,
) -> list[list[Block]]:
    """Column structure for a mapping.

    Args:
        assignment: core index -> terminal slot (the ``map`` function).
        used_switches: optional pruning set for multistage topologies.
    """
    if library is None:
        library = AreaPowerLibrary(tech)
    slot_to_core = {slot: core for core, slot in assignment.items()}
    if len(slot_to_core) != len(assignment):
        raise FloorplanError("assignment maps two cores to one slot")
    if topology.kind == "direct":
        return _direct_columns(topology, slot_to_core, core_graph, library)
    return _indirect_columns(
        topology, slot_to_core, core_graph, library, used_switches
    )
