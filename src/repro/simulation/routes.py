"""Routing tables for the simulator.

Deterministic, deadlock-safe next-hop tables per (node, destination slot):

* mesh / torus / hypercube / butterfly / star use their dimension-ordered
  (or unique) paths — the classic deadlock-free choices (torus and ring
  wrap links additionally switch packets to VC 1, the dateline scheme);
* Clos ingress switches hold *all* middle switches as candidates and the
  simulator picks one per packet (randomly, seeded) — the path diversity
  that Section 6.2's experiment rewards;
* anything else falls back to all shortest-path next hops.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import UnsupportedRoutingError
from repro.routing.shortest import routing_view
from repro.topology.base import Topology, is_term, term


class RouteTable:
    """Per-(node, destination) candidate next hops."""

    def __init__(self, topology: Topology, slots: list[int] | None = None):
        self.topology = topology
        self.slots = list(range(topology.num_slots)) if slots is None else slots
        self._table: dict[tuple, tuple] = {}
        self._build()

    def _build(self) -> None:
        candidates: dict[tuple, set] = {}
        for dst in self.slots:
            for src in self.slots:
                if src == dst:
                    continue
                try:
                    for path in self._paths(src, dst):
                        for a, b in zip(path, path[1:]):
                            if is_term(a):
                                continue  # injection handled by the terminal
                            candidates.setdefault((a, term(dst)), set()).add(b)
                except nx.NetworkXNoPath:
                    # Faults severed this pair: leave it out of the table
                    # (a packet for it raises UnsupportedRoutingError at
                    # injection) instead of aborting the whole build.
                    continue
        self._table = {
            key: tuple(sorted(nexts, key=repr))
            for key, nexts in candidates.items()
        }

    def _paths(self, src: int, dst: int):
        try:
            yield self.topology.dor_path(src, dst)
            return
        except UnsupportedRoutingError:
            pass
        # Search the switch fabric plus the two endpoint terminals only:
        # routes must never pass *through* a third core's terminal, and
        # on a faulted fabric a terminal bounce can otherwise tie for
        # shortest (e.g. a butterfly terminal bridging the output stage
        # back to the input stage around a dead link).
        s, d = term(src), term(dst)
        yield from nx.all_shortest_paths(
            routing_view(self.topology.graph, s, d), s, d
        )

    def candidates(self, node, dst_slot: int) -> tuple:
        """All legal next hops from ``node`` toward ``dst_slot``."""
        try:
            return self._table[(node, term(dst_slot))]
        except KeyError:
            raise UnsupportedRoutingError(
                f"no route from {node} to slot {dst_slot}"
            ) from None

    def next_hop(self, node, dst_slot: int, rng) -> tuple:
        """Pick one next hop; random among candidates when diverse."""
        options = self.candidates(node, dst_slot)
        if len(options) == 1:
            return options[0]
        return options[rng.randrange(len(options))]

    def switch_candidate_arrays(
        self, switch_order: list, num_slots: int
    ) -> list[list[tuple | None]]:
        """Dense per-switch next-hop arrays for the simulator kernel.

        ``arrays[si][dst]`` holds the candidate next-hop nodes (the same
        tuple, in the same repr-sorted order, that :meth:`candidates`
        returns) for the ``si``-th switch of ``switch_order`` toward
        destination slot ``dst``, or ``None`` when the switch lies on no
        route to that slot. The kernel indexes these arrays with
        integers instead of hashing ``(node, term(dst))`` tuples per
        head flit.
        """
        arrays: list[list[tuple | None]] = []
        table = self._table
        for sw in switch_order:
            row: list[tuple | None] = [None] * num_slots
            for dst in self.slots:
                row[dst] = table.get((sw, term(dst)))
            arrays.append(row)
        return arrays
