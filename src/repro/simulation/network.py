"""Cycle-accurate wormhole NoC simulator.

This is the reproduction's stand-in for the paper's cycle-accurate
SystemC simulation of the generated xpipes design (Sections 6.2 and 6.4):
input-buffered switches, credit-based flow control, round-robin output
arbitration, wormhole switching, and two virtual channels with dateline
VC switching on torus/ring wrap links (the classic deadlock-free
configuration).

Timing model: one cycle per switch traversal (arbitrate + crossbar), a
configurable link latency, one flit per cycle per channel. All state
advances via events scheduled strictly into future cycles, so results do
not depend on iteration order within a cycle.

Kernel design — integer indices + event wheel
---------------------------------------------
The hot loop never hashes a graph-node or edge tuple:

* Switches are interned to contiguous ints in repr-sorted order at
  construction, so the per-cycle "iterate busy switches in a stable,
  hash-seed-independent order" is ``sorted()`` over a small set of ints
  instead of the original per-cycle ``sorted(..., key=repr)`` over node
  tuples (repr-formatting every busy switch every cycle was the single
  most expensive line of the old kernel).
* Every ``(edge, vc)`` pair is interned to a contiguous *channel* id;
  input FIFOs, credits, wormhole locks, round-robin pointers, per-flit
  route requests and per-switch flit counters all live in flat lists
  indexed by channel or switch id.
* Route lookups use dense per-switch arrays precomputed from the
  :class:`~repro.simulation.routes.RouteTable` (candidate order and the
  RNG draw pattern for adaptive Clos middles are preserved exactly).
* The future-event maps (flit arrivals, credit returns) are fixed-size
  ring-buffer event wheels sized ``link_latency + switch_latency + 1``
  — every scheduled offset fits the wheel, so scheduling is a single
  ``list.append`` and delivery a single slot swap, replacing the old
  ``dict.setdefault(cycle, [])`` event maps.

The refactor is bit-identical to the original tuple-keyed kernel: same
per-packet latencies, same ``SimReport`` statistics, same per-switch
load histograms (pinned by ``tests/golden/simulation.json``).

The dict-shaped views (:attr:`Network.inputs`, :attr:`Network.outputs`,
:attr:`Network.switch_inputs`, :attr:`Network.switch_flits`) survive for
tests and debugging; they are rebuilt on access and never used by the
kernel itself.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass
from random import Random

from repro.errors import SimulationError, UnsupportedRoutingError
from repro.simulation.flit import Flit, Packet
from repro.simulation.routes import RouteTable
from repro.topology.base import Topology, is_switch, term


@dataclass(frozen=True)
class SimConfig:
    """Simulator parameters.

    Attributes:
        packet_length_flits: flits per packet (header + body + tail).
        buffer_depth_flits: input FIFO depth per virtual channel.
        link_latency: cycles a flit spends on a link.
        switch_latency: pipeline cycles through a switch (arbitration +
            crossbar traversal).
        num_vcs: virtual channels per physical link (2 supports the
            torus dateline scheme).
        seed: RNG seed (adaptive Clos middle choice, traffic).
    """

    packet_length_flits: int = 8
    buffer_depth_flits: int = 8
    link_latency: int = 1
    switch_latency: int = 1
    num_vcs: int = 2
    seed: int = 1

    def __post_init__(self):
        if self.packet_length_flits < 1:
            raise SimulationError("packets need at least one flit")
        if self.buffer_depth_flits < 1:
            raise SimulationError("buffers need at least one flit slot")
        if self.link_latency < 1:
            raise SimulationError("link latency must be >= 1 cycle")
        if self.switch_latency < 0:
            raise SimulationError("switch latency cannot be negative")
        if self.num_vcs < 1:
            raise SimulationError("need at least one virtual channel")


_INFINITE_CREDITS = 1 << 30

#: Sentinels for the flat owner array (any real owner is a channel id).
_FREE = -1
_SOURCE = -2


class _ChannelView:
    """Dict-view adapter exposing one interned channel's live state.

    Only tests and debugging read these; the kernel works on the flat
    arrays directly.
    """

    __slots__ = ("_net", "_ch")

    def __init__(self, net: "Network", ch: int):
        self._net = net
        self._ch = ch

    @property
    def queue(self):
        return self._net._in_queue[self._ch]

    @property
    def request(self):
        rq = self._net._in_request[self._ch]
        return None if rq < 0 else self._net.chan_key[rq]

    @property
    def credits(self) -> int:
        return self._net._out_credits[self._ch]

    @property
    def owner(self):
        owner = self._net._out_owner[self._ch]
        if owner == _FREE:
            return None
        if owner == _SOURCE:
            return "src"
        return self._net.chan_key[owner]

    @property
    def owner_pid(self) -> int:
        return self._net._out_owner_pid[self._ch]

    @property
    def rr(self) -> int:
        return self._net._out_rr[self._ch]

    def __repr__(self) -> str:
        return f"_ChannelView({self._net.chan_key[self._ch]!r})"


class _KernelLayout:
    """Interned, immutable kernel structure for one (topology,
    active slots, VC count) combination.

    Building the layout interns nodes/edges/channels to contiguous ints
    and precomputes the dense next-hop arrays; it also builds the
    :class:`~repro.simulation.routes.RouteTable` (the expensive part —
    all shortest paths per slot pair). Layouts are cached on the
    topology object, so the engine's pattern of constructing one
    :class:`Network` per campaign point over the same topology pays the
    construction cost once.
    """

    __slots__ = (
        "routes",
        "wrap_edges",
        "switch_nodes",
        "switch_labels",
        "chan_key",
        "edge_base",
        "chan_vc",
        "chan_dest_switch",
        "switch_in_chans",
        "next_hop",
        "inject_ch",
    )

    def __init__(self, topology: Topology, active_slots: list[int],
                 num_vcs: int):
        self.routes = RouteTable(topology, active_slots)
        graph = topology.graph
        self.wrap_edges = {
            (u, v)
            for u, v, d in graph.edges(data=True)
            if d.get("wrap", False)
        }

        # Switch interning (repr-sorted: ascending int order == the
        # stable cross-hash-seed order the old kernel re-sorted each
        # cycle).
        self.switch_nodes: list = sorted(topology.switches, key=repr)
        switch_index = {sw: i for i, sw in enumerate(self.switch_nodes)}
        self.switch_labels: tuple[str, ...] = tuple(
            f"sw{sw[1]}" for sw in self.switch_nodes
        )

        # Channel interning: edge-major (graph edge order), vc-minor.
        # Input buffers exist at the downstream end of every edge whose
        # head is a switch; terminal ejection consumes flits immediately.
        self.chan_key: list[tuple] = []  # ch -> ((u, v), vc)
        self.edge_base: dict[tuple, int] = {}  # (u, v) -> first channel
        self.chan_vc: list[int] = []
        self.chan_dest_switch: list[int] = []  # switch id, -1 = terminal
        self.switch_in_chans: list[list[int]] = [
            [] for _ in self.switch_nodes
        ]
        for u, v in graph.edges():
            self.edge_base[(u, v)] = len(self.chan_key)
            dest_switch = switch_index[v] if is_switch(v) else -1
            for vc in range(num_vcs):
                ch = len(self.chan_key)
                self.chan_key.append(((u, v), vc))
                self.chan_vc.append(vc)
                self.chan_dest_switch.append(dest_switch)
                if dest_switch >= 0:
                    self.switch_in_chans[dest_switch].append(ch)

        # Dense next-hop arrays: next_hop[si][dst] is a tuple of
        # (vc0_out_channel, vc1plus_out_channel) pairs, one per candidate
        # next hop, in the RouteTable's candidate order. The pair folds
        # the dateline VC rule: a flit on VC 0 stays on VC 0 unless the
        # chosen edge wraps; a flit already on VC >= 1 stays on VC 1.
        self.next_hop: list[list[tuple | None]] = []
        for si, candidate_row in enumerate(
            self.routes.switch_candidate_arrays(
                self.switch_nodes, topology.num_slots
            )
        ):
            sw = self.switch_nodes[si]
            row: list[tuple | None] = [None] * topology.num_slots
            for dst, candidates in enumerate(candidate_row):
                if candidates is None:
                    continue
                pairs = []
                for nxt in candidates:
                    base = self.edge_base[(sw, nxt)]
                    vc0 = (
                        1
                        if num_vcs > 1 and (sw, nxt) in self.wrap_edges
                        else 0
                    )
                    vc1 = 1 if num_vcs > 1 else 0
                    pairs.append((base + vc0, base + vc1))
                row[dst] = tuple(pairs)
            self.next_hop.append(row)

        self.inject_ch = {
            s: self.edge_base[(term(s), topology.switch_of(s))]
            for s in active_slots
        }


def _kernel_layout(
    topology: Topology, active_slots: list[int], num_vcs: int
) -> _KernelLayout:
    """Fetch (or build and cache) the interned layout for a topology."""
    cache = topology.__dict__.setdefault("_sim_layout_cache", {})
    key = (tuple(active_slots), num_vcs)
    layout = cache.get(key)
    if layout is None:
        layout = cache[key] = _KernelLayout(topology, active_slots, num_vcs)
    return layout


class Network:
    """A simulatable NoC instance.

    Args:
        topology: any library topology.
        config: simulator parameters.
        active_slots: terminal slots hosting traffic endpoints (defaults
            to all slots; pass the mapped slots for trace-driven runs).
    """

    def __init__(
        self,
        topology: Topology,
        config: SimConfig | None = None,
        active_slots: list[int] | None = None,
    ):
        self.topology = topology
        self.config = config or SimConfig()
        self.active_slots = (
            list(range(topology.num_slots))
            if active_slots is None
            else sorted(active_slots)
        )
        self.rng = Random(self.config.seed)
        layout = _kernel_layout(
            topology, self.active_slots, self.config.num_vcs
        )
        self._layout = layout
        self.routes = layout.routes
        self._wrap_edges = layout.wrap_edges
        self._switch_nodes = layout.switch_nodes
        self.switch_labels = layout.switch_labels
        self.chan_key = layout.chan_key
        self._edge_base = layout.edge_base
        self._chan_vc = layout.chan_vc
        self._chan_dest_switch = layout.chan_dest_switch
        self._switch_in_chans = layout.switch_in_chans
        self._next_hop = layout.next_hop
        self._inject_ch = layout.inject_ch

        # Per-instance mutable channel state, indexed by channel id.
        buffer_depth = self.config.buffer_depth_flits
        self._in_queue: list[deque | None] = [
            deque() if dest >= 0 else None
            for dest in layout.chan_dest_switch
        ]
        self._in_request = [-1] * len(layout.chan_key)
        self._out_credits = [
            buffer_depth if dest >= 0 else _INFINITE_CREDITS
            for dest in layout.chan_dest_switch
        ]
        self._out_owner = [_FREE] * len(layout.chan_key)
        self._out_owner_pid = [-1] * len(layout.chan_key)
        self._out_rr = [0] * len(layout.chan_key)
        # Non-empty input channels per switch, kept sorted ascending —
        # channel ids are assigned in the same edge-major order the old
        # kernel scanned, so ascending id == the legacy scan order.
        self._active_in: list[list[int]] = [
            [] for _ in layout.switch_nodes
        ]

        self.source_queues: dict[int, deque[Flit]] = {
            s: deque() for s in self.active_slots
        }

        # --- degraded channels (fault overlays): a per-channel
        # forwarding period (inverse capacity factor) and extra per-hop
        # latency. All ``None`` on pristine fabrics, keeping the fused
        # loop's exact fast path (and its bit-identical goldens) intact.
        degradations = getattr(topology, "channel_degradations", None)
        degradations = (
            degradations() if callable(degradations) else None
        )
        self._chan_period: list[int] | None = None
        self._chan_extra: list[int] | None = None
        self._chan_free_at: list[int] | None = None
        max_extra = 0
        if degradations:
            nchan = len(layout.chan_key)
            periods = [1] * nchan
            extras = [0] * nchan
            for edge, (cap_factor, extra_latency) in degradations.items():
                base = layout.edge_base.get(edge)
                if base is None:
                    continue
                period = max(1, round(1.0 / float(cap_factor)))
                for vc in range(self.config.num_vcs):
                    periods[base + vc] = period
                    extras[base + vc] = int(extra_latency)
            if any(p != 1 for p in periods) or any(extras):
                self._chan_period = periods
                self._chan_extra = extras
                self._chan_free_at = [0] * nchan
                max_extra = max(extras)

        # --- event wheels: every scheduled offset (forward = link +
        # switch latency + per-channel extra, injection = link latency,
        # credit = 1) is at most horizon - 1, so slots never collide.
        self._horizon = (
            self.config.link_latency + self.config.switch_latency + 1
            + max_extra
        )
        self._forward_delay = (
            self.config.link_latency + self.config.switch_latency
        )
        self._arrival_wheel: list[list] = [[] for _ in range(self._horizon)]
        self._credit_wheel: list[list[int]] = [
            [] for _ in range(self._horizon)
        ]

        self.cycle = 0
        self._busy_switches: set[int] = set()
        self._queued_flits = 0

        self.delivered: list[Packet] = []
        self.packets: list[Packet] = []  # every packet ever created
        self.injected_packets = 0
        self.injected_flits = 0
        self.ejected_flits = 0
        #: Flits forwarded per switch id (crossbar traversals) — the raw
        #: material of the campaign's per-switch load histograms.
        self._switch_flits: list[int] = [0] * len(self._switch_nodes)
        self._next_pid = 0
        self._in_flight = 0

    # ------------------------------------------------------------------
    # traffic entry point
    # ------------------------------------------------------------------
    def create_packet(self, src_slot: int, dst_slot: int) -> Packet:
        """Queue a new packet at a source terminal."""
        if src_slot == dst_slot:
            raise SimulationError("packet source equals destination")
        if src_slot not in self.source_queues:
            raise SimulationError(f"slot {src_slot} is not active")
        packet = Packet(
            pid=self._next_pid,
            src=src_slot,
            dst=dst_slot,
            length=self.config.packet_length_flits,
            created=self.cycle,
        )
        self._next_pid += 1
        self.source_queues[src_slot].extend(packet.flits())
        self._queued_flits += packet.length
        self.packets.append(packet)
        self.injected_packets += 1
        self._in_flight += 1
        return packet

    @property
    def in_flight(self) -> int:
        """Packets created but not yet fully ejected."""
        return self._in_flight

    # ------------------------------------------------------------------
    # cycle loop
    # ------------------------------------------------------------------
    def step(self, traffic=None) -> None:
        """Advance one cycle."""
        self._advance(1, traffic)

    def run(self, cycles: int, traffic=None) -> None:
        self._advance(cycles, traffic)

    def drain(self, max_cycles: int = 100000) -> bool:
        """Run without new traffic until every packet is delivered."""
        return self._advance(max_cycles, None, stop_on_drain=True)

    # ------------------------------------------------------------------
    def _schedule_arrival(self, when: int, ch: int, flit: Flit) -> None:
        self._arrival_wheel[when % self._horizon].append((ch, flit))

    def _advance(self, cycles: int, traffic, stop_on_drain: bool = False):
        """The fused cycle loop: arrivals, credits, switch phases and
        injection inlined into one frame so the per-cycle state (flat
        channel arrays, event wheels) binds once per call instead of
        once per cycle. Returns the drained flag in ``stop_on_drain``
        mode, else ``None``.

        Per-cycle order (same as the original split methods): deliver
        this cycle's arrivals, apply credit returns, run the switch
        phases, inject from source queues, then call ``traffic``. All
        events schedule strictly into future cycles, so within-cycle
        iteration order never influences results.
        """
        horizon = self._horizon
        arrival_wheel = self._arrival_wheel
        credit_wheel = self._credit_wheel
        in_queue = self._in_queue
        in_request = self._in_request
        out_owner = self._out_owner
        out_owner_pid = self._out_owner_pid
        out_credits = self._out_credits
        out_rr = self._out_rr
        chan_vc = self._chan_vc
        chan_dest = self._chan_dest_switch
        switch_flits = self._switch_flits
        next_hop = self._next_hop
        active_in = self._active_in
        inject_ch = self._inject_ch
        active_slots = self.active_slots
        source_queues = self.source_queues
        delivered_append = self.delivered.append
        forward_delay = self._forward_delay
        link_latency = self.config.link_latency
        chan_period = self._chan_period
        chan_extra = self._chan_extra
        chan_free_at = self._chan_free_at
        rng = self.rng
        # Tests may monkeypatch ``_schedule_arrival`` to spy on events;
        # route every scheduled arrival through the method in that case
        # instead of appending straight to the wheel slot.
        patched = (
            "_schedule_arrival" in self.__dict__
            or type(self)._schedule_arrival is not Network._schedule_arrival
        )

        for _ in range(cycles):
            if stop_on_drain and self._in_flight == 0:
                return True
            cycle = self.cycle + 1
            self.cycle = cycle
            busy = self._busy_switches

            # --- deliver this cycle's flit arrivals
            slot = cycle % horizon
            events = arrival_wheel[slot]
            if events:
                arrival_wheel[slot] = []
                for ch, flit in events:
                    si = chan_dest[ch]
                    if si < 0:
                        self.ejected_flits += 1
                        if flit.is_tail:
                            flit.packet.ejected = cycle
                            delivered_append(flit.packet)
                            self._in_flight -= 1
                        continue
                    queue = in_queue[ch]
                    if not queue:
                        insort(active_in[si], ch)
                    queue.append(flit)
                    busy.add(si)

            # --- apply credit returns
            events = credit_wheel[slot]
            if events:
                credit_wheel[slot] = []
                for ch in events:
                    out_credits[ch] += 1

            # --- switch phases
            if busy:
                arrive_at = cycle + forward_delay
                arrival_append = (
                    None
                    if patched
                    else arrival_wheel[arrive_at % horizon].append
                )
                credit_append = credit_wheel[(cycle + 1) % horizon].append
                still_busy = set()
                # Ascending switch-id iteration == the stable repr order
                # (ids were assigned repr-sorted): the RNG draws below
                # (adaptive middle choice) consume in a reproducible
                # order regardless of hash seed or activity history.
                for si in sorted(busy):
                    active = active_in[si]
                    if not active:
                        continue  # had flits last cycle; drops out now
                    # Phase A: collect route requests of head flits.
                    requests: dict[int, list[int]] | None = None
                    for ch in active:
                        flit = in_queue[ch][0]
                        if flit.is_head:
                            rq = in_request[ch]
                            if rq < 0:
                                candidates = next_hop[si][flit.packet.dst]
                                if candidates is None:
                                    raise UnsupportedRoutingError(
                                        f"no route from "
                                        f"{self._switch_nodes[si]} to "
                                        f"slot {flit.packet.dst}"
                                    )
                                pair = (
                                    candidates[0]
                                    if len(candidates) == 1
                                    else candidates[
                                        rng.randrange(len(candidates))
                                    ]
                                )
                                rq = pair[1] if chan_vc[ch] else pair[0]
                                in_request[ch] = rq
                            if out_owner[rq] == _FREE:
                                if requests is None:
                                    requests = {rq: [ch]}
                                elif rq in requests:
                                    requests[rq].append(ch)
                                else:
                                    requests[rq] = [ch]
                    # Phase B: round-robin arbitration per output.
                    if requests is not None:
                        for rq, askers in requests.items():
                            if out_owner[rq] != _FREE:
                                continue
                            winner = askers[out_rr[rq] % len(askers)]
                            out_rr[rq] += 1
                            out_owner[rq] = winner
                            out_owner_pid[rq] = (
                                in_queue[winner][0].packet.pid
                            )
                    # Phase C: forward one flit per locked output with
                    # credit.
                    emptied = False
                    for ch in active:
                        rq = in_request[ch]
                        if rq < 0:
                            continue
                        if out_owner[rq] != ch or out_credits[rq] <= 0:
                            continue
                        if (
                            chan_period is not None
                            and cycle < chan_free_at[rq]
                        ):
                            continue  # degraded channel still busy
                        queue = in_queue[ch]
                        flit = queue[0]
                        if flit.packet.pid != out_owner_pid[rq]:
                            continue  # next packet must re-arbitrate
                        queue.popleft()
                        out_credits[rq] -= 1
                        switch_flits[si] += 1
                        if chan_period is not None:
                            chan_free_at[rq] = cycle + chan_period[rq]
                            self._schedule_arrival(
                                arrive_at + chan_extra[rq], rq, flit
                            )
                        elif arrival_append is not None:
                            arrival_append((rq, flit))
                        else:
                            self._schedule_arrival(arrive_at, rq, flit)
                        # Return a credit upstream for the freed slot.
                        credit_append(ch)
                        if not queue:
                            emptied = True
                        if flit.is_tail:
                            out_owner[rq] = _FREE
                            out_owner_pid[rq] = -1
                            in_request[ch] = -1
                    if emptied:
                        active_in[si] = [
                            ch for ch in active if in_queue[ch]
                        ]
                    still_busy.add(si)
                self._busy_switches = still_busy

            # --- inject from source queues
            if self._queued_flits:
                when = cycle + link_latency
                inject_append = (
                    None
                    if patched
                    else arrival_wheel[when % horizon].append
                )
                for src_slot in active_slots:
                    queue = source_queues[src_slot]
                    if not queue:
                        continue
                    ch = inject_ch[src_slot]
                    flit = queue[0]
                    if flit.is_head and out_owner[ch] == _FREE:
                        out_owner[ch] = _SOURCE
                        out_owner_pid[ch] = flit.packet.pid
                    if (
                        out_owner[ch] != _SOURCE
                        or out_owner_pid[ch] != flit.packet.pid
                    ):
                        continue
                    if out_credits[ch] <= 0:
                        continue
                    queue.popleft()
                    self._queued_flits -= 1
                    out_credits[ch] -= 1
                    self.injected_flits += 1
                    if inject_append is not None:
                        inject_append((ch, flit))
                    else:
                        self._schedule_arrival(when, ch, flit)
                    if flit.is_tail:
                        out_owner[ch] = _FREE
                        out_owner_pid[ch] = -1

            if traffic is not None:
                traffic(self)

        if stop_on_drain:
            return self._in_flight == 0
        return None

    # ------------------------------------------------------------------
    # measurement accessors and debug views
    # ------------------------------------------------------------------
    def switch_flit_counts(self) -> list[int]:
        """Per-switch forwarded-flit counters, aligned with
        :attr:`switch_labels` (a copy; cheap to snapshot around a
        measurement window)."""
        return list(self._switch_flits)

    @property
    def switch_flits(self) -> dict:
        """Flits forwarded per switch graph node (rebuilt view)."""
        counts = dict(zip(self._switch_nodes, self._switch_flits))
        return {sw: counts[sw] for sw in self.topology.switches}

    @property
    def inputs(self) -> dict:
        """``(edge, vc) -> input buffer`` view over interned channels."""
        return {
            key: _ChannelView(self, ch)
            for ch, key in enumerate(self.chan_key)
            if self._in_queue[ch] is not None
        }

    @property
    def outputs(self) -> dict:
        """``(edge, vc) -> output state`` view over interned channels."""
        return {
            key: _ChannelView(self, ch)
            for ch, key in enumerate(self.chan_key)
        }

    @property
    def switch_inputs(self) -> dict:
        """``switch node -> [(edge, vc), ...]`` view (legacy shape)."""
        return {
            self._switch_nodes[si]: [self.chan_key[ch] for ch in chans]
            for si, chans in enumerate(self._switch_in_chans)
        }
