"""Cycle-accurate wormhole NoC simulator.

This is the reproduction's stand-in for the paper's cycle-accurate
SystemC simulation of the generated xpipes design (Sections 6.2 and 6.4):
input-buffered switches, credit-based flow control, round-robin output
arbitration, wormhole switching, and two virtual channels with dateline
VC switching on torus/ring wrap links (the classic deadlock-free
configuration).

Timing model: one cycle per switch traversal (arbitrate + crossbar), a
configurable link latency, one flit per cycle per channel. All state
advances via events scheduled strictly into future cycles, so results do
not depend on iteration order within a cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from random import Random

from repro.errors import SimulationError
from repro.simulation.flit import Flit, Packet
from repro.simulation.routes import RouteTable
from repro.topology.base import Topology, is_switch, is_term, term


@dataclass(frozen=True)
class SimConfig:
    """Simulator parameters.

    Attributes:
        packet_length_flits: flits per packet (header + body + tail).
        buffer_depth_flits: input FIFO depth per virtual channel.
        link_latency: cycles a flit spends on a link.
        switch_latency: pipeline cycles through a switch (arbitration +
            crossbar traversal).
        num_vcs: virtual channels per physical link (2 supports the
            torus dateline scheme).
        seed: RNG seed (adaptive Clos middle choice, traffic).
    """

    packet_length_flits: int = 8
    buffer_depth_flits: int = 8
    link_latency: int = 1
    switch_latency: int = 1
    num_vcs: int = 2
    seed: int = 1

    def __post_init__(self):
        if self.packet_length_flits < 1:
            raise SimulationError("packets need at least one flit")
        if self.buffer_depth_flits < 1:
            raise SimulationError("buffers need at least one flit slot")
        if self.link_latency < 1:
            raise SimulationError("link latency must be >= 1 cycle")
        if self.switch_latency < 0:
            raise SimulationError("switch latency cannot be negative")
        if self.num_vcs < 1:
            raise SimulationError("need at least one virtual channel")


class _InputBuffer:
    """Per-(link, VC) input FIFO with the head packet's route request."""

    __slots__ = ("queue", "request")

    def __init__(self):
        self.queue: deque[Flit] = deque()
        self.request = None  # (out_edge, out_vc) for the head packet


class _Output:
    """Per-(link, VC) output state: wormhole lock, credits, RR pointer."""

    __slots__ = ("owner", "owner_pid", "credits", "rr")

    def __init__(self, credits: int):
        self.owner = None  # input key currently holding the channel
        self.owner_pid = -1
        self.credits = credits
        self.rr = 0


_INFINITE_CREDITS = 1 << 30


class Network:
    """A simulatable NoC instance.

    Args:
        topology: any library topology.
        config: simulator parameters.
        active_slots: terminal slots hosting traffic endpoints (defaults
            to all slots; pass the mapped slots for trace-driven runs).
    """

    def __init__(
        self,
        topology: Topology,
        config: SimConfig | None = None,
        active_slots: list[int] | None = None,
    ):
        self.topology = topology
        self.config = config or SimConfig()
        self.active_slots = (
            list(range(topology.num_slots))
            if active_slots is None
            else sorted(active_slots)
        )
        self.rng = Random(self.config.seed)
        self.routes = RouteTable(topology, self.active_slots)

        graph = topology.graph
        self._wrap_edges = {
            (u, v)
            for u, v, d in graph.edges(data=True)
            if d.get("wrap", False)
        }
        # Input buffers exist at the downstream end of every edge whose
        # head is a switch; terminal ejection consumes flits immediately.
        self.inputs: dict[tuple, _InputBuffer] = {}
        self.outputs: dict[tuple, _Output] = {}
        self.switch_inputs: dict[tuple, list[tuple]] = {
            sw: [] for sw in topology.switches
        }
        for u, v in graph.edges():
            for vc in range(self.config.num_vcs):
                key = ((u, v), vc)
                if is_switch(v):
                    self.inputs[key] = _InputBuffer()
                    self.switch_inputs[v].append(key)
                credits = (
                    self.config.buffer_depth_flits
                    if is_switch(v)
                    else _INFINITE_CREDITS
                )
                self.outputs[key] = _Output(credits)

        self.source_queues: dict[int, deque[Flit]] = {
            s: deque() for s in self.active_slots
        }
        self._inject_edge = {
            s: (term(s), topology.switch_of(s)) for s in self.active_slots
        }

        self.cycle = 0
        self._arrivals: dict[int, list] = {}
        self._credit_returns: dict[int, list] = {}
        self._busy_switches: set = set()

        self.delivered: list[Packet] = []
        self.packets: list[Packet] = []  # every packet ever created
        self.injected_packets = 0
        self.injected_flits = 0
        self.ejected_flits = 0
        #: Flits forwarded per switch (crossbar traversals) — the raw
        #: material of the campaign's per-switch load histograms.
        self.switch_flits: dict[tuple, int] = dict.fromkeys(
            topology.switches, 0
        )
        self._next_pid = 0
        self._in_flight = 0

    # ------------------------------------------------------------------
    # traffic entry point
    # ------------------------------------------------------------------
    def create_packet(self, src_slot: int, dst_slot: int) -> Packet:
        """Queue a new packet at a source terminal."""
        if src_slot == dst_slot:
            raise SimulationError("packet source equals destination")
        if src_slot not in self.source_queues:
            raise SimulationError(f"slot {src_slot} is not active")
        packet = Packet(
            pid=self._next_pid,
            src=src_slot,
            dst=dst_slot,
            length=self.config.packet_length_flits,
            created=self.cycle,
        )
        self._next_pid += 1
        self.source_queues[src_slot].extend(packet.flits())
        self.packets.append(packet)
        self.injected_packets += 1
        self._in_flight += 1
        return packet

    @property
    def in_flight(self) -> int:
        """Packets created but not yet fully ejected."""
        return self._in_flight

    # ------------------------------------------------------------------
    # cycle loop
    # ------------------------------------------------------------------
    def step(self, traffic=None) -> None:
        """Advance one cycle."""
        self.cycle += 1
        self._deliver_arrivals()
        self._apply_credit_returns()
        self._process_switches()
        self._inject()
        if traffic is not None:
            traffic(self)

    def run(self, cycles: int, traffic=None) -> None:
        for _ in range(cycles):
            self.step(traffic)

    def drain(self, max_cycles: int = 100000) -> bool:
        """Run without new traffic until every packet is delivered."""
        for _ in range(max_cycles):
            if self._in_flight == 0:
                return True
            self.step(None)
        return self._in_flight == 0

    # ------------------------------------------------------------------
    def _schedule_arrival(self, when: int, key: tuple, flit: Flit) -> None:
        self._arrivals.setdefault(when, []).append((key, flit))

    def _schedule_credit(self, when: int, key: tuple) -> None:
        self._credit_returns.setdefault(when, []).append(key)

    def _deliver_arrivals(self) -> None:
        events = self._arrivals.pop(self.cycle, None)
        if not events:
            return
        for (edge, vc), flit in events:
            head, dest = edge
            if is_term(dest):
                self.ejected_flits += 1
                if flit.is_tail:
                    flit.packet.ejected = self.cycle
                    self.delivered.append(flit.packet)
                    self._in_flight -= 1
                continue
            self.inputs[(edge, vc)].queue.append(flit)
            self._busy_switches.add(dest)

    def _apply_credit_returns(self) -> None:
        events = self._credit_returns.pop(self.cycle, None)
        if not events:
            return
        for key in events:
            self.outputs[key].credits += 1

    def _out_vc(self, in_vc: int, edge: tuple) -> int:
        """Dateline VC selection: once on VC1 (or crossing a wrap link),
        stay on VC1."""
        if self.config.num_vcs == 1:
            return 0
        if in_vc >= 1 or edge in self._wrap_edges:
            return 1
        return 0

    def _process_switches(self) -> None:
        config = self.config
        still_busy = set()
        # Sorted iteration: set order depends on string hashing, which is
        # randomized per process; the RNG draws below (adaptive middle
        # choice) must consume in a reproducible order.
        for sw in sorted(self._busy_switches, key=repr):
            inputs = self.switch_inputs[sw]
            any_flits = False
            # Phase A: collect route requests of head flits.
            requests: dict[tuple, list] = {}
            for ikey in inputs:
                ib = self.inputs[ikey]
                if not ib.queue:
                    continue
                any_flits = True
                flit = ib.queue[0]
                if flit.is_head:
                    if ib.request is None:
                        nxt = self.routes.next_hop(
                            sw, flit.packet.dst, self.rng
                        )
                        out_edge = (sw, nxt)
                        ib.request = (out_edge, self._out_vc(ikey[1], out_edge))
                    out = self.outputs[ib.request]
                    if out.owner is None:
                        requests.setdefault(ib.request, []).append(ikey)
            # Phase B: arbitration (round-robin over requesting inputs).
            for okey, askers in requests.items():
                out = self.outputs[okey]
                if out.owner is not None:
                    continue
                winner = askers[out.rr % len(askers)]
                out.rr += 1
                out.owner = winner
                out.owner_pid = self.inputs[winner].queue[0].packet.pid
            # Phase C: forward one flit per locked output with credit.
            for ikey in inputs:
                ib = self.inputs[ikey]
                if not ib.queue:
                    continue
                okey = ib.request
                if okey is None:
                    continue
                out = self.outputs[okey]
                if out.owner != ikey or out.credits <= 0:
                    continue
                flit = ib.queue[0]
                if flit.packet.pid != out.owner_pid:
                    continue  # next packet must re-arbitrate
                ib.queue.popleft()
                out.credits -= 1
                self.switch_flits[sw] += 1
                self._schedule_arrival(
                    self.cycle + config.link_latency + config.switch_latency,
                    (okey[0], okey[1]),
                    flit,
                )
                # Return a credit upstream for the slot we just freed.
                self._schedule_credit(self.cycle + 1, ikey)
                if flit.is_tail:
                    out.owner = None
                    out.owner_pid = -1
                    ib.request = None
            if any_flits:
                still_busy.add(sw)
        self._busy_switches = still_busy

    def _inject(self) -> None:
        for slot in self.active_slots:
            queue = self.source_queues[slot]
            if not queue:
                continue
            edge = self._inject_edge[slot]
            okey = (edge, 0)
            out = self.outputs[okey]
            flit = queue[0]
            if flit.is_head and out.owner is None:
                out.owner = "src"
                out.owner_pid = flit.packet.pid
            if out.owner != "src" or out.owner_pid != flit.packet.pid:
                continue
            if out.credits <= 0:
                continue
            queue.popleft()
            out.credits -= 1
            self.injected_flits += 1
            self._schedule_arrival(
                self.cycle + self.config.link_latency, (edge, 0), flit
            )
            if flit.is_tail:
                out.owner = None
                out.owner_pid = -1
