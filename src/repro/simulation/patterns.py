"""Synthetic traffic-pattern factory.

Each pattern is a callable ``(src_index, n_nodes, rng) -> dst_index``
mapping a source to the destination it sends to this cycle. The classic
permutations (bit complement/reverse, transpose, tornado, shuffle) are
deterministic in ``src_index``; ``uniform`` and ``hotspot`` draw from the
per-generator ``rng``, so they stay reproducible given the traffic seed.

The registry (:data:`PATTERNS`) is the single naming authority: the CLI,
the :class:`~repro.simulation.traffic.SyntheticTraffic` generator and the
:mod:`~repro.simulation.campaign` sweeps all resolve pattern names here,
and :func:`register_pattern` lets experiments plug in new ones without
touching this module.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from random import Random

from repro.errors import SimulationError

PatternFn = Callable[[int, int, Random], int]

#: Fraction of hotspot traffic aimed at the hot node (the rest is uniform).
HOTSPOT_FRACTION = 0.3


def _bits(n: int) -> int:
    return max(1, (n - 1).bit_length())


def uniform(i: int, n: int, rng: Random) -> int:
    """Uniformly random destination, never the source itself."""
    dst = rng.randrange(n - 1)
    return dst if dst < i else dst + 1


def bit_complement(i: int, n: int, rng: Random) -> int:
    """Destination is the bitwise complement of the source index."""
    if n & (n - 1) == 0:
        return (~i) & (n - 1)
    return (n - 1) - i


def bit_reverse(i: int, n: int, rng: Random) -> int:
    """Destination is the source index with its bits reversed."""
    b = _bits(n)
    out = 0
    for k in range(b):
        if i & (1 << k):
            out |= 1 << (b - 1 - k)
    return out % n


def transpose(i: int, n: int, rng: Random) -> int:
    """Matrix-transpose permutation (row/column swap on a square grid)."""
    k = int(math.isqrt(n))
    if k * k == n:
        return (i % k) * k + i // k
    b = _bits(n)
    half = b // 2
    out = ((i << half) | (i >> (b - half))) & ((1 << b) - 1)
    return out % n


def tornado(i: int, n: int, rng: Random) -> int:
    """Each node sends almost halfway around the node ring."""
    return (i + max(1, math.ceil(n / 2) - 1)) % n


def neighbor(i: int, n: int, rng: Random) -> int:
    """Each node sends to its index successor (best case for rings)."""
    return (i + 1) % n


def shuffle(i: int, n: int, rng: Random) -> int:
    """Perfect-shuffle permutation (left bit rotation)."""
    b = _bits(n)
    out = ((i << 1) | (i >> (b - 1))) & ((1 << b) - 1)
    return out % n


def hotspot(i: int, n: int, rng: Random) -> int:
    """Uniform traffic with a fraction concentrated on one hot node.

    :data:`HOTSPOT_FRACTION` of the packets target node ``n // 2`` (a
    central slot on most layouts) — the memory-controller-style
    congestion scenario; the rest behave like :func:`uniform`.
    """
    hot = n // 2
    if i != hot and rng.random() < HOTSPOT_FRACTION:
        return hot
    return uniform(i, n, rng)


PATTERNS: dict[str, PatternFn] = {
    "uniform": uniform,
    "bit_complement": bit_complement,
    "bit_reverse": bit_reverse,
    "transpose": transpose,
    "tornado": tornado,
    "neighbor": neighbor,
    "shuffle": shuffle,
    "hotspot": hotspot,
}

#: Name of the trace-driven "pattern" understood by the traffic factory
#: and the campaign runner (not a synthetic permutation, hence not in
#: :data:`PATTERNS`).
APP_PATTERN = "app"

#: Empirically worst standard permutation per topology family (measured
#: at 0.35 flits/cycle/node on the 16-node instances) — the paper's
#: "adversarial traffic pattern for each topology" (Section 6.2). The
#: Clos has no adversarial permutation thanks to its path diversity.
ADVERSARIAL_PATTERNS = {
    "mesh": "bit_reverse",
    "torus": "bit_reverse",
    "hypercube": "transpose",
    "clos": "tornado",
    "butterfly": "bit_complement",
}


def resolve_pattern(pattern: str | PatternFn) -> PatternFn:
    """Look a pattern up by name (callables pass through unchanged).

    Raises:
        SimulationError: for names not in :data:`PATTERNS`.
    """
    if callable(pattern):
        return pattern
    try:
        return PATTERNS[pattern]
    except KeyError:
        raise SimulationError(
            f"unknown pattern {pattern!r}; choose from {sorted(PATTERNS)}"
        ) from None


def register_pattern(name: str, fn: PatternFn) -> None:
    """Add a synthetic pattern to the registry under ``name``."""
    if name in PATTERNS or name == APP_PATTERN:
        raise SimulationError(f"pattern {name!r} is already registered")
    PATTERNS[name] = fn


def adversarial_pattern(topology) -> str:
    """The stress pattern for a topology instance (default transpose)."""
    for prefix, pattern in ADVERSARIAL_PATTERNS.items():
        if topology.name.startswith(prefix):
            return pattern
    return "transpose"
