"""Measurement harness and statistics for simulator runs.

:func:`run_measurement` is the single-point entry: one topology, one
traffic generator, one warmup/measure/drain protocol, one
:class:`SimReport` out. :func:`latency_vs_injection` sweeps injection
rates serially (the Figure 8(b) experiment); for parallel, cached,
multi-pattern sweeps with saturation detection use
:func:`repro.simulation.campaign.run_campaign` instead.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.simulation.network import Network, SimConfig
from repro.topology.base import Topology


def switch_label(sw) -> str:
    """Stable human-readable name for a switch graph node.

    ``("sw", 3)`` becomes ``"sw3"``; multistage keys keep their tuple,
    e.g. ``("sw", (0, 1))`` becomes ``"sw(0, 1)"``.
    """
    return f"sw{sw[1]}"


@dataclass(frozen=True)
class SimReport:
    """Outcome of one measured simulation run.

    Latency statistics cover packets *created inside the measurement
    window* that were delivered before the run ended; ``delivered_fraction``
    reveals saturation (undelivered packets accumulating).

    Attributes:
        switch_loads: flits forwarded per switch during the measurement
            window, as ``(switch_label, count)`` pairs sorted by label —
            the per-switch load histogram of a campaign point.
    """

    cycles: int
    offered_rate: float
    measured_packets: int
    delivered_fraction: float
    avg_latency: float
    p95_latency: float
    min_latency: float
    throughput_flits_per_cycle: float
    switch_loads: tuple[tuple[str, int], ...] = ()

    def saturated(self, threshold: float = 0.9) -> bool:
        """True when fewer than ``threshold`` of measured packets made it."""
        return self.delivered_fraction < threshold


def run_measurement(
    topology: Topology,
    traffic,
    config: SimConfig | None = None,
    warmup: int = 2000,
    measure: int = 8000,
    drain: int = 4000,
    active_slots: list[int] | None = None,
    offered_rate: float = 0.0,
) -> SimReport:
    """Warmup / measure / drain simulation protocol.

    Args:
        topology: any library topology instance.
        traffic: per-cycle generator callable (see
            :func:`repro.simulation.traffic.build_traffic`).
        config: simulator parameters; defaults to :class:`SimConfig`.
        warmup: cycles before measurement starts (fills pipelines).
        measure: cycles during which created packets are tracked.
        drain: extra cycles (without tracking new packets) letting
            measured packets reach their destinations.
        active_slots: terminal slots hosting traffic endpoints; pass the
            mapped slots for trace-driven runs (defaults to all slots).
        offered_rate: echoed into the report for curve building.

    Returns:
        A :class:`SimReport` whose latency statistics cover the
        measurement window and whose ``switch_loads`` histogram counts
        flits forwarded per switch during that window.
    """
    network = Network(topology, config=config, active_slots=active_slots)
    network.run(warmup, traffic)
    start = network.cycle
    loads_before = network.switch_flit_counts()
    network.run(measure, traffic)
    end = network.cycle
    loads_after = network.switch_flit_counts()
    network.run(drain, traffic)

    created = [p for p in network.packets if start <= p.created < end]
    window = [p for p in created if p.ejected is not None]
    latencies = [p.latency for p in window]
    ejected_rate = network.ejected_flits / max(1, network.cycle)
    switch_loads = tuple(
        sorted(
            zip(
                network.switch_labels,
                (a - b for a, b in zip(loads_after, loads_before)),
            )
        )
    )
    return SimReport(
        cycles=network.cycle,
        offered_rate=offered_rate,
        measured_packets=len(window),
        delivered_fraction=(len(window) / len(created)) if created else 1.0,
        avg_latency=statistics.fmean(latencies) if latencies else float("inf"),
        p95_latency=_quantile(latencies, 0.95) if latencies else float("inf"),
        min_latency=min(latencies) if latencies else float("inf"),
        throughput_flits_per_cycle=ejected_rate,
        switch_loads=switch_loads,
    )


def latency_vs_injection(
    topology: Topology,
    rates: list[float],
    pattern: str = "bit_complement",
    config: SimConfig | None = None,
    warmup: int = 2000,
    measure: int = 8000,
    drain: int = 4000,
    active_slots: list[int] | None = None,
    traffic_seed: int = 7,
) -> list[SimReport]:
    """Average packet latency across injection rates (Figure 8(b)).

    Runs serially in-process; every report uses the same traffic seed so
    the rate axis is swept under common random numbers.
    """
    from repro.simulation.traffic import SyntheticTraffic

    reports = []
    for rate in rates:
        traffic = SyntheticTraffic(pattern, rate, seed=traffic_seed)
        reports.append(
            run_measurement(
                topology,
                traffic,
                config=config,
                warmup=warmup,
                measure=measure,
                drain=drain,
                active_slots=active_slots,
                offered_rate=rate,
            )
        )
    return reports


def _quantile(values: list, q: float) -> float:
    data = sorted(values)
    if not data:
        return float("nan")
    idx = min(len(data) - 1, int(q * len(data)))
    return float(data[idx])
