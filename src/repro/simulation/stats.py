"""Measurement harness and statistics for simulator runs."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.simulation.network import Network, SimConfig
from repro.topology.base import Topology


@dataclass(frozen=True)
class SimReport:
    """Outcome of one measured simulation run.

    Latency statistics cover packets *created inside the measurement
    window* that were delivered before the run ended; ``delivered_fraction``
    reveals saturation (undelivered packets accumulating).
    """

    cycles: int
    offered_rate: float
    measured_packets: int
    delivered_fraction: float
    avg_latency: float
    p95_latency: float
    min_latency: float
    throughput_flits_per_cycle: float

    def saturated(self, threshold: float = 0.9) -> bool:
        """True when fewer than ``threshold`` of measured packets made it."""
        return self.delivered_fraction < threshold


def run_measurement(
    topology: Topology,
    traffic,
    config: SimConfig | None = None,
    warmup: int = 2000,
    measure: int = 8000,
    drain: int = 4000,
    active_slots: list[int] | None = None,
    offered_rate: float = 0.0,
) -> SimReport:
    """Warmup / measure / drain simulation protocol.

    Args:
        traffic: per-cycle generator callable.
        warmup: cycles before measurement starts (fills pipelines).
        measure: cycles during which created packets are tracked.
        drain: extra cycles (without tracking new packets) letting
            measured packets reach their destinations.
    """
    network = Network(topology, config=config, active_slots=active_slots)
    network.run(warmup, traffic)
    start = network.cycle
    network.run(measure, traffic)
    end = network.cycle
    network.run(drain, traffic)

    created = [p for p in network.packets if start <= p.created < end]
    window = [p for p in created if p.ejected is not None]
    latencies = [p.latency for p in window]
    ejected_rate = network.ejected_flits / max(1, network.cycle)
    return SimReport(
        cycles=network.cycle,
        offered_rate=offered_rate,
        measured_packets=len(window),
        delivered_fraction=(len(window) / len(created)) if created else 1.0,
        avg_latency=statistics.fmean(latencies) if latencies else float("inf"),
        p95_latency=_quantile(latencies, 0.95) if latencies else float("inf"),
        min_latency=min(latencies) if latencies else float("inf"),
        throughput_flits_per_cycle=ejected_rate,
    )


def latency_vs_injection(
    topology: Topology,
    rates: list[float],
    pattern: str = "bit_complement",
    config: SimConfig | None = None,
    warmup: int = 2000,
    measure: int = 8000,
    drain: int = 4000,
    active_slots: list[int] | None = None,
    traffic_seed: int = 7,
) -> list[SimReport]:
    """Average packet latency across injection rates (Figure 8(b))."""
    from repro.simulation.traffic import SyntheticTraffic

    reports = []
    for rate in rates:
        traffic = SyntheticTraffic(pattern, rate, seed=traffic_seed)
        reports.append(
            run_measurement(
                topology,
                traffic,
                config=config,
                warmup=warmup,
                measure=measure,
                drain=drain,
                active_slots=active_slots,
                offered_rate=rate,
            )
        )
    return reports


def _quantile(values: list, q: float) -> float:
    data = sorted(values)
    if not data:
        return float("nan")
    idx = min(len(data) - 1, int(q * len(data)))
    return float(data[idx])
