"""Cycle-accurate flit-level NoC simulation (stands in for the paper's
SystemC simulations, Sections 6.2 and 6.4).

Layers, bottom to top:

* :mod:`~repro.simulation.network` — the wormhole simulator itself;
* :mod:`~repro.simulation.patterns` — the synthetic traffic-pattern
  factory (uniform, hotspot, transpose, …);
* :mod:`~repro.simulation.traffic` — rate-controlled generators
  (synthetic and application-trace) and :func:`build_traffic`;
* :mod:`~repro.simulation.stats` — the warmup/measure/drain protocol and
  :class:`SimReport`;
* :mod:`~repro.simulation.campaign` — engine-parallel sweeps over
  (pattern, rate, seed) with saturation detection, closing the loop
  from selection back to validation.
"""

from repro.simulation.campaign import (
    CampaignConfig,
    CampaignCurve,
    CampaignPoint,
    CampaignResult,
    detect_saturation,
    run_campaign,
)
from repro.simulation.flit import Flit, Packet
from repro.simulation.network import Network, SimConfig
from repro.simulation.patterns import (
    APP_PATTERN,
    register_pattern,
    resolve_pattern,
)
from repro.simulation.routes import RouteTable
from repro.simulation.stats import (
    SimReport,
    latency_vs_injection,
    run_measurement,
    switch_label,
)
from repro.simulation.traffic import (
    ADVERSARIAL_PATTERNS,
    PATTERNS,
    SyntheticTraffic,
    TraceTraffic,
    adversarial_pattern,
    build_traffic,
)

__all__ = [
    "Flit",
    "Packet",
    "Network",
    "SimConfig",
    "RouteTable",
    "SimReport",
    "run_measurement",
    "latency_vs_injection",
    "switch_label",
    "SyntheticTraffic",
    "TraceTraffic",
    "build_traffic",
    "PATTERNS",
    "APP_PATTERN",
    "ADVERSARIAL_PATTERNS",
    "adversarial_pattern",
    "register_pattern",
    "resolve_pattern",
    "CampaignConfig",
    "CampaignCurve",
    "CampaignPoint",
    "CampaignResult",
    "detect_saturation",
    "run_campaign",
]
