"""Cycle-accurate flit-level NoC simulation (stands in for the paper's
SystemC simulations, Sections 6.2 and 6.4)."""

from repro.simulation.flit import Flit, Packet
from repro.simulation.network import Network, SimConfig
from repro.simulation.routes import RouteTable
from repro.simulation.stats import (
    SimReport,
    latency_vs_injection,
    run_measurement,
)
from repro.simulation.traffic import (
    ADVERSARIAL_PATTERNS,
    PATTERNS,
    SyntheticTraffic,
    TraceTraffic,
    adversarial_pattern,
)

__all__ = [
    "Flit",
    "Packet",
    "Network",
    "SimConfig",
    "RouteTable",
    "SimReport",
    "run_measurement",
    "latency_vs_injection",
    "SyntheticTraffic",
    "TraceTraffic",
    "PATTERNS",
    "ADVERSARIAL_PATTERNS",
    "adversarial_pattern",
]
