"""Closed-loop simulation campaigns over a selected topology.

SUNMAP's flow does not end at selection: the paper validates the chosen
topology by *simulating* the generated network under the application's
traffic (Sections 6.2 and 6.4). A :func:`run_campaign` sweep closes that
loop — it takes the selected topology and mapping, sweeps injection
rates and traffic patterns (application trace, uniform, hotspot,
transpose, …) across seeds, and produces latency–throughput curves with
detected saturation points and per-switch load histograms.

Every (pattern, rate, seed) point is submitted to the
:class:`~repro.engine.engine.ExplorationEngine` as a
:class:`~repro.engine.jobs.SimulationJob`, so campaigns parallelize over
worker processes and memoize through the engine's content-keyed cache
exactly like selection does; ``jobs=1`` and ``jobs=N`` produce
bit-identical :class:`CampaignResult`\\ s.

Typical use::

    from repro import run_sunmap, vopd
    from repro.simulation.campaign import CampaignConfig

    report = run_sunmap(vopd(), simulate=CampaignConfig(), jobs=4)
    print(report.campaign.summary())
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field

from repro.core.coregraph import CoreGraph
from repro.engine.engine import ExplorationEngine
from repro.engine.jobs import BatchSimulationJob, SimulationJob
from repro.engine.resilience import JobFailure
from repro.errors import SimulationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.simulation.network import SimConfig
from repro.simulation.patterns import APP_PATTERN, PATTERNS
from repro.simulation.stats import SimReport
from repro.topology.base import Topology

#: Default injection-rate sweep in flits/cycle/node: dense at low load
#: where curves are flat, reaching past the saturation knee of every
#: library topology at 12-16 nodes.
DEFAULT_RATES = (0.05, 0.1, 0.2, 0.35, 0.5, 0.7)

#: Default pattern mix: the application trace plus the three synthetic
#: scenarios the related Pareto-exploration work sweeps.
DEFAULT_PATTERNS = (APP_PATTERN, "uniform", "hotspot", "transpose")

_POINTS_PER_SEC = obs_metrics.REGISTRY.gauge(
    "repro_campaign_points_per_sec",
    "Throughput of the most recent campaign sweep (points per second)",
)


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign sweep.

    Attributes:
        rates: offered loads in flits/cycle/node, strictly increasing.
        patterns: traffic patterns to sweep — names from
            :data:`~repro.simulation.patterns.PATTERNS` plus ``"app"``
            for trace-driven traffic.
        seeds: traffic seeds; curve statistics average across them.
        sim: simulator parameters (``None`` = :class:`SimConfig`
            defaults).
        warmup/measure/drain: the per-point measurement protocol (see
            :func:`~repro.simulation.stats.run_measurement`).
        faults: dead random inter-switch links per fault variant
            (0 = pristine fabric only). Each fault seed samples its own
            non-partitioning fault set via
            :func:`repro.faults.sample_faults` and the whole
            rates × patterns × seeds sweep repeats on that degraded
            fabric; curves average across fault seeds like they do
            across traffic seeds.
        fault_seeds: sampling seeds for the fault variants (ignored and
            normalized to ``()`` when ``faults`` is 0, so pristine
            configs compare equal however they were spelled).
        saturation_threshold: a point saturates when fewer than this
            fraction of measured packets is delivered…
        latency_blowup: …or when its average latency exceeds this
            multiple of the curve's zero-load (first-rate) latency.
        sim_engine: which simulator lane measures the points —
            ``"exact"`` (default) runs the bit-identical reference
            kernel one point at a time; ``"batch"`` advances every
            point of a fault variant in lockstep through the
            vectorized :mod:`~repro.simulation.batch` kernel
            (statistically equivalent, much faster — see
            ARCHITECTURE.md's determinism table).
    """

    rates: tuple[float, ...] = DEFAULT_RATES
    patterns: tuple[str, ...] = DEFAULT_PATTERNS
    seeds: tuple[int, ...] = (1,)
    sim: SimConfig | None = None
    warmup: int = 500
    measure: int = 2000
    drain: int = 1500
    flit_width_bits: int = 32
    clock_mhz: float = 500.0
    faults: int = 0
    fault_seeds: tuple[int, ...] = (1,)
    saturation_threshold: float = 0.9
    latency_blowup: float = 4.0
    sim_engine: str = "exact"

    def __post_init__(self):
        if self.sim_engine not in ("exact", "batch"):
            raise SimulationError(
                "campaign sim_engine must be 'exact' or 'batch', "
                f"got {self.sim_engine!r}"
            )
        if not self.rates:
            raise SimulationError("campaign needs at least one rate")
        if any(r <= 0 for r in self.rates):
            raise SimulationError("campaign rates must be positive")
        if list(self.rates) != sorted(set(self.rates)):
            raise SimulationError(
                "campaign rates must be strictly increasing"
            )
        if not self.patterns:
            raise SimulationError("campaign needs at least one pattern")
        if len(set(self.patterns)) != len(self.patterns):
            # Repeats would silently double-count curves and histograms.
            raise SimulationError("campaign patterns must be unique")
        for pattern in self.patterns:
            if pattern != APP_PATTERN and pattern not in PATTERNS:
                raise SimulationError(
                    f"unknown campaign pattern {pattern!r}; choose from "
                    f"{sorted(PATTERNS) + [APP_PATTERN]}"
                )
        if not self.seeds:
            raise SimulationError("campaign needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise SimulationError("campaign seeds must be unique")
        if self.faults < 0:
            raise SimulationError("campaign fault count must be >= 0")
        if self.faults == 0:
            object.__setattr__(self, "fault_seeds", ())
        else:
            object.__setattr__(
                self, "fault_seeds", tuple(self.fault_seeds)
            )
            if not self.fault_seeds:
                raise SimulationError(
                    "campaign sweeps faults but has no fault seeds"
                )
            if len(set(self.fault_seeds)) != len(self.fault_seeds):
                raise SimulationError("campaign fault seeds must be unique")
        if not 0 < self.saturation_threshold <= 1:
            raise SimulationError(
                "saturation threshold must be in (0, 1]"
            )
        if self.latency_blowup <= 1:
            raise SimulationError("latency blowup must exceed 1")

    @property
    def num_points(self) -> int:
        return (
            len(self.rates)
            * len(self.patterns)
            * len(self.seeds)
            * (len(self.fault_seeds) or 1)
        )


@dataclass(frozen=True)
class CampaignPoint:
    """One measured (pattern, rate, seed[, fault seed]) sample.

    ``fault_seed`` names the fault variant the point ran on, or
    ``None`` for the pristine fabric. ``sim_engine`` records which
    simulator lane produced the report (``"exact"`` or ``"batch"``),
    so mixed-provenance result sets stay attributable.
    """

    pattern: str
    rate: float
    seed: int
    report: SimReport
    fault_seed: int | None = None
    sim_engine: str = "exact"


@dataclass(frozen=True)
class CampaignCurve:
    """Latency–throughput curve of one pattern (seed-averaged).

    ``saturation_rate`` is the first swept rate at which the pattern
    saturates (delivery collapse or latency blowup — see
    :func:`detect_saturation`), or ``None`` if the sweep never reaches
    saturation.
    """

    pattern: str
    rates: tuple[float, ...]
    avg_latency: tuple[float, ...]
    p95_latency: tuple[float, ...]
    throughput: tuple[float, ...]
    delivered: tuple[float, ...]
    saturation_rate: float | None

    def pre_saturation(self) -> tuple[tuple[float, float], ...]:
        """The (rate, avg latency) points strictly below saturation."""
        stop = (
            len(self.rates)
            if self.saturation_rate is None
            else self.rates.index(self.saturation_rate)
        )
        return tuple(zip(self.rates[:stop], self.avg_latency[:stop]))


def detect_saturation(
    rates,
    latencies,
    delivered,
    threshold: float = 0.9,
    blowup: float = 4.0,
) -> float | None:
    """First rate at which a latency curve saturates, else ``None``.

    A point saturates when its delivered fraction drops below
    ``threshold``, its latency is unbounded (no measured packet made it
    out), or its average latency exceeds ``blowup`` times the curve's
    zero-load baseline — the first finite, *non-saturated* point (a
    finite latency measured while delivery had already collapsed is a
    congestion artifact, not a baseline).

    Raises:
        ValueError: the three sequences differ in length (a silent
            ``zip`` truncation here would drop sweep points from the
            saturation scan).
    """
    if not len(rates) == len(latencies) == len(delivered):
        raise ValueError(
            "detect_saturation needs equal-length rates/latencies/"
            f"delivered, got {len(rates)}/{len(latencies)}/"
            f"{len(delivered)}"
        )
    base = next(
        (
            lat
            for lat, frac in zip(latencies, delivered)
            if math.isfinite(lat) and frac >= threshold
        ),
        None,
    )
    for rate, latency, frac in zip(rates, latencies, delivered):
        if frac < threshold or not math.isfinite(latency):
            return rate
        if base is not None and latency > blowup * base:
            return rate
    return None


@dataclass(frozen=True)
class CampaignFailure:
    """One sweep point the resilience runtime could not complete.

    Produced under ``run_campaign(on_failure="skip")``: the point's
    coordinates plus the terminal
    :class:`~repro.engine.resilience.JobFailure` story (kind, message,
    attempts). Failed points are excluded from curves and histograms —
    the curve over the surviving seeds stays honest — and surfaced here
    so a degraded sweep is never mistaken for a complete one.
    """

    pattern: str
    rate: float
    seed: int
    fault_seed: int | None
    kind: str
    error: str
    attempts: int


@dataclass
class CampaignResult:
    """Everything one campaign produced.

    Attributes:
        points: every measured sample, in sweep order (fault-variant
            major, then pattern, rate, seed).
        curves: per-pattern latency–throughput curves, averaged across
            traffic seeds and fault seeds alike.
        switch_loads: per-pattern per-switch load histogram — flits
            forwarded during the measurement window, summed over rates,
            seeds and fault variants (``{pattern: {switch_label:
            flits}}``).
        failures: points lost to infrastructure failures (see
            :class:`CampaignFailure`; empty on a clean run).
        degraded: the campaign hit its ``deadline_s`` and returned
            partial results.
        skipped_points: sweep points never executed because the
            deadline expired first.
        runtime: throughput attribution for this run — ``{"sim_engine",
            "wall_clock_s", "points_per_sec"}`` measured around the
            engine passes. Volatile by nature (wall clock), so
            bit-identity comparisons go through :func:`strip_runtime`.
    """

    topology_name: str
    application: str | None
    config: CampaignConfig
    points: list[CampaignPoint] = field(default_factory=list)
    curves: dict[str, CampaignCurve] = field(default_factory=dict)
    switch_loads: dict[str, dict[str, int]] = field(default_factory=dict)
    failures: list[CampaignFailure] = field(default_factory=list)
    degraded: bool = False
    skipped_points: int = 0
    runtime: dict | None = None

    def saturation_rates(self) -> dict[str, float | None]:
        """Detected saturation rate per pattern (``None`` = never)."""
        return {
            pattern: curve.saturation_rate
            for pattern, curve in self.curves.items()
        }

    def to_dict(self) -> dict:
        """JSON-able form (used by reports and bit-identity checks).

        Fault keys (``config.faults``/``config.fault_seeds`` and the
        per-point ``fault_seed``) appear only when the campaign swept
        faults, so pristine campaign dictionaries are byte-identical to
        what they were before the fault axis existed. The same contract
        covers the batch lane: ``sim_engine`` keys (config and
        per-point) appear only when it differs from ``"exact"``. The
        ``runtime`` block is the one intentionally volatile key (wall
        clock); strip it with :func:`strip_runtime` before bit-identity
        comparisons.
        """
        config_dict = {
            "rates": list(self.config.rates),
            "patterns": list(self.config.patterns),
            "seeds": list(self.config.seeds),
            "sim": asdict(self.config.sim or SimConfig()),
            "warmup": self.config.warmup,
            "measure": self.config.measure,
            "drain": self.config.drain,
        }
        if self.config.faults:
            config_dict["faults"] = self.config.faults
            config_dict["fault_seeds"] = list(self.config.fault_seeds)
        if self.config.sim_engine != "exact":
            config_dict["sim_engine"] = self.config.sim_engine

        def _point_dict(p: CampaignPoint) -> dict:
            entry = {
                "pattern": p.pattern,
                "rate": p.rate,
                "seed": p.seed,
                "avg_latency": p.report.avg_latency,
                "p95_latency": p.report.p95_latency,
                "delivered_fraction": p.report.delivered_fraction,
                "throughput": p.report.throughput_flits_per_cycle,
                "measured_packets": p.report.measured_packets,
                "switch_loads": [list(sl) for sl in p.report.switch_loads],
            }
            if p.fault_seed is not None:
                entry["fault_seed"] = p.fault_seed
            if p.sim_engine != "exact":
                entry["sim_engine"] = p.sim_engine
            return entry

        data = {
            "topology": self.topology_name,
            "application": self.application,
            "config": config_dict,
            "curves": {
                pattern: {
                    "rates": list(curve.rates),
                    "avg_latency": list(curve.avg_latency),
                    "p95_latency": list(curve.p95_latency),
                    "throughput": list(curve.throughput),
                    "delivered": list(curve.delivered),
                    "saturation_rate": curve.saturation_rate,
                }
                for pattern, curve in self.curves.items()
            },
            "switch_loads": {
                pattern: dict(loads)
                for pattern, loads in self.switch_loads.items()
            },
            "points": [_point_dict(p) for p in self.points],
        }
        # Resilience keys appear only on imperfect runs, so clean
        # campaign dictionaries stay byte-identical to pre-resilience
        # output (same contract as the fault keys above).
        if self.failures:
            data["failures"] = [asdict(f) for f in self.failures]
        if self.degraded:
            data["degraded"] = True
            data["skipped_points"] = self.skipped_points
        if self.runtime is not None:
            data["runtime"] = dict(self.runtime)
        return data

    def summary(self) -> str:
        """Human-readable curve tables plus saturation and hot switches."""
        fault_note = (
            f" x {len(self.config.fault_seeds)} fault variants "
            f"(k={self.config.faults} dead links)"
            if self.config.faults
            else ""
        )
        lines = [
            f"campaign: {self.application or '(synthetic)'} on "
            f"{self.topology_name} "
            f"({len(self.config.patterns)} patterns x "
            f"{len(self.config.rates)} rates x "
            f"{len(self.config.seeds)} seeds{fault_note})"
        ]
        header = (
            f"{'pattern':<12}{'rate':>7}{'avg lat':>9}{'p95':>8}"
            f"{'thrpt':>8}{'delivered':>11}"
        )
        lines += [header, "-" * len(header)]
        for pattern, curve in self.curves.items():
            for i, rate in enumerate(curve.rates):
                mark = (
                    " <- saturated"
                    if curve.saturation_rate is not None
                    and rate >= curve.saturation_rate
                    else ""
                )
                lines.append(
                    f"{pattern:<12}{rate:>7.3f}"
                    f"{_fmt(curve.avg_latency[i]):>9}"
                    f"{_fmt(curve.p95_latency[i]):>8}"
                    f"{curve.throughput[i]:>8.3f}"
                    f"{curve.delivered[i] * 100:>10.1f}%{mark}"
                )
        sat = ", ".join(
            f"{p}: {('%.3f' % r) if r is not None else 'not reached'}"
            for p, r in self.saturation_rates().items()
        )
        lines.append(f"saturation rates  {sat}")
        for pattern, loads in self.switch_loads.items():
            hottest = sorted(
                loads.items(), key=lambda kv: (-kv[1], kv[0])
            )[:3]
            hot = ", ".join(f"{name} ({flits})" for name, flits in hottest)
            lines.append(f"hottest switches  {pattern}: {hot}")
        if self.failures:
            kinds = ", ".join(
                f"{f.pattern}@{f.rate:g}/s{f.seed} ({f.kind})"
                for f in self.failures[:5]
            )
            more = (
                f" and {len(self.failures) - 5} more"
                if len(self.failures) > 5
                else ""
            )
            lines.append(
                f"failed points     {len(self.failures)}: {kinds}{more}"
            )
        if self.degraded:
            lines.append(
                "DEGRADED          deadline expired; "
                f"{self.skipped_points} points skipped"
            )
        if self.runtime is not None:
            # Deliberately the only wall-clock-volatile summary line,
            # and it always starts with "runtime" so byte-identity
            # consumers (CI resume diff) can filter it.
            lines.append(
                f"runtime           {self.runtime['sim_engine']} engine: "
                f"{self.runtime['wall_clock_s']:.2f}s wall, "
                f"{self.runtime['points_per_sec']:.1f} points/s"
            )
        return "\n".join(lines)


def strip_runtime(payload: dict) -> dict:
    """A copy of a campaign dict without the volatile ``runtime`` block.

    :meth:`CampaignResult.to_dict` is byte-stable except for the
    wall-clock throughput record; identity checks (resume vs clean run,
    ``jobs=1`` vs ``jobs=N``) compare ``strip_runtime(a) ==
    strip_runtime(b)``.
    """
    cleaned = dict(payload)
    cleaned.pop("runtime", None)
    return cleaned


def campaign_fault_variants(
    topology: Topology, config: CampaignConfig
) -> list[tuple[int | None, Topology]]:
    """The fabrics a campaign sweeps: ``(fault_seed, topology)`` pairs.

    ``faults == 0`` yields the pristine topology alone (fault seed
    ``None``); otherwise one deterministic, non-partitioning
    :class:`~repro.faults.FaultedTopology` per fault seed. Sampling is a
    pure function of (topology name, k, seed), so every caller — job
    builder, result assembly, a jobs=N worker — reconstructs the
    identical variants.

    Raises:
        TopologyError: a fault seed found no non-partitioning fault set
            (e.g. more dead links requested than the fabric can lose).
    """
    if config.faults <= 0:
        return [(None, topology)]
    from repro.faults import FaultedTopology, sample_faults

    return [
        (
            fault_seed,
            FaultedTopology(
                topology,
                sample_faults(topology, config.faults, seed=fault_seed),
            ),
        )
        for fault_seed in config.fault_seeds
    ]


def campaign_jobs(
    topology: Topology,
    config: CampaignConfig,
    core_graph: CoreGraph | None = None,
    assignment: dict[int, int] | None = None,
    active_slots: list[int] | None = None,
) -> list[SimulationJob]:
    """The campaign's job list, in deterministic sweep order.

    Fault-variant major, then pattern, rate, seed — every fault variant
    repeats the full pristine sweep on its degraded fabric, as ordinary
    engine jobs (parallel, cached, bit-identical across jobs=N).
    """
    slots = (
        tuple(active_slots)
        if active_slots is not None
        else (
            tuple(sorted(assignment.values()))
            if assignment is not None
            else None
        )
    )
    packed = (
        None if assignment is None else tuple(sorted(assignment.items()))
    )
    jobs = []
    for fault_seed, fabric in campaign_fault_variants(topology, config):
        fault_tag = "" if fault_seed is None else f"/f{fault_seed}"
        for pattern in config.patterns:
            for rate in config.rates:
                for seed in config.seeds:
                    jobs.append(
                        SimulationJob(
                            topology=fabric,
                            pattern=pattern,
                            rate=rate,
                            traffic_seed=seed,
                            sim=config.sim,
                            warmup=config.warmup,
                            measure=config.measure,
                            drain=config.drain,
                            active_slots=slots,
                            core_graph=(
                                core_graph
                                if pattern == APP_PATTERN
                                else None
                            ),
                            assignment=(
                                packed if pattern == APP_PATTERN else None
                            ),
                            flit_width_bits=config.flit_width_bits,
                            clock_mhz=config.clock_mhz,
                            tag=f"{pattern}@{rate:g}/s{seed}{fault_tag}",
                        )
                    )
    return jobs


def run_campaign(
    topology: Topology,
    core_graph: CoreGraph | None = None,
    assignment: dict[int, int] | None = None,
    config: CampaignConfig | None = None,
    engine: ExplorationEngine | None = None,
    jobs: int = 1,
    cache_backend=None,
    journal=None,
    on_failure: str = "raise",
    deadline_s: float | None = None,
) -> CampaignResult:
    """Sweep a topology across patterns, rates and seeds.

    Args:
        topology: the network to validate (typically the selection
            winner).
        core_graph: the application, required when the config sweeps the
            ``"app"`` trace pattern.
        assignment: core index -> terminal slot mapping (the selection
            winner's); also restricts synthetic traffic endpoints to the
            mapped slots.
        config: sweep specification; defaults to :class:`CampaignConfig`.
        engine: explicit engine (overrides ``jobs``); pass the selection
            engine to share its evaluation cache across phases.
        jobs: parallel worker processes (1 = serial); the result is
            bit-identical regardless of ``jobs``.
        cache_backend: persistent cache storage spec (e.g.
            ``"sqlite:evals.db"``) for the engine built when ``engine``
            is not given; warm campaign points skip simulation.
        journal: optional :class:`~repro.engine.journal.RunJournal` —
            completed points are appended to it, and on a resume
            journal they replay bit-identically instead of re-running.
        on_failure: ``"raise"`` (default) re-raises the first
            infrastructure failure; ``"skip"`` records failed points in
            :attr:`CampaignResult.failures` and builds curves from the
            survivors.
        deadline_s: optional wall-clock budget; the sweep runs in
            per-(fault variant, pattern) chunks and stops scheduling
            new chunks once the budget is spent, returning partial
            results flagged :attr:`CampaignResult.degraded` (at least
            the first chunk always runs). ``None`` (default) runs the
            whole sweep as a single engine pass.

    Raises:
        SimulationError: invalid config, or ``"app"`` swept without a
            core graph and assignment.
    """
    config = config or CampaignConfig()
    if APP_PATTERN in config.patterns and (
        core_graph is None or assignment is None
    ):
        raise SimulationError(
            "campaign sweeps the 'app' trace pattern but no core graph "
            "and mapping were given; pass core_graph= and assignment=, "
            "or drop 'app' from CampaignConfig.patterns"
        )
    if engine is None:
        engine = ExplorationEngine(
            jobs=jobs, cache_backend=cache_backend, journal=journal
        )
    elif journal is not None and engine.journal is None:
        engine.journal = journal
    job_list = campaign_jobs(
        topology, config, core_graph=core_graph, assignment=assignment
    )
    result = CampaignResult(
        topology_name=topology.name,
        application=None if core_graph is None else core_graph.name,
        config=config,
    )
    # Jobs are fault-variant major: recover each point's fault seed from
    # its index (campaign_fault_variants is deterministic, so this
    # matches the fabrics campaign_jobs actually submitted).
    fault_seeds = [
        fs for fs, _ in campaign_fault_variants(topology, config)
    ]
    per_variant = len(job_list) // len(fault_seeds)
    started = time.perf_counter()
    if config.sim_engine == "batch":
        # Fast lane: one vectorized group per fault variant (each group
        # shares a fabric, so one batch layout advances its whole
        # rates × patterns × seeds sweep in lockstep). Groups are
        # content-keyed per point inside the engine, so cache/journal/
        # resume behave exactly as in the exact lane; a group-level
        # infrastructure failure loses that variant's points only.
        groups = [
            BatchSimulationJob(
                points=tuple(
                    job_list[gi * per_variant:(gi + 1) * per_variant]
                ),
                tag="batch" if fs is None else f"batch/f{fs}",
            )
            for gi, fs in enumerate(fault_seeds)
        ]
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        outcomes = []
        for gi, group in enumerate(groups):
            if (
                deadline is not None
                and gi > 0
                and time.monotonic() >= deadline
            ):
                result.degraded = True
                result.skipped_points = len(job_list) - gi * per_variant
                break
            group_outcome = engine.run([group], on_failure=on_failure)[0]
            if isinstance(group_outcome, JobFailure):
                outcomes.extend([group_outcome] * len(group.points))
            else:
                outcomes.extend(group_outcome.value)
    elif deadline_s is None:
        # One engine pass: exactly the pre-deadline execution shape
        # (one executor fan-out, maximal batching).
        outcomes = engine.run(job_list, on_failure=on_failure)
    else:
        # Chunk by (fault variant, pattern): coarse enough to keep the
        # executor busy, fine enough that an expired deadline skips
        # whole recognisable curve groups. The first chunk always runs,
        # so a degraded result is partial, never empty.
        outcomes = []
        deadline = time.monotonic() + deadline_s
        chunk = len(config.rates) * len(config.seeds)
        for start in range(0, len(job_list), chunk):
            if start > 0 and time.monotonic() >= deadline:
                result.degraded = True
                result.skipped_points = len(job_list) - start
                break
            outcomes.extend(
                engine.run(
                    job_list[start:start + chunk], on_failure=on_failure
                )
            )
    wall = time.perf_counter() - started
    result.runtime = {
        "sim_engine": config.sim_engine,
        "wall_clock_s": round(wall, 6),
        "points_per_sec": round(len(outcomes) / wall, 2) if wall else 0.0,
    }
    # Observability (passive): the gauge and retrospective span mirror
    # the runtime block — result payload bytes are untouched.
    _POINTS_PER_SEC.set(result.runtime["points_per_sec"])
    obs_trace.emit(
        "campaign.run",
        wall,
        topology=topology.name,
        sim_engine=config.sim_engine,
        points=len(outcomes),
        degraded=result.degraded,
    )
    for i, (job, outcome) in enumerate(zip(job_list, outcomes)):
        fault_seed = fault_seeds[i // per_variant]
        if isinstance(outcome, JobFailure):
            result.failures.append(
                CampaignFailure(
                    pattern=job.pattern,
                    rate=job.rate,
                    seed=job.traffic_seed,
                    fault_seed=fault_seed,
                    kind=outcome.failure_kind,
                    error=outcome.error or "",
                    attempts=outcome.attempts,
                )
            )
            continue
        outcome.raise_if_error()
        result.points.append(
            CampaignPoint(
                pattern=job.pattern,
                rate=job.rate,
                seed=job.traffic_seed,
                report=outcome.value,
                fault_seed=fault_seed,
                sim_engine=config.sim_engine,
            )
        )

    by_pattern: dict[str, list[CampaignPoint]] = {}
    for point in result.points:
        by_pattern.setdefault(point.pattern, []).append(point)
    for pattern, points in by_pattern.items():
        result.curves[pattern] = _build_curve(pattern, points, config)
        loads: dict[str, int] = {}
        for point in points:
            for label, flits in point.report.switch_loads:
                loads[label] = loads.get(label, 0) + flits
        result.switch_loads[pattern] = dict(sorted(loads.items()))
    return result


def _build_curve(
    pattern: str, points: list[CampaignPoint], config: CampaignConfig
) -> CampaignCurve:
    """Average one pattern's points across seeds into a curve."""
    by_rate: dict[float, list[SimReport]] = {}
    for point in points:
        by_rate.setdefault(point.rate, []).append(point.report)
    rates = tuple(sorted(by_rate))
    avg = tuple(_mean([r.avg_latency for r in by_rate[x]]) for x in rates)
    p95 = tuple(_mean([r.p95_latency for r in by_rate[x]]) for x in rates)
    thr = tuple(
        _mean([r.throughput_flits_per_cycle for r in by_rate[x]])
        for x in rates
    )
    dlv = tuple(
        _mean([r.delivered_fraction for r in by_rate[x]]) for x in rates
    )
    return CampaignCurve(
        pattern=pattern,
        rates=rates,
        avg_latency=avg,
        p95_latency=p95,
        throughput=thr,
        delivered=dlv,
        saturation_rate=detect_saturation(
            rates,
            avg,
            dlv,
            threshold=config.saturation_threshold,
            blowup=config.latency_blowup,
        ),
    )


def _mean(values: list[float]) -> float:
    """Mean that propagates unbounded (saturated) samples.

    Uses :func:`math.fsum` so the average is exactly rounded and
    therefore independent of summation order — batch grouping completes
    points in a different order than the exact lane, and curve
    statistics must not depend on which lane (or which batch
    composition) produced them.
    """
    if any(not math.isfinite(v) for v in values):
        return float("inf")
    return math.fsum(values) / len(values)


def _fmt(value: float) -> str:
    return "inf" if not math.isfinite(value) else f"{value:.1f}"
