"""Traffic generators for the simulator.

Two families, mirroring the paper's experiments:

* :class:`SyntheticTraffic` — rate-controlled synthetic patterns
  (uniform, and the adversarial permutations used to stress each
  topology in Figure 8(b)).
* :class:`TraceTraffic` — injection driven by an application core graph
  and mapping, converting MB/s flow bandwidths into flit rates (the
  DSP-filter simulation of Figure 10(c)).

All generators are callables invoked once per simulated cycle with the
network as argument; they are deterministic given their seed.
"""

from __future__ import annotations

import math
from random import Random

from repro.core.coregraph import CoreGraph
from repro.errors import SimulationError


def _bits(n: int) -> int:
    return max(1, (n - 1).bit_length())


def uniform(i: int, n: int, rng: Random) -> int:
    dst = rng.randrange(n - 1)
    return dst if dst < i else dst + 1


def bit_complement(i: int, n: int, rng: Random) -> int:
    if n & (n - 1) == 0:
        return (~i) & (n - 1)
    return (n - 1) - i


def bit_reverse(i: int, n: int, rng: Random) -> int:
    b = _bits(n)
    out = 0
    for k in range(b):
        if i & (1 << k):
            out |= 1 << (b - 1 - k)
    return out % n


def transpose(i: int, n: int, rng: Random) -> int:
    k = int(math.isqrt(n))
    if k * k == n:
        return (i % k) * k + i // k
    b = _bits(n)
    half = b // 2
    out = ((i << half) | (i >> (b - half))) & ((1 << b) - 1)
    return out % n


def tornado(i: int, n: int, rng: Random) -> int:
    return (i + max(1, math.ceil(n / 2) - 1)) % n


def neighbor(i: int, n: int, rng: Random) -> int:
    return (i + 1) % n


def shuffle(i: int, n: int, rng: Random) -> int:
    b = _bits(n)
    out = ((i << 1) | (i >> (b - 1))) & ((1 << b) - 1)
    return out % n


PATTERNS = {
    "uniform": uniform,
    "bit_complement": bit_complement,
    "bit_reverse": bit_reverse,
    "transpose": transpose,
    "tornado": tornado,
    "neighbor": neighbor,
    "shuffle": shuffle,
}

#: Empirically worst standard permutation per topology family (measured
#: at 0.35 flits/cycle/node on the 16-node instances) — the paper's
#: "adversarial traffic pattern for each topology" (Section 6.2). The
#: Clos has no adversarial permutation thanks to its path diversity.
ADVERSARIAL_PATTERNS = {
    "mesh": "bit_reverse",
    "torus": "bit_reverse",
    "hypercube": "transpose",
    "clos": "tornado",
    "butterfly": "bit_complement",
}


def adversarial_pattern(topology) -> str:
    """The stress pattern for a topology instance (default transpose)."""
    for prefix, pattern in ADVERSARIAL_PATTERNS.items():
        if topology.name.startswith(prefix):
            return pattern
    return "transpose"


class SyntheticTraffic:
    """Open-loop synthetic traffic at a fixed injection rate.

    Args:
        pattern: name from :data:`PATTERNS` or a callable
            ``(src_index, n_nodes, rng) -> dst_index``.
        injection_rate: offered load in flits/cycle/node (the x-axis of
            Figure 8(b)).
        seed: generator seed (independent of the network's).
    """

    def __init__(self, pattern, injection_rate: float, seed: int = 7):
        if injection_rate < 0:
            raise SimulationError("injection rate must be non-negative")
        if isinstance(pattern, str):
            try:
                pattern = PATTERNS[pattern]
            except KeyError:
                raise SimulationError(
                    f"unknown pattern {pattern!r}; choose from {sorted(PATTERNS)}"
                ) from None
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.rng = Random(seed)

    def __call__(self, network) -> None:
        slots = network.active_slots
        n = len(slots)
        p = self.injection_rate / network.config.packet_length_flits
        for idx in range(n):
            if self.rng.random() >= p:
                continue
            dst = self.pattern(idx, n, self.rng)
            if dst == idx:
                continue  # pattern fixed point: nothing to send
            network.create_packet(slots[idx], slots[dst])


class TraceTraffic:
    """Application-trace traffic from a core graph and mapping.

    Flow bandwidths (MB/s) convert to flit rates via the link width and
    clock: ``flits/cycle = MB/s * 8e6 / (flit_bits * clock_hz)``.

    Args:
        assignment: core index -> terminal slot (from the mapper).
        scale: multiply all rates (sweep load without editing the app).
    """

    def __init__(
        self,
        core_graph: CoreGraph,
        assignment: dict[int, int],
        flit_width_bits: int = 32,
        clock_mhz: float = 500.0,
        scale: float = 1.0,
        seed: int = 11,
    ):
        self.rng = Random(seed)
        self.flows: list[tuple[int, int, float]] = []
        for (src, dst), bw in core_graph.flows().items():
            rate = bw * 8e6 / (flit_width_bits * clock_mhz * 1e6) * scale
            self.flows.append((assignment[src], assignment[dst], rate))

    def offered_load(self) -> float:
        """Total offered load in flits/cycle."""
        return sum(rate for _, _, rate in self.flows)

    def __call__(self, network) -> None:
        plen = network.config.packet_length_flits
        for src_slot, dst_slot, rate in self.flows:
            if self.rng.random() < rate / plen:
                network.create_packet(src_slot, dst_slot)
