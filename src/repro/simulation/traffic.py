"""Traffic generators for the simulator.

Two families, mirroring the paper's experiments:

* :class:`SyntheticTraffic` — rate-controlled synthetic patterns
  (uniform, hotspot, and the adversarial permutations used to stress
  each topology in Figure 8(b)). Pattern functions live in
  :mod:`repro.simulation.patterns`.
* :class:`TraceTraffic` — injection driven by an application core graph
  and mapping, converting MB/s flow bandwidths into flit rates (the
  DSP-filter simulation of Figure 10(c)).

All generators are callables invoked once per simulated cycle with the
network as argument; they are deterministic given their seed.
:func:`build_traffic` is the uniform construction entry point used by the
CLI and the campaign runner: one ``(pattern, rate, seed)`` triple builds
either family, with ``rate`` always meaning *offered flits/cycle/node*.
"""

from __future__ import annotations

from random import Random

from repro.core.coregraph import CoreGraph
from repro.errors import SimulationError
from repro.simulation.patterns import (  # noqa: F401  (re-exported API)
    ADVERSARIAL_PATTERNS,
    APP_PATTERN,
    PATTERNS,
    adversarial_pattern,
    resolve_pattern,
)


class SyntheticTraffic:
    """Open-loop synthetic traffic at a fixed injection rate.

    Args:
        pattern: name from :data:`~repro.simulation.patterns.PATTERNS` or
            a callable ``(src_index, n_nodes, rng) -> dst_index``.
        injection_rate: offered load in flits/cycle/node (the x-axis of
            Figure 8(b)).
        seed: generator seed (independent of the network's).
    """

    def __init__(self, pattern, injection_rate: float, seed: int = 7):
        if injection_rate < 0:
            raise SimulationError("injection rate must be non-negative")
        self.pattern = resolve_pattern(pattern)
        self.injection_rate = injection_rate
        self.rng = Random(seed)

    def __call__(self, network) -> None:
        # Runs once per simulated cycle: bind the RNG draw and pattern
        # locally (the draw sequence is unchanged — one uniform draw per
        # node, pattern draws only on injection hits).
        slots = network.active_slots
        n = len(slots)
        p = self.injection_rate / network.config.packet_length_flits
        rng = self.rng
        rand = rng.random
        pattern = self.pattern
        create_packet = network.create_packet
        for idx in range(n):
            if rand() >= p:
                continue
            dst = pattern(idx, n, rng)
            if dst == idx:
                continue  # pattern fixed point: nothing to send
            create_packet(slots[idx], slots[dst])


class TraceTraffic:
    """Application-trace traffic from a core graph and mapping.

    Flow bandwidths (MB/s) convert to flit rates via the link width and
    clock: ``flits/cycle = MB/s * 8e6 / (flit_bits * clock_hz)``.

    Args:
        assignment: core index -> terminal slot (from the mapper).
        scale: multiply all rates (sweep load without editing the app).
    """

    def __init__(
        self,
        core_graph: CoreGraph,
        assignment: dict[int, int],
        flit_width_bits: int = 32,
        clock_mhz: float = 500.0,
        scale: float = 1.0,
        seed: int = 11,
    ):
        self.rng = Random(seed)
        self.flows: list[tuple[int, int, float]] = []
        for (src, dst), bw in core_graph.flows().items():
            rate = bw * 8e6 / (flit_width_bits * clock_mhz * 1e6) * scale
            self.flows.append((assignment[src], assignment[dst], rate))

    def offered_load(self) -> float:
        """Total offered load in flits/cycle."""
        return sum(rate for _, _, rate in self.flows)

    def __call__(self, network) -> None:
        plen = network.config.packet_length_flits
        rand = self.rng.random
        create_packet = network.create_packet
        for src_slot, dst_slot, rate in self.flows:
            if rand() < rate / plen:
                create_packet(src_slot, dst_slot)


def build_traffic(
    pattern: str,
    rate: float,
    seed: int,
    core_graph: CoreGraph | None = None,
    assignment: dict[int, int] | None = None,
    flit_width_bits: int = 32,
    clock_mhz: float = 500.0,
):
    """Build a traffic generator from a ``(pattern, rate, seed)`` point.

    ``rate`` is the offered load in flits/cycle/node for every pattern.
    For the trace-driven :data:`~repro.simulation.patterns.APP_PATTERN`
    (``"app"``) the application's nominal flow bandwidths are rescaled so
    their *average* per-node injection equals ``rate`` — which makes one
    rate axis comparable across synthetic and application traffic in a
    campaign sweep.

    Raises:
        SimulationError: for an unknown pattern, or ``"app"`` without a
            core graph and assignment.
    """
    if pattern == APP_PATTERN:
        if core_graph is None or assignment is None:
            raise SimulationError(
                "the 'app' traffic pattern needs a core graph and a "
                "core -> slot assignment"
            )
        nominal = TraceTraffic(
            core_graph,
            assignment,
            flit_width_bits=flit_width_bits,
            clock_mhz=clock_mhz,
        ).offered_load()
        if nominal <= 0:
            raise SimulationError(
                f"{core_graph.name}: application offers no traffic"
            )
        scale = rate * len(assignment) / nominal
        return TraceTraffic(
            core_graph,
            assignment,
            flit_width_bits=flit_width_bits,
            clock_mhz=clock_mhz,
            scale=scale,
            seed=seed,
        )
    return SyntheticTraffic(pattern, rate, seed=seed)
