"""Packets and flits for the cycle-accurate simulator.

Wormhole switching: a packet is a head flit (carrying the destination),
zero or more body flits, and a tail flit that releases the channels the
head acquired.

``is_head``/``is_tail`` are plain attributes computed once at flit
creation (not properties): the simulator kernel tests them on every hop
of every flit, and attribute loads are measurably cheaper than property
calls in that loop.
"""

from __future__ import annotations


class Packet:
    """One network packet (a sequence of flits)."""

    __slots__ = ("pid", "src", "dst", "length", "created", "ejected")

    def __init__(self, pid: int, src: int, dst: int, length: int, created: int):
        if length < 1:
            raise ValueError("packet needs at least one flit")
        self.pid = pid
        self.src = src
        self.dst = dst
        self.length = length
        self.created = created
        self.ejected: int | None = None

    @property
    def latency(self) -> int | None:
        """Creation-to-ejection latency in cycles (None while in flight)."""
        if self.ejected is None:
            return None
        return self.ejected - self.created

    def flits(self) -> list["Flit"]:
        """Materialize this packet's flit sequence."""
        return [Flit(self, i) for i in range(self.length)]

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.pid} {self.src}->{self.dst} len={self.length})"
        )


class Flit:
    """One flow-control unit of a packet."""

    __slots__ = ("packet", "index", "is_head", "is_tail")

    def __init__(self, packet: Packet, index: int):
        self.packet = packet
        self.index = index
        self.is_head = index == 0
        self.is_tail = index == packet.length - 1

    def __repr__(self) -> str:
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({kind}#{self.packet.pid}.{self.index})"
