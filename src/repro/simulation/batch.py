"""Vectorized batched wormhole simulation: a campaign as one array program.

The exact kernel (:mod:`repro.simulation.network`) advances one network
at a time, one event at a time, in pure CPython; PR 3's integer-indexed
rewrite (~3.2x) is the ceiling of that shape. This module advances
*many* networks in lockstep instead: every campaign point that shares a
topology (different injection rates, traffic patterns and seeds — the
lanes of one batch) becomes a row of one flat state vector over the
same interned channel layout PR 3 built, and one pass of array ops
advances all ``B`` lanes by one cycle.

Model fidelity
--------------
The batch kernel simulates the *same system* as the exact kernel —
input-buffered wormhole switches, credit-based flow control, per-output
round-robin arbitration, two virtual channels with dateline switching,
identical per-hop timing (``link_latency + switch_latency``), identical
warmup/measure/drain protocol and statistics formulas. What differs is
the *random streams*: traffic draws come from a per-lane counter-based
``Philox`` generator and adaptive route choices from a per-lane
``splitmix64`` hash instead of the exact kernel's single sequential
``random.Random``. Distributions match; sequences do not. The batch
engine is therefore **statistically equivalent, not bit-identical** —
gated by ``tests/simulation/test_batch_equivalence.py`` (same detected
saturation rate per curve, pre-saturation latency within tolerance,
exact flit-conservation invariants) while the exact kernel keeps its
bit-exact goldens.

Determinism contract
--------------------
Every lane's randomness is derived from the lane's *content* (pattern,
rate, traffic seed, simulator seed) and all per-lane state is
row-independent, so a point produces byte-identical results no matter
which other lanes share its batch, in what order, or how the campaign
was chunked — the property the per-point ``("bsim", …)`` cache keys
rely on (asserted in the equivalence suite).

Vectorization shape
-------------------
* Per-lane channel state — queue ring buffers, head/length, credits,
  wormhole owners, round-robin pointers, route requests — lives in
  flat ``lane * C + channel`` vectors; each cycle runs one dense scan
  for occupied channel fronts plus short sparse gather/scatter chains
  over only the active indices (flat 1-D indexing throughout: the 2-D
  ``take_along_axis``/``nonzero`` forms cost ~10x more per call).
* The future-event maps become per-slot event *lists* (arrays of flat
  channel ids + flit codes appended in phase C, concatenated at
  delivery) and a one-cycle credit buffer.
* Open-loop traffic is *precomputed*: synthetic and trace generators
  are pure functions of (lane seed, cycle, node), so the whole run's
  packet creations are materialized up front as per-slot FIFOs — the
  per-cycle traffic cost collapses to two gathers.
* Per-lane warmup/measure/drain boundaries are tracked independently,
  so heterogeneous lanes retire on their own cycle without stalling
  the batch.
"""

from __future__ import annotations

import hashlib
import statistics
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, UnsupportedRoutingError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.simulation.network import SimConfig, _kernel_layout
from repro.simulation.patterns import APP_PATTERN, HOTSPOT_FRACTION, PATTERNS
from repro.simulation.stats import SimReport, _quantile
from repro.simulation.traffic import TraceTraffic
from repro.topology.base import Topology

_FREE = -1
_SOURCE = -2
_INFINITE_CREDITS = 1 << 30
_NEVER = 1 << 40

#: Most recent batch-lane kernel throughput. Set where the simulation
#: runs — under a process executor that is the worker process, so the
#: parent's registry only sees serial/in-thread batches (documented in
#: docs/OBSERVABILITY.md).
_CYCLES_PER_SEC = obs_metrics.REGISTRY.gauge(
    "repro_batch_cycles_per_sec",
    "Simulated lane-cycles per wall second of the last batch kernel run",
)

#: Synthetic patterns whose destination is a pure function of the
#: source index (vectorized as a precomputed destination map).
_DETERMINISTIC_PATTERNS = frozenset(
    ("bit_complement", "bit_reverse", "transpose", "tornado", "neighbor",
     "shuffle")
)

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_T_STRIDE = np.uint64(0x9E3779B97F4A7C15)
_C_STRIDE = np.uint64(0xD1B54A32D192ED03)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 in, uint64 out)."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= _MIX1
    x ^= x >> np.uint64(27)
    x *= _MIX2
    x ^= x >> np.uint64(31)
    return x


def _lane_digest(sim_seed: int, traffic_seed: int, pattern: str,
                 rate: float) -> bytes:
    """Content digest seeding one lane's random streams.

    A pure function of the lane's own coordinates — never of batch
    composition — so the same campaign point draws the same streams in
    every batch it ever rides in.
    """
    payload = repr(("bsim-lane", sim_seed, traffic_seed, pattern, rate))
    return hashlib.sha256(payload.encode("utf-8")).digest()


@dataclass(frozen=True)
class BatchLane:
    """One campaign point's coordinates inside a batch.

    Attributes mirror the per-point fields of
    :class:`~repro.engine.jobs.SimulationJob`; everything the lanes of a
    batch must *share* (topology, simulator config, active slots) lives
    on the :class:`BatchSimulator` instead.
    """

    pattern: str
    rate: float
    traffic_seed: int
    warmup: int
    measure: int
    drain: int
    core_graph: object | None = None
    assignment: tuple[tuple[int, int], ...] | None = None
    flit_width_bits: int = 32
    clock_mhz: float = 500.0

    @property
    def cycles(self) -> int:
        """Total simulated cycles of this lane's protocol."""
        return self.warmup + self.measure + self.drain


class _LaneTraffic:
    """One lane's precomputed open-loop packet-creation schedule."""

    __slots__ = ("created", "dst_slot", "src_index", "error")

    def __init__(self, created, dst_slot, src_index, error=None):
        self.created = created      # (P,) creation cycle, ascending
        self.dst_slot = dst_slot    # (P,) destination slot value
        self.src_index = src_index  # (P,) source index into active_slots
        self.error = error          # SimulationError for unusable lanes


def _precompute_traffic(lane: BatchLane, slots: np.ndarray,
                        slot_index: dict[int, int], plen: int,
                        sim_seed: int) -> _LaneTraffic:
    """Materialize every packet a lane will ever create.

    All generators here are open loop (injection never depends on
    network state), so the full ``(cycle, source, destination)``
    schedule is a pure function of the lane content — computed once,
    vectorized over all cycles.
    """
    digest = _lane_digest(sim_seed, lane.traffic_seed, lane.pattern,
                          lane.rate)
    rng = np.random.Generator(
        np.random.Philox(key=int.from_bytes(digest[:16], "little"))
    )
    empty = _LaneTraffic(
        np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64)
    )
    T = lane.cycles
    n = len(slots)
    if T <= 0 or n < 2:
        return empty

    if lane.pattern == APP_PATTERN:
        return _precompute_trace(lane, rng, T, plen, slot_index)

    p = lane.rate / plen
    inj = rng.random((T, n)) < p
    src = np.arange(n)
    if lane.pattern == "uniform":
        d = rng.integers(0, n - 1, size=(T, n))
        dst = (d + (d >= src)).astype(np.int64)
    elif lane.pattern == "hotspot":
        d = rng.integers(0, n - 1, size=(T, n))
        dst = (d + (d >= src)).astype(np.int64)
        hot = n // 2
        hotm = (rng.random((T, n)) < HOTSPOT_FRACTION) & (src != hot)
        dst = np.where(hotm, hot, dst)
    elif lane.pattern in _DETERMINISTIC_PATTERNS:
        fn = PATTERNS[lane.pattern]
        dvec = np.array([fn(i, n, None) for i in range(n)], dtype=np.int64)
        inj &= dvec != src  # pattern fixed points never send
        dst = np.broadcast_to(dvec, (T, n))
    else:
        return _LaneTraffic(
            empty.created, empty.dst_slot, empty.src_index,
            error=SimulationError(
                f"the batch sim engine cannot vectorize pattern "
                f"{lane.pattern!r}; run it on the exact engine"
            ),
        )
    t_idx, s_idx = np.nonzero(inj)  # row-major: by cycle, then slot order
    return _LaneTraffic(
        (t_idx + 1).astype(np.int64),
        slots[dst[t_idx, s_idx]].astype(np.int64),
        s_idx.astype(np.int64),
    )


def _precompute_trace(lane: BatchLane, rng, T: int, plen: int,
                      slot_index: dict[int, int]) -> _LaneTraffic:
    """Application-trace schedule (the ``"app"`` pattern).

    Reuses :class:`~repro.simulation.traffic.TraceTraffic` for the
    MB/s -> flits/cycle conversion and the average-per-node rescaling,
    so the offered load matches the exact engine's by construction.
    """
    empty = np.empty(0, np.int64)
    if lane.core_graph is None or lane.assignment is None:
        return _LaneTraffic(empty, empty, empty, error=SimulationError(
            "the 'app' traffic pattern needs a core graph and a "
            "core -> slot assignment"
        ))
    assignment = dict(lane.assignment)
    nominal = TraceTraffic(
        lane.core_graph, assignment,
        flit_width_bits=lane.flit_width_bits, clock_mhz=lane.clock_mhz,
    ).offered_load()
    if nominal <= 0:
        return _LaneTraffic(empty, empty, empty, error=SimulationError(
            f"{lane.core_graph.name}: application offers no traffic"
        ))
    scale = lane.rate * len(assignment) / nominal
    flows = TraceTraffic(
        lane.core_graph, assignment,
        flit_width_bits=lane.flit_width_bits, clock_mhz=lane.clock_mhz,
        scale=scale,
    ).flows
    # Flow endpoints are slot *values*; the simulator wants indices into
    # the active-slot list for its per-source FIFOs.
    src_idx = np.array([slot_index[s] for s, _, _ in flows],
                       dtype=np.int64)
    dsts = np.array([d for _, d, _ in flows], dtype=np.int64)
    rates = np.array([r for _, _, r in flows], dtype=np.float64)
    inj = rng.random((T, len(flows))) < rates / plen
    t_idx, f_idx = np.nonzero(inj)  # by cycle, then flow-list order
    return _LaneTraffic(
        (t_idx + 1).astype(np.int64), dsts[f_idx], src_idx[f_idx]
    )


class _BatchLayout:
    """Numpy view of one topology's interned kernel layout.

    Built from (and cached beside) the exact kernel's
    :class:`~repro.simulation.network._KernelLayout`, so the expensive
    route-table construction is shared between engines.
    """

    __slots__ = (
        "num_channels", "num_switches", "chan_dest", "chan_vc",
        "route_n", "route_first", "cand_vc0", "cand_vc1", "has_adaptive",
        "inject_ch", "switch_labels", "switch_names",
    )

    def __init__(self, topology: Topology, active_slots: list[int],
                 num_vcs: int):
        base = _kernel_layout(topology, active_slots, num_vcs)
        C = len(base.chan_key)
        S = len(base.switch_nodes)
        self.num_channels = C
        self.num_switches = S
        self.chan_dest = np.array(base.chan_dest_switch, dtype=np.int64)
        self.chan_vc = np.array(base.chan_vc, dtype=np.int64)
        num_slots = topology.num_slots
        self.route_n = np.zeros((S, num_slots), dtype=np.int64)
        self.route_first = np.zeros((S, num_slots), dtype=np.int64)
        flat0: list[int] = []
        flat1: list[int] = []
        for si, row in enumerate(base.next_hop):
            for dst, pairs in enumerate(row):
                if pairs is None:
                    continue
                self.route_first[si, dst] = len(flat0)
                self.route_n[si, dst] = len(pairs)
                for vc0_ch, vc1_ch in pairs:
                    flat0.append(vc0_ch)
                    flat1.append(vc1_ch)
        self.cand_vc0 = np.array(flat0 or [0], dtype=np.int64)
        self.cand_vc1 = np.array(flat1 or [0], dtype=np.int64)
        self.has_adaptive = bool((self.route_n > 1).any())
        self.inject_ch = np.array(
            [base.inject_ch[s] for s in active_slots], dtype=np.int64
        )
        self.switch_labels = base.switch_labels
        self.switch_names = base.switch_nodes


def _batch_layout(topology: Topology, active_slots: list[int],
                  num_vcs: int) -> _BatchLayout:
    """Fetch (or build and cache) the numpy layout for a topology."""
    cache = topology.__dict__.setdefault("_batch_layout_cache", {})
    key = (tuple(active_slots), num_vcs)
    layout = cache.get(key)
    if layout is None:
        layout = cache[key] = _BatchLayout(topology, active_slots, num_vcs)
    return layout


class BatchSimulator:
    """Advance B same-topology campaign points in numpy lockstep.

    Args:
        topology: the shared fabric of every lane.
        lanes: per-point coordinates (pattern, rate, seed, protocol).
        config: shared simulator parameters (``None`` = defaults).
        active_slots: shared traffic endpoints (defaults to all slots).

    Call :meth:`run` once; it returns one
    :class:`~repro.simulation.stats.SimReport` (or a captured
    :class:`~repro.errors.SimulationError`) per lane, in lane order.
    After the run the per-lane conservation counters
    (:attr:`injected_flits`, :attr:`ejected_flits`,
    :meth:`in_network_flits`) stay readable for invariant checks.
    """

    def __init__(
        self,
        topology: Topology,
        lanes: list[BatchLane],
        config: SimConfig | None = None,
        active_slots: list[int] | None = None,
    ):
        if not lanes:
            raise SimulationError("batch simulation needs at least one lane")
        self.topology = topology
        self.config = config or SimConfig()
        self.lanes = list(lanes)
        self.active_slots = (
            list(range(topology.num_slots))
            if active_slots is None
            else sorted(active_slots)
        )
        self.layout = _batch_layout(
            topology, self.active_slots, self.config.num_vcs
        )
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> list[SimReport | SimulationError]:
        """Simulate every lane to the end of its protocol."""
        if self._ran:
            raise SimulationError("BatchSimulator.run is single-shot")
        self._ran = True
        start = time.perf_counter()
        self._setup()
        self._advance_all()
        self._finalize_counters()
        results = self._collect()
        # Observability (passive): gauge + retrospective span only; the
        # reports themselves are untouched.
        elapsed = time.perf_counter() - start
        cycles = sum(int(lane.cycles) for lane in self.lanes)
        if elapsed > 0:
            _CYCLES_PER_SEC.set(cycles / elapsed)
        obs_trace.emit(
            "batch.simulate", elapsed, lanes=len(self.lanes), cycles=cycles
        )
        return results

    # ------------------------------------------------------------------
    # construction of the flat lane-major state
    # ------------------------------------------------------------------
    def _setup(self) -> None:
        cfg = self.config
        lay = self.layout
        B = len(self.lanes)
        C = lay.num_channels
        S = len(self.active_slots)
        Ssw = lay.num_switches
        plen = cfg.packet_length_flits
        self.B, self.C, self.S, self.plen = B, C, S, plen
        BC = B * C

        slots = np.array(self.active_slots, dtype=np.int64)
        slot_index = {int(s): i for i, s in enumerate(slots)}

        # --- per-lane traffic schedules + packet tables
        self.lane_T = np.array([ln.cycles for ln in self.lanes],
                               dtype=np.int64)
        self.lane_error: list[SimulationError | None] = [None] * B
        schedules = []
        for b, lane in enumerate(self.lanes):
            sched = _precompute_traffic(lane, slots, slot_index, plen,
                                        cfg.seed)
            if sched.error is not None:
                self.lane_error[b] = sched.error
                self.lane_T[b] = 0
                sched = _LaneTraffic(np.empty(0, np.int64),
                                     np.empty(0, np.int64),
                                     np.empty(0, np.int64))
            schedules.append(sched)

        self.pkt_count = np.array([s.created.size for s in schedules],
                                  dtype=np.int64)
        P = max(1, int(self.pkt_count.max()))
        self.P = P
        self.pkt_created = np.full((B, P), _NEVER, dtype=np.int64)
        self.pkt_dst = np.zeros((B, P), dtype=np.int64)
        self.pkt_ejected = np.full((B, P), -1, dtype=np.int64)
        for b, s in enumerate(schedules):
            k = s.created.size
            if k:
                self.pkt_created[b, :k] = s.created
                self.pkt_dst[b, :k] = s.dst_slot
        self.pkt_dst_flat = self.pkt_dst.ravel()
        self.pkt_ejected_flat = self.pkt_ejected.ravel()

        # --- per-(lane, slot) source FIFOs (pids in creation order)
        counts = np.zeros((B, S), dtype=np.int64)
        for b, s in enumerate(schedules):
            if s.created.size:
                counts[b] = np.bincount(s.src_index, minlength=S)
        Q = max(1, int(counts.max())) + 1
        self.Q = Q
        fifo_pid = np.full((B, S, Q), -1, dtype=np.int64)
        fifo_created = np.full((B, S, Q), _NEVER, dtype=np.int64)
        for b, s in enumerate(schedules):
            if not s.created.size:
                continue
            order = np.argsort(s.src_index, kind="stable")
            src_sorted = s.src_index[order]
            starts = np.searchsorted(src_sorted, np.arange(S))
            ends = np.searchsorted(src_sorted, np.arange(S), side="right")
            for sl in range(S):
                seg = order[starts[sl]:ends[sl]]
                fifo_pid[b, sl, :seg.size] = seg
                fifo_created[b, sl, :seg.size] = s.created[seg]
        self.fifo_pid_flat = fifo_pid.ravel()
        self.fifo_created_flat = fifo_created.ravel()
        self.fifo_len = counts.ravel()              # (B*S,)
        self.src_head = np.zeros(B * S, dtype=np.int64)
        self.src_prog = np.zeros(B * S, dtype=np.int64)
        self.fifo_base = np.arange(B * S, dtype=np.int64) * Q
        # Incrementally maintained FIFO heads: creation cycle and pid of
        # each source's next uninjected packet (_NEVER when exhausted —
        # the sentinel rows in fifo_created provide it for free). Updated
        # only when a tail flit retires a packet, so the per-cycle
        # injection test is a single compare instead of a gather chain.
        self.next_created = self.fifo_created_flat[self.fifo_base].copy()
        self.next_pid = self.fifo_pid_flat[self.fifo_base].copy()

        # --- flat channel state (index = lane * C + channel)
        depth = cfg.buffer_depth_flits
        self.depth = depth
        self.q_buf = np.full(BC * depth, -1, dtype=np.int64)
        self.q_head = np.zeros(BC, dtype=np.int64)
        self.q_len = np.zeros(BC, dtype=np.int64)
        self.front_code = np.full(BC, -1, dtype=np.int64)
        self.in_request = np.full(BC, _FREE, dtype=np.int64)
        is_net = lay.chan_dest >= 0
        self.out_credits = np.tile(
            np.where(is_net, depth, _INFINITE_CREDITS).astype(np.int64), B
        )
        self.out_owner = np.full(BC, _FREE, dtype=np.int64)
        # Flit codes are unique per lane (pid * plen + k, pids never
        # reused), so the single "expected next code" per output replaces
        # an (owner input, owner pid) pair: a front matches iff it holds
        # exactly the owning stream's next flit.
        self.out_expected = np.full(BC, -1, dtype=np.int64)
        self.out_rr = np.zeros(BC, dtype=np.int64)
        # Ring arithmetic: queues and the event wheel use & mask instead
        # of % when their size is a power of two (the common case).
        self.dmask = depth - 1 if depth & (depth - 1) == 0 else None

        # --- precomputed flat index helpers
        lanes_arange = np.arange(B, dtype=np.int64)
        self.chan_dest_t = np.tile(lay.chan_dest, B)          # (BC,)
        self.chan_vc_t = np.tile(lay.chan_vc, B)
        self.chan_local_t = np.tile(np.arange(C, dtype=np.int64), B)
        self.chan_lane = np.repeat(lanes_arange, C)
        self.chan_lane_base = self.chan_lane * C
        self.chan_pkt_base = self.chan_lane * P
        self.chan_qbase = np.arange(BC, dtype=np.int64) * depth
        # lane * Ssw + dest_switch: one gather maps a forwarding channel
        # to its (lane, switch) load-histogram bin.
        self.chan_swflat = self.chan_lane * Ssw + self.chan_dest_t
        self.inj_ch_bs = (
            lanes_arange[:, None] * C + lay.inject_ch[None, :]
        ).ravel()                                             # (B*S,)
        self.slot_lane = np.repeat(lanes_arange, S)

        # --- degraded channels (fault overlays), mirroring Network
        degradations = getattr(self.topology, "channel_degradations", None)
        degradations = degradations() if callable(degradations) else None
        self.chan_period_t = None
        self.chan_extra_t = None
        self.free_at = None
        max_extra = 0
        if degradations:
            base = _kernel_layout(self.topology, self.active_slots,
                                  cfg.num_vcs)
            periods = np.ones(C, dtype=np.int64)
            extras = np.zeros(C, dtype=np.int64)
            for edge, (cap_factor, extra_latency) in degradations.items():
                first = base.edge_base.get(edge)
                if first is None:
                    continue
                period = max(1, round(1.0 / float(cap_factor)))
                for vc in range(cfg.num_vcs):
                    periods[first + vc] = period
                    extras[first + vc] = int(extra_latency)
            if (periods != 1).any() or extras.any():
                self.chan_period_t = np.tile(periods, B)
                self.chan_extra_t = np.tile(extras, B)
                self.free_at = np.zeros(BC, dtype=np.int64)
                max_extra = int(extras.max())

        # --- event wheel: one list of (flat channel ids, codes) pairs
        # per future cycle slot. Offsets never exceed horizon - 1, so a
        # slot is always fully drained before it is refilled. Only
        # switch-bound flits ride the wheel: ejection at a terminal is a
        # pure sink (no queue, no credits, no feedback), so terminal
        # deliveries accumulate as (channels, codes, when) triples and
        # are tallied wholesale after the loop.
        self.forward_delay = cfg.link_latency + cfg.switch_latency
        self.H = self.forward_delay + 1 + max_extra
        self.wheel: list[list] = [[] for _ in range(self.H)]
        self.eject_events: list[tuple] = []
        self._inj_pending: list[np.ndarray] = []
        self._postmortem_flits = np.zeros(B, dtype=np.int64)

        # Cumulative packet creations per cycle (all lanes): the cheap
        # scalar gate that skips the injection phase while no source
        # holds an uninjected packet.
        T_all = int(self.lane_T.max()) if B else 0
        by_cycle = np.zeros(max(T_all, 1) + 1, dtype=np.int64)
        for s in schedules:
            if s.created.size:
                by_cycle += np.bincount(s.created, minlength=T_all + 1)
        self.cum_create = np.cumsum(by_cycle).tolist()

        # --- measurement counters
        self.injected_flits = np.zeros(B, dtype=np.int64)
        self.ejected_flits = np.zeros(B, dtype=np.int64)
        self.switch_flits = np.zeros((B, Ssw), dtype=np.int64)
        self.switch_flits_flat = self.switch_flits.ravel()
        self.loads_before = np.zeros_like(self.switch_flits)
        self.loads_after = np.zeros_like(self.switch_flits)

        self.live = self.lane_T > 0
        self.live_chan = np.repeat(self.live, C)
        self.live_slot = np.repeat(self.live, S)

        self._snap_before: dict[int, list[int]] = {}
        self._snap_after: dict[int, list[int]] = {}
        self._retire: dict[int, list[int]] = {}
        for b, lane in enumerate(self.lanes):
            if not self.live[b]:
                continue
            self._snap_before.setdefault(lane.warmup, []).append(b)
            self._snap_after.setdefault(
                lane.warmup + lane.measure, []).append(b)
            self._retire.setdefault(lane.cycles + 1, []).append(b)
        # warmup == 0 snapshots happen before the loop (all-zero loads).
        self._snap_before.pop(0, None)
        self._snap_after.pop(0, None)

        digests = [
            _lane_digest(cfg.seed, ln.traffic_seed, ln.pattern, ln.rate)
            for ln in self.lanes
        ]
        self.route_key_t = np.repeat(np.array(
            [int.from_bytes(d[16:24], "little") for d in digests],
            dtype=np.uint64,
        ), C)

    # ------------------------------------------------------------------
    def _kill_lane(self, b: int) -> None:
        """Freeze a lane mid-run (retired, or failed on a route error)."""
        C, S = self.C, self.S
        self.live[b] = False
        self.live_chan[b * C:(b + 1) * C] = False
        self.live_slot[b * S:(b + 1) * S] = False
        # Clearing the fronts removes the lane from the per-cycle front
        # scan; queue lengths stay readable for conservation accounting.
        # _NEVER heads drop the lane's sources from the injection test.
        self.front_code[b * C:(b + 1) * C] = -1
        self.next_created[b * S:(b + 1) * S] = _NEVER

    # ------------------------------------------------------------------
    # the lockstep cycle loop
    # ------------------------------------------------------------------
    def _advance_all(self) -> None:
        lay = self.layout
        B, plen = self.B, self.plen
        depth = self.depth
        H = self.H
        plen_m1 = plen - 1
        link_latency = self.config.link_latency
        forward_delay = self.forward_delay
        route_n, route_first = lay.route_n, lay.route_first
        cand_vc0, cand_vc1 = lay.cand_vc0, lay.cand_vc1
        has_adaptive = lay.has_adaptive
        chan_dest_t = self.chan_dest_t
        chan_vc_t = self.chan_vc_t
        chan_local_t = self.chan_local_t
        chan_lane = self.chan_lane
        chan_lane_base = self.chan_lane_base
        chan_pkt_base = self.chan_pkt_base
        chan_qbase = self.chan_qbase
        chan_swflat = self.chan_swflat
        q_buf, q_head, q_len = self.q_buf, self.q_head, self.q_len
        front_code = self.front_code
        in_request = self.in_request
        out_credits, out_owner = self.out_credits, self.out_owner
        out_expected, out_rr = self.out_expected, self.out_rr
        dmask = self.dmask
        wheel = self.wheel
        eject_events = self.eject_events
        inj_pending = self._inj_pending
        pkt_dst_flat = self.pkt_dst_flat
        fifo_pid_flat = self.fifo_pid_flat
        fifo_created_flat = self.fifo_created_flat
        fifo_base = self.fifo_base
        src_head, src_prog = self.src_head, self.src_prog
        next_created, next_pid = self.next_created, self.next_pid
        inj_ch_bs = self.inj_ch_bs
        slot_lane = self.slot_lane
        switch_flits_flat = self.switch_flits_flat
        live_chan = self.live_chan
        route_key_t = self.route_key_t
        chan_period_t = self.chan_period_t
        chan_extra_t = self.chan_extra_t
        free_at = self.free_at
        degraded = chan_period_t is not None
        Ssw = lay.num_switches
        BSsw = B * Ssw
        cum_create = self.cum_create
        snap_before, snap_after = self._snap_before, self._snap_after
        retire = self._retire

        live_count = int(self.live.sum())
        T_max = int(self.lane_T.max()) if live_count else 0
        queued = 0             # flits sitting in switch input queues
        consumed = 0           # packets fully injected so far
        credit_pending = None  # input channels credited back next cycle
        sw_pending: list[np.ndarray] = []  # deferred switch-load tallies
        # Masking is only needed once lanes diverge (a lane retired or
        # failed mid-run); until then every row is live.
        masked = live_count != B

        for t in range(1, T_max + 1):
            if t in retire:
                for b in retire[t]:
                    self._kill_lane(b)
                    live_count -= 1
                masked = True
                if not live_count:
                    break

            # --- apply credits sent last cycle
            if credit_pending is not None:
                out_credits[credit_pending] += 1
                credit_pending = None

            # --- deliver this cycle's switch-bound arrivals
            events = wheel[t % H]
            if events:
                wheel[t % H] = []
                if len(events) == 1:
                    idx, codes = events[0]
                else:
                    idx = np.concatenate([e[0] for e in events])
                    codes = np.concatenate([e[1] for e in events])
                if masked:
                    keep = live_chan[idx]
                    if not keep.all():
                        idx, codes = idx[keep], codes[keep]
                if idx.size:
                    qh = q_head[idx]
                    ql = q_len[idx]
                    if dmask is not None:
                        pos = (qh + ql) & dmask
                    else:
                        pos = (qh + ql) % depth
                    q_buf[chan_qbase[idx] + pos] = codes
                    q_len[idx] = ql + 1
                    was_empty = ql == 0
                    front_code[idx[was_empty]] = codes[was_empty]
                    queued += int(idx.size)

            # --- switch phases over occupied channel fronts
            if queued:
                af = np.flatnonzero(front_code >= 0)
            else:
                af = None
            if af is not None and af.size:
                fcode = front_code[af]
                ishead = fcode % plen == 0
                freq = in_request[af]

                # Phase A: route requests for fresh head flits.
                need = np.flatnonzero(ishead & (freq < 0))
                if need.size:
                    na = af[need]
                    pid_n = fcode[need] // plen
                    si = chan_dest_t[na]
                    dst = pkt_dst_flat[chan_pkt_base[na] + pid_n]
                    n = route_n[si, dst]
                    filtered = not n.all()
                    if filtered:
                        bad = n == 0
                        for ch, s, d in zip(na[bad], si[bad], dst[bad]):
                            b = int(chan_lane[ch])
                            if self.lane_error[b] is None:
                                self.lane_error[b] = (
                                    UnsupportedRoutingError(
                                        f"no route from "
                                        f"{lay.switch_names[int(s)]} to "
                                        f"slot {int(d)}"
                                    )
                                )
                            if self.live[b]:
                                self._kill_lane(b)
                                live_count -= 1
                        masked = True
                        ok = ~bad
                        na, si, dst, n = na[ok], si[ok], dst[ok], n[ok]
                        if not live_count:
                            break
                    if na.size:
                        sel = route_first[si, dst]
                        if has_adaptive:
                            multi = n > 1
                            if multi.any():
                                # Wraparound is the point of the golden
                                # -ratio stride, so fold t in Python
                                # ints (numpy warns on scalar uint64
                                # overflow, unlike array ops).
                                t_hash = np.uint64(
                                    (t * int(_T_STRIDE))
                                    & 0xFFFFFFFFFFFFFFFF
                                )
                                r = _mix64(
                                    route_key_t[na]
                                    ^ t_hash
                                    ^ (chan_local_t[na].astype(np.uint64)
                                       * _C_STRIDE)
                                )
                                sel = sel + np.where(
                                    multi,
                                    (r % n.astype(np.uint64)).astype(
                                        np.int64),
                                    0,
                                )
                        rqf = chan_lane_base[na] + np.where(
                            chan_vc_t[na] == 0, cand_vc0[sel],
                            cand_vc1[sel],
                        )
                        in_request[na] = rqf
                        if filtered:
                            freq = in_request[af]  # full refresh
                        else:
                            freq[need] = rqf  # patch the sparse copy

                # Phase B: round-robin arbitration per free output.
                have = freq >= 0
                ia = np.flatnonzero(ishead & have)
                if ia.size:
                    arq = freq[ia]
                    is_free = np.flatnonzero(out_owner[arq] == _FREE)
                    if is_free.size:
                        ia = ia[is_free]
                        arq = arq[is_free]
                        aidx = af[ia]
                        acode = fcode[ia]
                        # Flat request ids embed the lane, so one stable
                        # sort groups contenders per (lane, output) in
                        # ascending input-channel order — the exact
                        # kernel's scan order.
                        order = np.argsort(arq, kind="stable")
                        ks = arq[order]
                        first = np.empty(ks.size, dtype=bool)
                        first[0] = True
                        np.not_equal(ks[1:], ks[:-1], out=first[1:])
                        starts = np.flatnonzero(first)
                        counts = np.empty(starts.size, dtype=np.int64)
                        counts[:-1] = starts[1:] - starts[:-1]
                        counts[-1] = ks.size - starts[-1]
                        grq = ks[starts]
                        rr = out_rr[grq]
                        winners = order[starts + (rr % counts)]
                        out_owner[grq] = aidx[winners]
                        out_expected[grq] = acode[winners]
                        out_rr[grq] = rr + 1

                # Phase C: forward one flit per owned output with credit.
                hv = np.flatnonzero(have)
                if hv.size:
                    rqc = freq[hv]
                    # The front that holds exactly the owning stream's
                    # next flit is (uniquely) allowed to forward.
                    ok = (
                        (out_expected[rqc] == fcode[hv])
                        & (out_credits[rqc] > 0)
                    )
                    if degraded:
                        ok &= free_at[rqc] <= t
                    w = np.flatnonzero(ok)
                    if w.size:
                        sel = hv[w]
                        fidx = af[sel]
                        frq = rqc[w]
                        code = fcode[sel]
                        if dmask is not None:
                            qh = (q_head[fidx] + 1) & dmask
                        else:
                            qh = (q_head[fidx] + 1) % depth
                        q_head[fidx] = qh
                        ql = q_len[fidx] - 1
                        q_len[fidx] = ql
                        nf = q_buf[chan_qbase[fidx] + qh]
                        nf[ql == 0] = -1
                        front_code[fidx] = nf
                        queued -= int(fidx.size)
                        out_credits[frq] -= 1
                        out_expected[frq] = code + 1
                        sw_pending.append(chan_swflat[fidx])
                        extra = None
                        if degraded:
                            free_at[frq] = t + chan_period_t[frq]
                            extra = chan_extra_t[frq]
                            if not extra.any():
                                extra = None
                        term = chan_dest_t[frq] < 0
                        if term.any():
                            eject_events.append((
                                frq[term], code[term],
                                t + forward_delay + (
                                    extra[term] if extra is not None
                                    else 0
                                ),
                            ))
                            fwd = ~term
                            frq_n, code_n = frq[fwd], code[fwd]
                            if extra is not None:
                                extra = extra[fwd]
                        else:
                            frq_n, code_n = frq, code
                        if frq_n.size:
                            if extra is not None and extra.any():
                                for off in np.unique(extra):
                                    sub = extra == off
                                    wheel[
                                        (t + forward_delay + int(off)) % H
                                    ].append((frq_n[sub], code_n[sub]))
                            else:
                                wheel[(t + forward_delay) % H].append(
                                    (frq_n, code_n))
                        credit_pending = fidx
                        tail = code % plen == plen_m1
                        trq = frq[tail]
                        if trq.size:
                            out_owner[trq] = _FREE
                            out_expected[trq] = -1
                            in_request[fidx[tail]] = -1

            # --- inject from source FIFOs (packets created before t)
            if cum_create[t - 1] > consumed:
                ii = np.flatnonzero(next_created < t)
            else:
                ii = None
            if ii is not None and ii.size:
                pids = next_pid[ii]
                ch = inj_ch_bs[ii]
                prog = src_prog[ii]
                code = pids * plen + prog
                lockm = (prog == 0) & (out_owner[ch] == _FREE)
                lch = ch[lockm]
                if lch.size:
                    out_owner[lch] = _SOURCE
                    out_expected[lch] = code[lockm]
                can_inj = np.flatnonzero(
                    (out_expected[ch] == code)
                    & (out_credits[ch] > 0)
                )
                if can_inj.size:
                    js = ii[can_inj]
                    jch = ch[can_inj]
                    jp = prog[can_inj]
                    jcode = code[can_inj]
                    out_credits[jch] -= 1
                    out_expected[jch] = jcode + 1
                    inj_pending.append(slot_lane[js])
                    wheel[(t + link_latency) % H].append((jch, jcode))
                    tail = jp == plen_m1
                    jp1 = jp + 1
                    jp1[tail] = 0
                    src_prog[js] = jp1
                    ts = js[tail]
                    if ts.size:
                        tch = jch[tail]
                        src_head[ts] += 1
                        out_owner[tch] = _FREE
                        out_expected[tch] = -1
                        nb = fifo_base[ts] + src_head[ts]
                        next_created[ts] = fifo_created_flat[nb]
                        next_pid[ts] = fifo_pid_flat[nb]
                        consumed += int(ts.size)

            # --- per-lane measurement snapshots (flush deferred switch
            # tallies only when a lane's window boundary lands here)
            if t in snap_before or t in snap_after:
                if sw_pending:
                    switch_flits_flat += np.bincount(
                        np.concatenate(sw_pending), minlength=BSsw)
                    sw_pending.clear()
                if t in snap_before:
                    idx = snap_before[t]
                    self.loads_before[idx] = self.switch_flits[idx]
                if t in snap_after:
                    idx = snap_after[t]
                    self.loads_after[idx] = self.switch_flits[idx]

    # ------------------------------------------------------------------
    def _finalize_counters(self) -> None:
        """Tally the deferred sinks once, after the cycle loop.

        Ejection has no feedback into the simulation, so terminal
        deliveries were only *recorded* during the loop; here they are
        validated against each lane's own end-of-run cycle (a lane that
        retired at ``T`` never sees flits landing after ``T``) and
        folded into the per-lane counters and packet eject times.
        """
        B, plen = self.B, self.plen
        if self._inj_pending:
            self.injected_flits += np.bincount(
                np.concatenate(self._inj_pending), minlength=B)
            self._inj_pending.clear()
        if not self.eject_events:
            return
        idx = np.concatenate([e[0] for e in self.eject_events])
        codes = np.concatenate([e[1] for e in self.eject_events])
        whens = np.concatenate([
            e[2] if isinstance(e[2], np.ndarray)
            else np.full(e[0].size, e[2], dtype=np.int64)
            for e in self.eject_events
        ])
        self.eject_events.clear()
        lanes = idx // self.C
        valid = whens <= self.lane_T[lanes]
        if not valid.all():
            # Flits that would have landed after their lane's last
            # simulated cycle stay "in the network" for conservation.
            self._postmortem_flits += np.bincount(
                lanes[~valid], minlength=B)
            idx, codes = idx[valid], codes[valid]
            whens, lanes = whens[valid], lanes[valid]
        self.ejected_flits += np.bincount(lanes, minlength=B)
        tails = codes % plen == plen - 1
        self.pkt_ejected_flat[
            self.chan_pkt_base[idx[tails]] + codes[tails] // plen
        ] = whens[tails]

    # ------------------------------------------------------------------
    # statistics (formulas identical to stats.run_measurement)
    # ------------------------------------------------------------------
    def _collect(self) -> list[SimReport | SimulationError]:
        labels = self.layout.switch_labels
        results: list[SimReport | SimulationError] = []
        for b, lane in enumerate(self.lanes):
            err = self.lane_error[b]
            if err is not None:
                results.append(err)
                continue
            P = int(self.pkt_count[b])
            created = self.pkt_created[b, :P]
            ejected = self.pkt_ejected[b, :P]
            start, end = lane.warmup, lane.warmup + lane.measure
            window = (created >= start) & (created < end)
            delivered = window & (ejected >= 0)
            latencies = [
                int(v) for v in (ejected[delivered] - created[delivered])
            ]
            n_created = int(window.sum())
            n_window = int(delivered.sum())
            diffs = self.loads_after[b] - self.loads_before[b]
            switch_loads = tuple(
                sorted(zip(labels, (int(d) for d in diffs)))
            )
            results.append(SimReport(
                cycles=lane.cycles,
                offered_rate=lane.rate,
                measured_packets=n_window,
                delivered_fraction=(
                    (n_window / n_created) if n_created else 1.0
                ),
                avg_latency=(
                    statistics.fmean(latencies) if latencies
                    else float("inf")
                ),
                p95_latency=(
                    _quantile(latencies, 0.95) if latencies
                    else float("inf")
                ),
                min_latency=min(latencies) if latencies else float("inf"),
                throughput_flits_per_cycle=(
                    int(self.ejected_flits[b]) / max(1, lane.cycles)
                ),
                switch_loads=switch_loads,
            ))
        return results

    # ------------------------------------------------------------------
    # conservation accounting (read by the equivalence suite)
    # ------------------------------------------------------------------
    def in_network_flits(self) -> np.ndarray:
        """Flits per lane still inside the network after the run.

        Queued in switch input buffers plus in flight on the arrival
        wheel; together with the ejected count this must exactly equal
        every flit ever injected (asserted by the equivalence tests).
        """
        queued = self.q_len.reshape(self.B, self.C).sum(axis=1)
        in_flight = np.zeros(self.B, dtype=np.int64)
        for slot_events in self.wheel:
            for idx, _codes in slot_events:
                in_flight += np.bincount(
                    self.chan_lane[idx], minlength=self.B)
        return queued + in_flight + self._postmortem_flits


def simulate_batch(
    points,
    config: SimConfig | None = None,
    active_slots: list[int] | None = None,
) -> list[SimReport | SimulationError]:
    """Run many same-topology campaign points as one batch.

    ``points`` duck-types :class:`~repro.engine.jobs.SimulationJob` —
    each needs ``pattern``, ``rate``, ``traffic_seed``, the
    warmup/measure/drain protocol, and the optional app-traffic fields.
    All points must share one topology, simulator config and active-slot
    set (the engine's batch job builder groups them that way); the
    shared values default to the first point's.

    Returns one entry per point, in order: a
    :class:`~repro.simulation.stats.SimReport`, or the
    :class:`~repro.errors.SimulationError` that disqualified just that
    lane (unvectorizable pattern, no route) while the rest of the batch
    completed.
    """
    points = list(points)
    if not points:
        return []
    first = points[0]
    topology = first.topology
    if config is None:
        config = first.sim or SimConfig()
    if active_slots is None and first.active_slots is not None:
        active_slots = list(first.active_slots)
    for p in points[1:]:
        if p.topology is not topology:
            raise SimulationError(
                "simulate_batch points must share one topology object; "
                "group campaign points per fabric before batching"
            )
        if (p.sim or SimConfig()) != config:
            raise SimulationError(
                "simulate_batch points must share one simulator config"
            )
        if (
            None if p.active_slots is None else list(p.active_slots)
        ) != active_slots:
            raise SimulationError(
                "simulate_batch points must share one active-slot set"
            )
    lanes = [
        BatchLane(
            pattern=p.pattern,
            rate=p.rate,
            traffic_seed=p.traffic_seed,
            warmup=p.warmup,
            measure=p.measure,
            drain=p.drain,
            core_graph=p.core_graph,
            assignment=p.assignment,
            flit_width_bits=p.flit_width_bits,
            clock_mhz=p.clock_mhz,
        )
        for p in points
    ]
    return BatchSimulator(
        topology, lanes, config=config, active_slots=active_slots
    ).run()
