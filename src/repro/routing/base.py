"""Routing-function interface and result containers.

A routing function turns one commodity (source slot, destination slot,
bandwidth) into one or more weighted paths through the topology graph,
updating the shared :class:`~repro.routing.loads.EdgeLoads` ledger as it
goes so later commodities (and later chunks of the same commodity) steer
around accumulated traffic — the mechanism of Figure 5, steps 3-6.

The four functions the paper supports (Section 1, Figure 9(a)):

* ``DO`` — dimension ordered: one deterministic dimension-by-dimension path.
* ``MP`` — minimum path: least-loaded minimum path (Dijkstra on the
  quadrant graph).
* ``SM`` — split traffic across minimum paths.
* ``SA`` — split traffic across all paths (may leave the quadrant).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import cached_property

from repro.core.coregraph import Commodity
from repro.routing.loads import EdgeLoads
from repro.topology.base import SW, Topology


@dataclass
class RoutedCommodity:
    """Routing outcome for one commodity.

    ``paths`` holds ``(node_path, bandwidth)`` pairs whose bandwidths sum
    to the commodity value (a single pair for unsplit routing).
    """

    commodity: Commodity
    src_slot: int
    dst_slot: int
    paths: list[tuple[list, float]] = field(default_factory=list)

    @cached_property
    def hops(self) -> float:
        """Bandwidth-weighted switch count over this commodity's paths.

        Cached: ``weighted_average_hops``, QoS checks and report stats
        all re-read it per evaluation, and the incremental engine splices
        the same :class:`RoutedCommodity` objects into many candidate
        evaluations. ``paths`` is treated as immutable once routed.
        """
        if self.commodity.value <= 0:
            return 0.0
        total = 0
        for path, bw in self.paths:
            count = 0
            for n in path:
                if n[0] == SW:
                    count += 1
            total = total + bw * count
        return total / self.commodity.value

    def validate_conservation(self, tol: float = 1e-6) -> bool:
        routed = sum(bw for _, bw in self.paths)
        return abs(routed - self.commodity.value) <= tol * max(
            1.0, self.commodity.value
        )


def ledger_load_bound(
    topology: Topology, commodities: list[Commodity]
) -> float:
    """Upper bound on any single edge load over a whole routing run.

    Every edge's load is part of the final ledger total, which is at
    most the summed commodity bandwidth times the longest loop-free path
    (fewer edges than topology graph nodes). The bound is a pure
    function of (application, topology) — identical for every mapping
    of the same pair — which is what lets ``hop_scale`` stay constant
    across evaluations (see :mod:`repro.routing.shortest`).
    """
    total = 0.0
    for c in commodities:
        total += c.value
    return total * topology.graph.number_of_nodes()


@dataclass
class RoutingResult:
    """All commodities of a mapping, routed."""

    routed: list[RoutedCommodity]
    loads: EdgeLoads

    def all_paths(self) -> list[list]:
        return [path for rc in self.routed for path, _ in rc.paths]

    def weighted_average_hops(self) -> float:
        """Average communication hop delay, weighted by bandwidth.

        This is the paper's "avg hops" performance metric (Figures 3(d),
        6(a), 7(b)).
        """
        total_bw = sum(rc.commodity.value for rc in self.routed)
        if total_bw <= 0:
            return 0.0
        weighted = sum(rc.hops * rc.commodity.value for rc in self.routed)
        return weighted / total_bw

    def max_link_load(self, topology: Topology) -> float:
        """Heaviest constrained-link load — the minimum feasible link
        bandwidth of this routing (Figure 9(a) metric). Parallel
        channels divide their edge's load (per-channel semantics)."""
        edges = topology.net_edges()
        if topology.constrain_core_links:
            edges = edges + topology.core_edges()
        return self.loads.max_load(
            edges, divisors=topology.channel_multiplicities()
        )


class RoutingFunction(ABC):
    """Base class for the four routing functions."""

    #: Short code used in tables and the CLI ("DO", "MP", "SM", "SA").
    code: str = "?"
    #: Human-readable name.
    name: str = "?"

    @abstractmethod
    def route_commodity(
        self,
        topology: Topology,
        src_slot: int,
        dst_slot: int,
        value: float,
        loads: EdgeLoads,
    ) -> list[tuple[list, float]]:
        """Route one commodity and **record its traffic in ``loads``**.

        Returns ``(path, bandwidth)`` pairs summing to ``value``. The
        method must call ``loads.add_path`` itself so that multi-chunk
        routing sees its own earlier chunks.
        """

    def load_independent(
        self, topology: Topology, src_slot: int, dst_slot: int
    ) -> bool:
        """Whether this function's routing decision for the slot pair is
        the same under *every* possible load ledger.

        The incremental engine (:mod:`repro.routing.incremental`) uses
        this to replay a clean commodity's recorded ledger additions
        instead of re-searching: a ``True`` answer is a proof obligation
        that :meth:`route_commodity` would return the identical paths
        regardless of accumulated traffic (e.g. dimension-ordered
        routes, or a quadrant with a single minimum-hop path under
        hop-dominant weights). Defaults to ``False`` (always re-route).
        """
        return False

    def search_edges(
        self, topology: Topology, src_slot: int, dst_slot: int
    ) -> frozenset | None:
        """Directed edges whose loads can influence this pair's routing.

        The incremental engine skips re-searching a clean load-dependent
        commodity when none of these edges diverged from its base
        evaluation (with the application-constant ``hop_scale``, equal
        inputs mean a bit-identical search). ``None`` — the default —
        means "potentially every edge": the commodity is always
        re-routed when anything diverged.
        """
        return None

    def route_all(
        self,
        topology: Topology,
        slot_of: dict[int, int],
        commodities: list[Commodity],
    ) -> RoutingResult:
        """Route every commodity in the given (already sorted) order.

        Args:
            topology: target NoC.
            slot_of: core index -> terminal slot (the mapping function).
            commodities: commodities in decreasing value order (Figure 5,
                step 2).
        """
        loads = EdgeLoads()
        loads.load_bound = ledger_load_bound(topology, commodities)
        routed = []
        for c in commodities:
            src = slot_of[c.src]
            dst = slot_of[c.dst]
            paths = self.route_commodity(topology, src, dst, c.value, loads)
            routed.append(
                RoutedCommodity(
                    commodity=c, src_slot=src, dst_slot=dst, paths=paths
                )
            )
        return RoutingResult(routed=routed, loads=loads)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.code})"
