"""Incremental delta-routing engine: O(Δ) evaluation of swap candidates.

Design note (companion to the kernel note in ``repro/simulation/network.py``)
-----------------------------------------------------------------------------

The mapping searches (pairwise-swap descent, simulated annealing) evaluate
thousands of candidate assignments that each differ from a *base*
assignment by exactly two slots, yet the straightforward path re-routes
every commodity of every candidate from scratch. SUNMAP's own mapping
loop (Figure 5) makes an **exact** incremental scheme possible because it
is sequential and order-dependent: commodities are routed in decreasing
value order, each one reading and extending one shared load ledger. The
consequences this engine exploits:

* **A swap of slots (s1, s2) only dirties commodities incident to the
  swapped cores.** Every commodity routed *before* the first dirty one
  sees the same endpoint slots and — by induction over the routing
  sequence — the bit-identical ledger state, so its routing decision and
  its ledger additions are provably unchanged. The prefix ``[0, k)`` is
  spliced verbatim from the base: same :class:`RoutedCommodity` objects,
  no routing, no path walks.

* **Ledger checkpoints are sparse snapshots plus exact roll-forward.**
  The base route runs through
  :class:`~repro.routing.loads.RecordingEdgeLoads`, which logs each
  commodity's ledger additions (flat ``(edge, value)`` sequences) and
  snapshots the ledger dict at positions spaced along the commodity
  sequence. Restoring the state at the first dirty index *k* costs one
  dict copy of the nearest snapshot at/before *k* plus a replay of the
  logged additions up to *k* — the identical float operations the base
  performed, so the restored prefix ledger is bit-exact, accumulation
  history and key set included. (A per-edge undo journal was measured
  first and rejected: it taxes every ledger addition on the routing hot
  path, while sparse snapshots amortize to nearly nothing.)

* **The suffix re-routes only what the ledger can actually influence.**
  A *clean* suffix commodity (endpoints untouched by the swap) keeps
  its base paths — only its logged ledger additions are replayed,
  skipping Dijkstra entirely — in two provable cases. (1) Its routing
  decision is load-independent
  (:meth:`~repro.routing.base.RoutingFunction.load_independent`: DO
  always, MP/SM when the quadrant has a unique minimum-hop path — PR
  3's hop-dominance proof); for DO routing the entire suffix is
  load-independent and the delta is fully O(Δ). (2) Its search can't
  see the delta: the engine tracks the diverged edges — where the
  candidate ledger differs from the base at the same position, together
  with the base's bit-exact value there — and when every edge of the
  commodity's :meth:`~repro.routing.base.RoutingFunction.search_edges`
  (its cached quadrant edge set) either never diverged or carries the
  bit-identical load, its Dijkstra inputs equal the base's and so does
  the output. The latter shortcut rests on ``hop_scale`` being an
  application constant rather than a running-total function (see
  :mod:`repro.routing.shortest`). Dirty commodities, and clean ones
  whose quadrant genuinely sees changed loads, go through the real
  :meth:`~repro.routing.base.RoutingFunction.route_commodity` — and a
  re-route that lands back on the base paths adds the identical loads,
  so it does not widen the divergence.

* **Metrics resume from running partial sums.** The base records, per
  commodity boundary, cumulative bandwidth-weighted hop and switch/link
  dynamic-power sums (the load-dependent tail of the power estimate),
  plus each commodity's individual power addends. A candidate resumes
  the sums at the splice point and extends them per suffix commodity by
  re-adding the recorded addends (spliced) or freshly computed ones
  (re-routed) — the identical float additions a full walk performs in
  the identical order — so ``avg_hops`` and fast-mode power are
  bit-equal to from-scratch values. ``max_link_load`` is re-derived
  from the candidate ledger (a max over final per-edge values is
  order-independent, and the ledger itself is exact).

Every candidate routed here produces a new :class:`BaseRouting` record
(prefix segments, snapshots, term lists and :class:`RoutedCommodity`
objects aliased; suffix appended), so an accepted annealing move or a
swap round's winner immediately serves as the next base without
re-routing — the searches stay incremental across rounds.

**What the delta can and cannot save.** The irreducible Δ of a swap is
every commodity whose search inputs actually change, and on small dense
core graphs (every core carrying several flows) with congestion-coupled
MP/SM routing that is a large fraction of the Dijkstra-bearing
commodities — the measured ground truth is recorded with the benchmark
(``benchmarks/bench_mapping.py``, ``BENCH_mapping.json``). The engine
therefore shines where evaluations are load-independent (DO, unique-path
quadrants) or where the application is large and sparse enough that a
swap's ripple stays local — exactly the regime the ROADMAP's
production-scale ambitions live in.

Bit-identity is pinned two ways: the existing selection goldens
(``tests/golden/selection.json``) run through this engine unchanged, and
``tests/routing/test_incremental_properties.py`` asserts float-exact
equality of paths/loads/hops/cost against from-scratch
:func:`~repro.core.evaluate.evaluate_mapping` over random swap sequences
for all four routing functions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.coregraph import CoreGraph
from repro.core.evaluate import nominal_pitch_mm
from repro.physical.estimate import NetworkEstimator, PowerBreakdown
from repro.physical.switch_power import BITS_PER_MB
from repro.routing.base import (
    RoutedCommodity,
    RoutingFunction,
    RoutingResult,
    ledger_load_bound,
)
from repro.routing.loads import EdgeLoads, RecordingEdgeLoads
from repro.topology.base import SW, Topology

#: Base-routing records kept per engine. Small on purpose: a swap
#: round's base is re-hit for every candidate (so it stays most recently
#: used), and an annealing acceptance promotes the move just evaluated —
#: always the most recently stored record. A swap round's *winner* is
#: usually evicted by later candidates before the round ends; the next
#: round then pays one full ``route_base`` — amortized over the O(n²)
#: candidates it serves, which is why the cache stays this small instead
#: of retaining every candidate's ledger.
DEFAULT_RECORD_CACHE = 8

#: Target number of ledger snapshots per base record. Spacing trades the
#: snapshot dict copies (made once per base) against the roll-forward
#: replay a fork pays (at most one spacing's worth of logged additions —
#: plain dict arithmetic, no searches).
SNAPSHOT_TARGET = 8


def assignment_key(assignment: dict[int, int]) -> tuple:
    """Canonical hashable identity of an assignment."""
    return tuple(sorted(assignment.items()))


def swap_assignment(
    assignment: dict[int, int], s1: int, s2: int
) -> dict[int, int]:
    """Apply the slot swap (s1, s2) and return a new assignment.

    Preserves the input dict's key order (``dict(assignment)`` plus
    in-place reassignment), matching how the swap search and the
    annealer have always built candidates — key order feeds through to
    ``MappingEvaluation.assignment`` and the floorplanner.
    """
    swapped = dict(assignment)
    c1 = c2 = None
    for core, slot in assignment.items():
        if slot == s1:
            c1 = core
        elif slot == s2:
            c2 = core
    if c1 is not None:
        swapped[c1] = s2
    if c2 is not None:
        swapped[c2] = s1
    return swapped


@dataclass
class BaseRouting:
    """Checkpointed routing of one assignment, ready to serve as a base.

    ``segments[i]`` is commodity *i*'s logged ledger additions (see
    :class:`~repro.routing.loads.RecordingEdgeLoads`); ``snapshots``
    maps sparse commodity positions to :meth:`EdgeLoads.snapshot`
    checkpoints; ``power_terms[i]`` holds commodity *i*'s individual
    (switch, link) dynamic-power addends; ``pair_flags[i]`` caches the
    commodity's (load-independent, search-edges) routing properties for
    its slot pair. The ``cum_*`` arrays hold running metric sums with
    ``cum[i]`` = value after the first *i* commodities — valid only up
    to index ``cums_upto`` (candidate records alias their base's arrays
    and carry just their own final sums; :meth:`cums_at` re-derives any
    later boundary from the term lists, bit-exactly). Prefix entries of
    a candidate's record alias the base's — segments, snapshots, term
    lists and :class:`RoutedCommodity` objects are immutable once
    recorded.
    """

    assignment: dict[int, int]
    routed: list[RoutedCommodity]
    loads: EdgeLoads
    segments: list[list[tuple[tuple, float]]]
    snapshots: dict[int, tuple[dict, float]]
    power_terms: list[tuple[float, float]]
    pair_flags: list[tuple[bool, frozenset | None]]
    cum_hops: list[float]
    cum_switch_dyn: list[float]
    cum_link_dyn: list[float]
    cums_upto: int
    final_hops: float
    final_switch_dyn: float
    final_link_dyn: float
    _edge_index: dict | None = field(default=None, repr=False)

    def result(self) -> RoutingResult:
        return RoutingResult(routed=self.routed, loads=self.loads)

    def cums_at(self, j: int) -> tuple[float, float, float]:
        """(hops, switch, link) running sums at commodity boundary ``j``.

        Reads the shared prefix arrays when valid, otherwise re-folds
        the recorded per-commodity addends from the last valid boundary
        — the identical float sequence the live accumulation ran.
        """
        upto = self.cums_upto
        if j <= upto:
            return (
                self.cum_hops[j],
                self.cum_switch_dyn[j],
                self.cum_link_dyn[j],
            )
        hops = self.cum_hops[upto]
        sw = self.cum_switch_dyn[upto]
        link = self.cum_link_dyn[upto]
        for i in range(upto, j):
            rc = self.routed[i]
            hops += rc.hops * rc.commodity.value
            sw_t, link_t = self.power_terms[i]
            sw += sw_t
            link += link_t
        return hops, sw, link

    def edge_index(self) -> dict:
        """Lazily built ``edge -> [(segment index, value), ...]`` over
        all segments, in addition order — lets a delta re-derive this
        ledger's bit-exact per-edge value at any commodity boundary
        without replaying unrelated edges."""
        if self._edge_index is None:
            index: dict = {}
            for seg, ops in enumerate(self.segments):
                for edge, value in ops:
                    bucket = index.get(edge)
                    if bucket is None:
                        bucket = index[edge] = []
                    bucket.append((seg, value))
            self._edge_index = index
        return self._edge_index

    def value_at(self, edge: tuple, position: int) -> float:
        """This routing's bit-exact load on ``edge`` just *before*
        commodity ``position`` routed (fold of its recorded additions,
        in order — the identical float sequence the live ledger ran)."""
        value = 0.0
        for seg, v in self.edge_index().get(edge, ()):
            if seg >= position:
                break
            value += v
        return value


class IncrementalRoutingEngine:
    """Routes candidate assignments as deltas against base evaluations.

    One engine serves one (core graph, topology, routing function,
    estimator) context — exactly the scope of a
    :class:`~repro.core.memo.MemoizedMappingEvaluator`, which owns it.
    Assignments passed in are treated as immutable (the searches never
    mutate an evaluation's assignment dict).
    """

    def __init__(
        self,
        core_graph: CoreGraph,
        topology: Topology,
        routing: RoutingFunction,
        estimator: NetworkEstimator,
        max_records: int = DEFAULT_RECORD_CACHE,
    ):
        self.core_graph = core_graph
        self.topology = topology
        self.routing = routing
        self.estimator = estimator
        self.commodities = core_graph.commodities()
        self.pitch_mm = nominal_pitch_mm(core_graph)
        # Same left fold as RoutingResult.weighted_average_hops's
        # ``sum(...)`` over the routed list (identical float result).
        total = 0
        for c in self.commodities:
            total = total + c.value
        self.total_bandwidth = total
        #: core -> ascending commodity indices touching it. Dirty sets
        #: and first-dirty indices fall out of two lookups per swap.
        comms_of: dict[int, list[int]] = {}
        for i, c in enumerate(self.commodities):
            comms_of.setdefault(c.src, []).append(i)
            if c.dst != c.src:
                comms_of.setdefault(c.dst, []).append(i)
        self.commodities_of_core = comms_of
        n = len(self.commodities)
        self.snapshot_spacing = max(1, n // SNAPSHOT_TARGET)
        self.max_records = max_records
        self._records: OrderedDict[tuple, BaseRouting] = OrderedDict()
        # Physical tables pre-bound for the inlined per-commodity power
        # terms (the per-call estimator overhead measurably dominated
        # the delta path on small apps).
        self._entries, self._nominal = estimator._physical_tables(topology)
        self._link_energy = estimator.tech.link_energy_pj_per_bit_mm
        # Same value route_all computes, so base routes and from-scratch
        # evaluations use the identical hop_scale constants.
        self._load_bound = ledger_load_bound(topology, self.commodities)
        # (src, dst) -> (load_independent, search_edges): shared across
        # records; pair_flags lists index into the same tuples.
        self._pair_info: dict[tuple, tuple] = {}
        # (commodity idx, src, dst) -> (rc, power terms, ledger ops) for
        # load-independent pairs: their routing outcome is provably the
        # same under every ledger, so one real route_commodity call
        # serves every later evaluation that routes the commodity over
        # the same slots (e.g. all of a DO suffix, or the unique-quadrant
        # pairs a swap keeps proposing round after round).
        self._li_cache: dict[tuple, tuple] = {}
        self._last_base: dict[int, int] | None = None
        self._last_record: BaseRouting | None = None

    # ------------------------------------------------------------------
    # record management
    # ------------------------------------------------------------------
    def record_for(self, assignment: dict[int, int]) -> BaseRouting:
        """The checkpointed routing of ``assignment`` (cached, LRU).

        The swap search and the annealer re-pass the *same* base dict
        for every candidate of a round, so an identity fast path skips
        even the key construction.
        """
        if assignment is self._last_base:
            return self._last_record
        key = assignment_key(assignment)
        record = self._records.get(key)
        if record is None:
            record = self.route_base(assignment)
            self._store(key, record)
        else:
            self._records.move_to_end(key)
        self._last_base = assignment
        self._last_record = record
        return record

    def _store(self, key: tuple, record: BaseRouting) -> None:
        records = self._records
        records[key] = record
        records.move_to_end(key)
        while len(records) > self.max_records:
            records.popitem(last=False)

    def _pair(self, src: int, dst: int) -> tuple:
        info = self._pair_info.get((src, dst))
        if info is None:
            info = self._pair_info[(src, dst)] = (
                self.routing.load_independent(self.topology, src, dst),
                self.routing.search_edges(self.topology, src, dst),
            )
        return info

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route_base(self, assignment: dict[int, int]) -> BaseRouting:
        """Route every commodity from scratch, logged + checkpointed.

        Float-identical to ``routing.route_all`` (the recording ledger
        performs the same arithmetic and the same ``load_bound``), plus
        the addition logs, sparse snapshots, pair flags and per-commodity
        metric partial sums the delta path needs.
        """
        topology = self.topology
        routing = self.routing
        spacing = self.snapshot_spacing
        loads = RecordingEdgeLoads()
        loads.load_bound = self._load_bound
        snapshots: dict[int, tuple[dict, float]] = {}
        routed: list[RoutedCommodity] = []
        power_terms: list[tuple[float, float]] = []
        pair_flags: list[tuple[bool, frozenset | None]] = []
        cum_hops = [0.0]
        cum_sw = [0.0]
        cum_link = [0.0]
        for i, c in enumerate(self.commodities):
            if i % spacing == 0:
                snapshots[i] = loads.snapshot()
            loads.begin_segment()
            src = assignment[c.src]
            dst = assignment[c.dst]
            paths = routing.route_commodity(topology, src, dst, c.value, loads)
            rc = RoutedCommodity(
                commodity=c, src_slot=src, dst_slot=dst, paths=paths
            )
            routed.append(rc)
            terms = self._power_terms(rc)
            power_terms.append(terms)
            pair_flags.append(self._pair(src, dst))
            cum_hops.append(cum_hops[-1] + rc.hops * c.value)
            cum_sw.append(cum_sw[-1] + terms[0])
            cum_link.append(cum_link[-1] + terms[1])
        return BaseRouting(
            assignment=dict(assignment),
            routed=routed,
            loads=loads.plain(),
            segments=loads.segments,
            snapshots=snapshots,
            power_terms=power_terms,
            pair_flags=pair_flags,
            cum_hops=cum_hops,
            cum_switch_dyn=cum_sw,
            cum_link_dyn=cum_link,
            cums_upto=len(self.commodities),
            final_hops=cum_hops[-1],
            final_switch_dyn=cum_sw[-1],
            final_link_dyn=cum_link[-1],
        )

    def dirty_indices(self, base: BaseRouting, s1: int, s2: int) -> set[int]:
        """Commodity indices the swap (s1, s2) can affect directly."""
        comms_of = self.commodities_of_core
        dirty: set[int] = set()
        for core, slot in base.assignment.items():
            if slot == s1 or slot == s2:
                dirty.update(comms_of.get(core, ()))
        return dirty

    def first_dirty_index(self, base: BaseRouting, s1: int, s2: int) -> int:
        """Index of the earliest commodity the swap (s1, s2) can affect.

        Returns ``len(commodities)`` when neither swapped slot hosts a
        core with traffic — e.g. an occupied->free move of a core that
        appears in no commodity — meaning the entire routing splices
        through unchanged.
        """
        return min(
            self.dirty_indices(base, s1, s2), default=len(self.commodities)
        )

    def route_swap(self, base: BaseRouting, s1: int, s2: int) -> BaseRouting:
        """Route the swap (s1, s2) of ``base`` as a delta.

        Splices the clean prefix verbatim, restores the ledger
        checkpoint at the first dirty commodity (nearest snapshot +
        logged roll-forward), walks the suffix re-routing only
        commodities the delta can actually reach (dirty endpoints, or a
        search graph seeing genuinely changed loads), and returns a full
        :class:`BaseRouting` for the swapped assignment so it can serve
        as the next base.
        """
        commodities = self.commodities
        n = len(commodities)
        assignment = swap_assignment(base.assignment, s1, s2)
        dirty_idx = self.dirty_indices(base, s1, s2)
        k = min(dirty_idx, default=n)
        if k >= n:
            # No commodity touches the swapped cores: routing, loads and
            # metrics are all shared with the base outright.
            return BaseRouting(
                assignment=assignment,
                routed=base.routed,
                loads=base.loads,
                segments=base.segments,
                snapshots=base.snapshots,
                power_terms=base.power_terms,
                pair_flags=base.pair_flags,
                cum_hops=base.cum_hops,
                cum_switch_dyn=base.cum_switch_dyn,
                cum_link_dyn=base.cum_link_dyn,
                cums_upto=base.cums_upto,
                final_hops=base.final_hops,
                final_switch_dyn=base.final_switch_dyn,
                final_link_dyn=base.final_link_dyn,
            )

        topology = self.topology
        routing = self.routing
        base_routed = base.routed
        base_segments = base.segments
        base_terms = base.power_terms
        base_flags = base.pair_flags
        li_cache = self._li_cache

        # Restore the ledger at position k: nearest snapshot at/before
        # k, then roll the logged additions forward (bit-exact replay).
        # Candidates take no snapshots of their own — the rare candidate
        # promoted to a base simply replays a longer prefix on its first
        # fork, which is plain ledger arithmetic, not routing.
        p = max(pos for pos in base.snapshots if pos <= k)
        loads = RecordingEdgeLoads.resumed(
            base.snapshots[p], base_segments[:p], self._load_bound
        )
        for i in range(p, k):
            loads.replay_segment(base_segments[i])
        snapshots = {
            pos: snap for pos, snap in base.snapshots.items() if pos <= k
        }

        routed = base_routed[:k]
        power_terms = base_terms[:k]
        pair_flags = base_flags[:k]
        cums_upto = min(k, base.cums_upto)
        hops_sum, sw_sum, link_sum = base.cums_at(k)

        # Diverged edges -> the BASE ledger's bit-exact value at the
        # current position. An edge enters when a re-routed commodity's
        # additions actually changed (replays and same-path re-routes
        # add identical values to both ledgers, so they never widen the
        # set); the tracked base value then advances by the base's own
        # segment additions. A clean commodity whose search edges all
        # carry candidate loads equal to these base values sees
        # bit-identical Dijkstra inputs — same quadrant adjacency, same
        # loads, same constant scale — and is spliced without searching.
        base_vals: dict[tuple, float] = {}
        diverged = base_vals.keys()
        cand_get = loads.edge_map.get

        for i in range(k, n):
            c = commodities[i]
            base_rc = base_routed[i]
            base_seg = base_segments[i]
            cand_seg = None
            if i not in dirty_idx:
                # Clean endpoints: splice if the decision is load-
                # independent, or if every edge its search could read
                # carries the bit-identical base load.
                li, edges = flags = base_flags[i]
                if li or (
                    edges is not None
                    and (
                        diverged.isdisjoint(edges)
                        or (
                            all(
                                e not in base_vals
                                or cand_get(e, 0.0) == base_vals[e]
                                for e in edges
                            )
                            if len(edges) < len(base_vals)
                            else all(
                                e not in edges
                                or cand_get(e, 0.0) == base_vals[e]
                                for e in diverged
                            )
                        )
                    )
                ):
                    loads.replay_segment(base_seg)
                    routed.append(base_rc)
                    terms = base_terms[i]
                    power_terms.append(terms)
                    pair_flags.append(flags)
                    hops_sum += base_rc.hops * c.value
                    sw_sum += terms[0]
                    link_sum += terms[1]
                    if base_vals:
                        for edge, v in base_seg:
                            if edge in base_vals:
                                base_vals[edge] += v
                    continue
                src = base_rc.src_slot
                dst = base_rc.dst_slot
            else:
                src = assignment[c.src]
                dst = assignment[c.dst]
                flags = self._pair(src, dst)
                if flags[0]:
                    cached = li_cache.get((i, src, dst))
                    if cached is not None:
                        # Forced pair already routed once somewhere:
                        # splice its outcome, replay its ledger ops.
                        rc, terms, ops = cached
                        loads.replay_segment(ops)
                        routed.append(rc)
                        power_terms.append(terms)
                        pair_flags.append(flags)
                        hops_sum += rc.hops * c.value
                        sw_sum += terms[0]
                        link_sum += terms[1]
                        self._mark_diverged(base, base_vals, i, base_seg, ops)
                        continue
            # Re-route for real (and remember forced-pair outcomes).
            loads.begin_segment()
            paths = routing.route_commodity(topology, src, dst, c.value, loads)
            if (
                src == base_rc.src_slot
                and dst == base_rc.dst_slot
                and paths == base_rc.paths
            ):
                # Load-dependent search landed on the base paths: reuse
                # the object (and its cached hop count). The additions
                # match the base's too (same paths, same values), so the
                # ledger does NOT diverge here — the search ran, but its
                # outcome keeps downstream skips alive.
                rc = base_rc
                terms = base_terms[i]
            else:
                rc = RoutedCommodity(
                    commodity=c, src_slot=src, dst_slot=dst, paths=paths
                )
                terms = self._power_terms(rc)
                cand_seg = loads.segments[i]
            if flags[0]:
                li_cache[(i, src, dst)] = (rc, terms, loads.segments[i])
            routed.append(rc)
            power_terms.append(terms)
            pair_flags.append(flags)
            hops_sum += rc.hops * c.value
            sw_sum += terms[0]
            link_sum += terms[1]
            if cand_seg is not None:
                self._mark_diverged(base, base_vals, i, base_seg, cand_seg)
            elif base_vals:
                for edge, v in base_seg:
                    if edge in base_vals:
                        base_vals[edge] += v

        return BaseRouting(
            assignment=assignment,
            routed=routed,
            loads=loads.plain(),
            segments=loads.segments,
            snapshots=snapshots,
            power_terms=power_terms,
            pair_flags=pair_flags,
            cum_hops=base.cum_hops,
            cum_switch_dyn=base.cum_switch_dyn,
            cum_link_dyn=base.cum_link_dyn,
            cums_upto=cums_upto,
            final_hops=hops_sum,
            final_switch_dyn=sw_sum,
            final_link_dyn=link_sum,
        )

    def swap_record(
        self, base: BaseRouting, s1: int, s2: int, key: tuple | None = None
    ) -> BaseRouting:
        """:meth:`route_swap` + store the result for reuse as a base.

        ``key`` lets callers that already canonicalized the swapped
        assignment (the memo layer) skip a second sort.
        """
        record = self.route_swap(base, s1, s2)
        self._store(
            assignment_key(record.assignment) if key is None else key, record
        )
        return record

    @staticmethod
    def _mark_diverged(
        base: BaseRouting,
        base_vals: dict,
        i: int,
        base_seg: list,
        cand_seg: list,
    ) -> None:
        """Advance tracked base values past commodity ``i`` and register
        a re-route's divergence (its old and new edges)."""
        # Advance already-diverged edges by the base's own additions
        # (the identical float adds the base ledger performed).
        for edge, v in base_seg:
            if edge in base_vals:
                base_vals[edge] += v
        # Newly diverged edges enter with the base's bit-exact value at
        # position i+1, re-derived from its per-edge addition log.
        for edge, _ in base_seg:
            if edge not in base_vals:
                base_vals[edge] = base.value_at(edge, i + 1)
        for edge, _ in cand_seg:
            if edge not in base_vals:
                base_vals[edge] = base.value_at(edge, i + 1)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _power_terms(self, rc: RoutedCommodity) -> tuple[float, float]:
        """One commodity's (switch, link) dynamic-power contribution.

        The same per-commodity fold — starting at 0.0, identical inner
        expressions and order, tables pre-bound — that
        :meth:`~repro.physical.estimate.NetworkEstimator.
        dynamic_power_terms` performs, so splicing a cached contribution
        with one addition is bit-identical to the estimator's own
        accumulation. The contribution is a pure function of the
        commodity's paths.
        """
        rc_switch = 0.0
        rc_link = 0.0
        entries = self._entries
        nominal = self._nominal
        link_energy = self._link_energy
        pitch_mm = self.pitch_mm
        for path, bw in rc.paths:
            bits_per_s = bw * BITS_PER_MB
            for node in path:
                if node[0] == SW:
                    rc_switch += (
                        bits_per_s * entries[node].energy_pj_per_bit * 1e-9
                    )
            for edge in zip(path, path[1:]):
                length = nominal[edge] * pitch_mm
                rc_link += (
                    bits_per_s * (link_energy * length) * 1e-12 * 1e3
                )
        return rc_switch, rc_link

    def average_hops(self, record: BaseRouting) -> float:
        """``RoutingResult.weighted_average_hops`` from the partial sums."""
        if self.total_bandwidth <= 0:
            return 0.0
        return record.final_hops / self.total_bandwidth

    def fast_power(self, record: BaseRouting) -> PowerBreakdown:
        """Fast-mode (nominal-length) power from the partial sums.

        Only the load-dependent dynamic tail comes from the record; the
        static clock/leakage terms go through the estimator's own
        (topology-cached) path, exactly as a from-scratch evaluation.
        """
        breakdown = PowerBreakdown()
        breakdown.switch_dynamic = record.final_switch_dyn
        breakdown.link_dynamic = record.final_link_dyn
        breakdown.clock, breakdown.leakage = self.estimator.static_power_terms(
            self.topology,
            record.result(),
            lengths_mm=None,
            pitch_mm=self.pitch_mm,
        )
        return breakdown
