"""Minimum-path (MP) routing — Figure 5, steps 3-6.

For each commodity, a quadrant graph between source and destination is
formed (the minimum paths all lie inside it, Section 4.3) and Dijkstra
finds the minimum-hop path with the least accumulated traffic. The
commodity's full bandwidth then loads that path, steering subsequent
commodities elsewhere.

Running Dijkstra on the quadrant instead of the whole NoC graph is the
paper's main computational saving (Section 4.1); the ablation benchmark
``bench_ablation_quadrant`` measures it.
"""

from __future__ import annotations

from repro.routing.base import RoutingFunction
from repro.routing.loads import EdgeLoads
from repro.routing.shortest import (
    _dijkstra_min_hop,
    _unique_min_hop_path,
    hop_scale,
    min_hop_then_load,
    quadrant_search_entry,
    search_edge_set,
    topology_routing_view,
)
from repro.topology.base import Topology, term


class MinimumPathRouting(RoutingFunction):
    """Paper routing function "MP"."""

    code = "MP"
    name = "minimum-path"

    def __init__(self, use_quadrant: bool = True):
        #: Disable to measure the cost of whole-graph search (ablation).
        self.use_quadrant = use_quadrant

    def _search_graph(self, topology: Topology, src_slot, dst_slot):
        if self.use_quadrant:
            return topology.quadrant_subgraph(src_slot, dst_slot)
        return topology_routing_view(topology, src_slot, dst_slot)

    def load_independent(
        self, topology: Topology, src_slot: int, dst_slot: int
    ) -> bool:
        """True when the search graph has a single minimum-hop path: the
        hop-dominant weights provably pick it whatever the loads are
        (see :func:`~repro.routing.shortest._unique_min_hop_path`)."""
        if self.use_quadrant:
            unique, _, _ = quadrant_search_entry(topology, src_slot, dst_slot)
            return unique is not None
        graph = self._search_graph(topology, src_slot, dst_slot)
        return (
            _unique_min_hop_path(graph, term(src_slot), term(dst_slot))
            is not None
        )

    def route_commodity(
        self,
        topology: Topology,
        src_slot: int,
        dst_slot: int,
        value: float,
        loads: EdgeLoads,
    ) -> list[tuple[list, float]]:
        if not self.use_quadrant:
            graph = self._search_graph(topology, src_slot, dst_slot)
            path = min_hop_then_load(
                graph, term(src_slot), term(dst_slot), loads, value
            )
            loads.add_path(path, value)
            return [(path, value)]
        # Quadrant fast path: one cached lookup resolves either the
        # pair's forced minimum path or the Dijkstra search context.
        unique, succ, num_nodes = quadrant_search_entry(
            topology, src_slot, dst_slot
        )
        if unique is not None:
            path = list(unique)
        else:
            scale = hop_scale(loads, value, num_nodes)
            path = _dijkstra_min_hop(
                succ, term(src_slot), term(dst_slot), loads.edge_map, scale
            )
        loads.add_path(path, value)
        return [(path, value)]

    def search_edges(
        self, topology: Topology, src_slot: int, dst_slot: int
    ) -> frozenset | None:
        if self.use_quadrant:
            return search_edge_set(topology, src_slot, dst_slot)
        return None  # whole-graph search: any diverged edge may matter
