"""Registry of the paper's four routing functions."""

from __future__ import annotations

from repro.errors import UnsupportedRoutingError
from repro.routing.base import RoutingFunction
from repro.routing.dimension_ordered import DimensionOrderedRouting
from repro.routing.minimum_path import MinimumPathRouting
from repro.routing.split import SplitAllPathRouting, SplitMinPathRouting

ROUTING_CODES = ("DO", "MP", "SM", "SA")

_FACTORIES = {
    "DO": DimensionOrderedRouting,
    "MP": MinimumPathRouting,
    "SM": SplitMinPathRouting,
    "SA": SplitAllPathRouting,
}


def make_routing(code: str, **kwargs) -> RoutingFunction:
    """Instantiate a routing function by its paper code (DO/MP/SM/SA)."""
    try:
        return _FACTORIES[code.upper()](**kwargs)
    except KeyError:
        raise UnsupportedRoutingError(
            f"unknown routing function {code!r}; choose from {ROUTING_CODES}"
        ) from None


def all_routings() -> list[RoutingFunction]:
    """One instance of each routing function, in paper order."""
    return [make_routing(code) for code in ROUTING_CODES]
