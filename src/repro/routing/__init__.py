"""Routing functions: DO, MP, SM, SA (paper Sections 1 and 6.3)."""

from repro.routing.base import (
    RoutedCommodity,
    RoutingFunction,
    RoutingResult,
)
from repro.routing.dimension_ordered import DimensionOrderedRouting
from repro.routing.library import ROUTING_CODES, all_routings, make_routing
from repro.routing.loads import EdgeLoads
from repro.routing.minimum_path import MinimumPathRouting
from repro.routing.split import SplitAllPathRouting, SplitMinPathRouting

__all__ = [
    "EdgeLoads",
    "RoutedCommodity",
    "RoutingResult",
    "RoutingFunction",
    "DimensionOrderedRouting",
    "MinimumPathRouting",
    "SplitMinPathRouting",
    "SplitAllPathRouting",
    "ROUTING_CODES",
    "make_routing",
    "all_routings",
]
