"""Per-link traffic accounting.

The mapping algorithm (Figure 5) routes commodities one at a time and
"increases edge weights in Path by vl(dk)"; :class:`EdgeLoads` is that
running ledger. Loads are in MB/s, keyed by directed graph edge.
"""

from __future__ import annotations


class EdgeLoads:
    """Accumulated bandwidth per directed edge of a topology graph."""

    def __init__(self):
        self._loads: dict[tuple, float] = {}
        self._total = 0.0
        #: Optional precomputed upper bound on any single edge load over
        #: the whole routing run (set by ``route_all`` from the commodity
        #: list). When present, the hop-dominant Dijkstra scale is
        #: derived from it instead of the running ledger total, making
        #: the scale identical for every evaluation of the same
        #: application — the property the incremental engine's
        #: skip-unchanged-search proof rests on. ``None`` keeps the
        #: legacy running-total formula.
        self.load_bound: float | None = None

    def add(self, u, v, value: float) -> None:
        """Add ``value`` MB/s of traffic to edge ``u -> v``."""
        self._loads[(u, v)] = self._loads.get((u, v), 0.0) + value
        self._total += value

    def add_path(self, path: list, value: float) -> None:
        """Add ``value`` MB/s along every edge of a node path."""
        loads = self._loads
        total = self._total
        for edge in zip(path, path[1:]):
            loads[edge] = loads.get(edge, 0.0) + value
            total += value
        self._total = total

    def get(self, u, v) -> float:
        return self._loads.get((u, v), 0.0)

    def items(self):
        return self._loads.items()

    @property
    def edge_map(self) -> dict:
        """The live ``{(u, v): MB/s}`` ledger (read-only by convention);
        lets hot search loops bind one ``dict.get`` instead of calling
        :meth:`get` per edge relaxation."""
        return self._loads

    @property
    def total(self) -> float:
        """Sum of load over all edges (an upper bound on any single load)."""
        return self._total

    def max_load(self, edges=None, divisors: dict | None = None) -> float:
        """Largest per-edge load, optionally restricted to ``edges``.

        ``divisors`` — ``{edge: channel count}`` from
        :meth:`~repro.topology.base.Topology.channel_multiplicities` —
        divides each listed edge's load by its parallel-channel count,
        so the result is the worst *per-channel* load of a fabric with
        fat links. ``None`` (every channel single) keeps the fast path.
        """
        if edges is None:
            return max(self._loads.values(), default=0.0)
        loads_get = self._loads.get
        best = 0.0
        if divisors:
            divisors_get = divisors.get
            for e in edges:
                edge = tuple(e)
                load = loads_get(edge, 0.0) / divisors_get(edge, 1)
                if load > best:
                    best = load
            return best
        for e in edges:
            load = loads_get(tuple(e), 0.0)
            if load > best:
                best = load
        return best

    def copy(self) -> "EdgeLoads":
        clone = EdgeLoads()
        clone._loads = dict(self._loads)
        clone._total = self._total
        clone.load_bound = self.load_bound
        return clone

    def snapshot(self) -> tuple[dict, float]:
        """Checkpoint of the ledger: ``(edge-map copy, total)``.

        One dict copy; the incremental engine stores these at sparse
        positions along the commodity sequence and rolls forward from
        the nearest one instead of journaling every addition (per-edge
        undo journals measurably taxed the routing hot path).
        """
        return dict(self._loads), self._total

    def __len__(self) -> int:
        return len(self._loads)

    def __repr__(self) -> str:
        return f"EdgeLoads(edges={len(self._loads)}, max={self.max_load():.1f})"


class RecordingEdgeLoads(EdgeLoads):
    """An :class:`EdgeLoads` that logs every addition per segment.

    The incremental mapping engine (:mod:`repro.routing.incremental`)
    routes through this ledger, marking one *segment* per commodity
    (:meth:`begin_segment`). A segment is the flat ``(edge, value)``
    sequence of ledger additions the routing function performed, in
    application order.

    A logged segment is an exact redo: :meth:`replay_segment` re-applies
    the additions against any ledger state with the identical float
    operations (same values added to the same edges in the same order),
    which is how the engine both restores checkpoints (roll forward from
    a sparse :meth:`~EdgeLoads.snapshot`) and splices commodities whose
    routing decision is provably unchanged, without re-searching.
    """

    def __init__(self):
        super().__init__()
        #: Per-commodity addition logs, in routing order.
        self.segments: list[list[tuple[tuple, float]]] = []
        self._ops: list[tuple[tuple, float]] | None = None

    @classmethod
    def resumed(
        cls,
        snapshot: tuple[dict, float],
        segments: list[list[tuple[tuple, float]]],
        load_bound: float | None,
    ) -> "RecordingEdgeLoads":
        """A recording ledger starting from a checkpoint.

        ``snapshot`` is an :meth:`EdgeLoads.snapshot` (copied here, the
        stored checkpoint stays pristine); ``segments`` are the logs of
        the commodities *before* the checkpoint — aliased, not copied,
        since segments are immutable once recorded.
        """
        ledger, total = snapshot
        fork = cls()
        fork._loads = dict(ledger)
        fork._total = total
        fork.segments = list(segments)
        fork.load_bound = load_bound
        return fork

    def begin_segment(self) -> None:
        """Open a new log segment (one per routed commodity)."""
        self._ops = []
        self.segments.append(self._ops)

    def add(self, u, v, value: float) -> None:
        edge = (u, v)
        self._ops.append((edge, value))
        self._loads[edge] = self._loads.get(edge, 0.0) + value
        self._total += value

    def add_path(self, path: list, value: float) -> None:
        loads = self._loads
        ops = self._ops
        total = self._total
        for edge in zip(path, path[1:]):
            ops.append((edge, value))
            loads[edge] = loads.get(edge, 0.0) + value
            total += value
        self._total = total

    def replay_segment(self, ops: list[tuple[tuple, float]]) -> None:
        """Re-apply a recorded segment's additions as a new segment.

        Float-identical to re-running the routing calls that produced
        ``ops`` whenever the routing decision is provably unchanged: the
        same edges receive the same values in the same order, only the
        starting ledger differs. The segment list is aliased into this
        recording (segments are immutable once recorded).
        """
        self.segments.append(ops)
        self._ops = None  # no live segment: additions must replay whole
        loads = self._loads
        loads_get = loads.get
        total = self._total
        for edge, value in ops:
            loads[edge] = loads_get(edge, 0.0) + value
            total += value
        self._total = total

    def plain(self) -> EdgeLoads:
        """A log-free :class:`EdgeLoads` view sharing this ledger.

        Stored on evaluations so memo-cached results do not retain
        segment logs; the underlying dict is shared, not copied (ledgers
        are read-only once routing completes).
        """
        view = EdgeLoads()
        view._loads = self._loads
        view._total = self._total
        view.load_bound = self.load_bound
        return view
