"""Per-link traffic accounting.

The mapping algorithm (Figure 5) routes commodities one at a time and
"increases edge weights in Path by vl(dk)"; :class:`EdgeLoads` is that
running ledger. Loads are in MB/s, keyed by directed graph edge.
"""

from __future__ import annotations


class EdgeLoads:
    """Accumulated bandwidth per directed edge of a topology graph."""

    def __init__(self):
        self._loads: dict[tuple, float] = {}
        self._total = 0.0

    def add(self, u, v, value: float) -> None:
        """Add ``value`` MB/s of traffic to edge ``u -> v``."""
        self._loads[(u, v)] = self._loads.get((u, v), 0.0) + value
        self._total += value

    def add_path(self, path: list, value: float) -> None:
        """Add ``value`` MB/s along every edge of a node path."""
        loads = self._loads
        total = self._total
        for edge in zip(path, path[1:]):
            loads[edge] = loads.get(edge, 0.0) + value
            total += value
        self._total = total

    def get(self, u, v) -> float:
        return self._loads.get((u, v), 0.0)

    def items(self):
        return self._loads.items()

    @property
    def edge_map(self) -> dict:
        """The live ``{(u, v): MB/s}`` ledger (read-only by convention);
        lets hot search loops bind one ``dict.get`` instead of calling
        :meth:`get` per edge relaxation."""
        return self._loads

    @property
    def total(self) -> float:
        """Sum of load over all edges (an upper bound on any single load)."""
        return self._total

    def max_load(self, edges=None) -> float:
        """Largest per-edge load, optionally restricted to ``edges``."""
        if edges is None:
            return max(self._loads.values(), default=0.0)
        loads_get = self._loads.get
        best = 0.0
        for e in edges:
            load = loads_get(tuple(e), 0.0)
            if load > best:
                best = load
        return best

    def copy(self) -> "EdgeLoads":
        clone = EdgeLoads()
        clone._loads = dict(self._loads)
        clone._total = self._total
        return clone

    def __len__(self) -> int:
        return len(self._loads)

    def __repr__(self) -> str:
        return f"EdgeLoads(edges={len(self._loads)}, max={self.max_load():.1f})"
