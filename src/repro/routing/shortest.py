"""Load-aware shortest-path search used by MP/SM/SA routing.

Two weightings:

* :func:`min_hop_then_load` — hop count dominates; accumulated load only
  breaks ties. The load term of a whole path is scaled to stay below 1,
  so a path can never trade an extra hop for less load. This implements
  Figure 5's Dijkstra-on-quadrant with "edge weights increased by vl(dk)".
* :func:`load_then_hops` — load dominates; a tiny per-hop epsilon keeps
  zero-load searches minimal. Used by split-across-all-paths routing,
  which may leave the quadrant to avoid congestion.

Both run a faithful in-module port of networkx's Dijkstra
(:func:`_dijkstra_path`) over a cached adjacency snapshot of the search
graph: identical float accumulation, identical heap tie-breaking (push
counter) and identical strict-improvement predecessor updates, so the
returned paths are bit-for-bit the ones ``nx.dijkstra_path`` produced —
without the per-call dispatch, argument mapping and filtered-view
iteration overhead that dominated the mapper's profile. The adjacency
snapshot per graph object is safe because topology graphs (and their
cached quadrant views) are immutable after construction.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import islice
from weakref import WeakKeyDictionary

import networkx as nx

from repro.errors import UnroutableError
from repro.routing.loads import EdgeLoads
from repro.topology.base import is_switch

#: graph object -> (successor lists in ``G._adj`` order, node count).
#: Values hold only node tuples, never the key graph, so weak keying
#: actually collects entries when a graph dies.
_succ_cache: WeakKeyDictionary = WeakKeyDictionary()

#: graph object -> {(src, dst): unique min-hop path or None}.
_single_path_cache: WeakKeyDictionary = WeakKeyDictionary()


def _successors(graph: nx.DiGraph) -> tuple[dict, int]:
    """Snapshot ``graph``'s adjacency as plain lists (cached).

    Neighbor order matches ``graph._adj`` iteration exactly — that order
    decides Dijkstra's heap tie-breaking, so it must be preserved. For
    induced-subgraph views (``G.subgraph(nodes)``) the snapshot is built
    from the parent's adjacency filtered by the node set — the same
    order the view's FilterAdjacency yields, minus its per-item wrapper
    overhead.
    """
    cached = _succ_cache.get(graph)
    if cached is None:
        node_filter = getattr(graph, "_NODE_OK", None)
        keep_nodes = getattr(node_filter, "nodes", None)
        parent = getattr(graph, "_graph", None)
        if keep_nodes is not None and parent is not None:
            parent_adj = parent._adj
            succ = {
                v: [u for u in parent_adj[v] if u in keep_nodes]
                for v in parent_adj
                if v in keep_nodes
            }
        else:
            adj = graph._adj
            succ = {v: list(adj[v]) for v in adj}
        cached = (succ, len(succ))
        _succ_cache[graph] = cached
    return cached


def _unique_min_hop_path(graph: nx.DiGraph, src, dst) -> list | None:
    """The single minimum-hop ``src -> dst`` path, or ``None`` if the
    pair has path diversity.

    Justification for the shortcut: :func:`min_hop_then_load` weights
    every edge ``1.0 + load/scale`` with the load terms of any whole
    path summing strictly below 1, so an ``h``-hop path always
    outweighs an ``(h+1)``-hop one — Dijkstra's result is provably a
    minimum-hop path, and when only one exists the loads cannot change
    the answer. The cache is per (graph, src, dst); diverse pairs store
    ``None`` and take the full load-aware search.
    """
    per_graph = _single_path_cache.get(graph)
    if per_graph is None:
        per_graph = {}
        _single_path_cache[graph] = per_graph
    key = (src, dst)
    try:
        return per_graph[key]
    except KeyError:
        pass
    try:
        first_two = list(islice(nx.all_shortest_paths(graph, src, dst), 2))
    except nx.NetworkXNoPath:
        raise UnroutableError(
            f"no route from {src} to {dst}: endpoints are partitioned"
        ) from None
    path = first_two[0] if len(first_two) == 1 else None
    per_graph[key] = path
    return path


def routing_view(graph: nx.DiGraph, src, dst) -> nx.DiGraph:
    """Subgraph containing all switches but only the endpoint terminals.

    Routes must never pass *through* a third core's terminal; restricting
    the search graph enforces that structurally.
    """

    def keep(node, _src=src, _dst=dst):
        return is_switch(node) or node == _src or node == _dst

    return nx.subgraph_view(graph, filter_node=keep)


def topology_routing_view(topology, src_slot: int, dst_slot: int):
    """A per-(src, dst) :func:`routing_view` cached on the topology.

    Cached on the topology object (like its quadrant views) rather than
    in a weak-keyed map: subgraph views strongly reference their parent
    graph, so a WeakKeyDictionary keyed by graph would never collect
    its entries. The cache dies with the topology and is dropped by
    ``Topology.__getstate__`` when jobs pickle to worker processes.
    """
    from repro.topology.base import term

    cache = topology.__dict__.setdefault("_routing_view_cache", {})
    key = (src_slot, dst_slot)
    view = cache.get(key)
    if view is None:
        view = routing_view(
            topology.graph, term(src_slot), term(dst_slot)
        )
        cache[key] = view
    return view


def _reconstruct(dist: dict, pred: dict, target) -> list:
    if target not in dist:
        raise UnroutableError(
            f"no route to {target}: endpoints are partitioned"
        )
    path = [target]
    while (prev := pred.get(path[-1])) is not None:
        path.append(prev)
    path.reverse()
    return path


def _dijkstra_min_hop(
    succ: dict, source, target, loads_map: dict, scale: float
) -> list:
    """Faithful port of ``networkx._dijkstra_multisource`` with the
    hop-dominant edge weight ``1.0 + load / scale`` inlined.

    Mirrors the original exactly where it matters for bit-identity:
    ``seen[source] = 0`` (int), the edge cost computed *before* being
    added to the node distance (same float rounding), a monotonically
    increasing push counter as the heap tie-break, predecessor
    overwritten only on strict improvement, and path reconstruction by
    walking first predecessors from the target.
    """
    dist = {}
    seen = {source: 0}
    pred = {}
    loads_get = loads_map.get
    fringe = [(0, 0, source)]
    counter = 1
    while fringe:
        dist_v, _, v = heappop(fringe)
        if v in dist:
            continue  # already searched this node
        dist[v] = dist_v
        if v == target:
            break
        for u in succ[v]:
            vu_dist = dist_v + (1.0 + loads_get((v, u), 0.0) / scale)
            if u in dist:
                continue
            if u not in seen or vu_dist < seen[u]:
                seen[u] = vu_dist
                heappush(fringe, (vu_dist, counter, u))
                counter += 1
                pred[u] = v
    return _reconstruct(dist, pred, target)


def _dijkstra_least_load(
    succ: dict, source, target, loads_map: dict, eps: float
) -> list:
    """As :func:`_dijkstra_min_hop` but with the load-dominant weight
    ``load + eps`` inlined (split-across-all-paths routing)."""
    dist = {}
    seen = {source: 0}
    pred = {}
    loads_get = loads_map.get
    fringe = [(0, 0, source)]
    counter = 1
    while fringe:
        dist_v, _, v = heappop(fringe)
        if v in dist:
            continue
        dist[v] = dist_v
        if v == target:
            break
        for u in succ[v]:
            vu_dist = dist_v + (loads_get((v, u), 0.0) + eps)
            if u in dist:
                continue
            if u not in seen or vu_dist < seen[u]:
                seen[u] = vu_dist
                heappush(fringe, (vu_dist, counter, u))
                counter += 1
                pred[u] = v
    return _reconstruct(dist, pred, target)


def hop_scale(loads: EdgeLoads, value: float, num_nodes: int) -> float:
    """Scale keeping a whole path's load terms strictly below one hop.

    With a precomputed :attr:`~repro.routing.loads.EdgeLoads.load_bound`
    (set by ``route_all`` from the commodity list) the scale is a
    constant of the (application, topology, slot pair) — every single
    edge load is bounded by the final ledger total, which the bound
    dominates, so hop dominance holds throughout the run. A
    history-independent scale means two evaluations that agree on the
    loads inside a commodity's search graph run the bit-identical
    Dijkstra even when their ledgers differ elsewhere — the property the
    incremental engine's skip-unchanged-search shortcut rests on.
    Without a bound, fall back to the legacy running-total formula
    (direct callers outside ``route_all``).
    """
    bound = loads.load_bound
    if bound is not None:
        return max(1.0, bound * (num_nodes + 1))
    return max(1.0, (loads.total + value) * (num_nodes + 1))


def search_edge_set(topology, src_slot: int, dst_slot: int) -> frozenset | None:
    """All directed edges the quadrant search for a slot pair can read.

    The incremental engine skips re-searching a clean commodity when
    none of these edges diverged from the base ledger. Returns ``None``
    when the quadrant is the whole topology graph (trivial quadrant,
    e.g. Clos) — meaning "any diverged edge may matter, never skip".
    Cached on the topology per slot pair, like the quadrant views.
    """
    cache = topology.__dict__.setdefault("_search_edges_cache", {})
    key = (src_slot, dst_slot)
    entry = cache.get(key, False)
    if entry is False:
        graph = topology.quadrant_subgraph(src_slot, dst_slot)
        if graph is topology.graph:
            entry = None
        else:
            entry = frozenset(graph.edges())
        cache[key] = entry
    return entry


def quadrant_search_entry(
    topology, src_slot: int, dst_slot: int
) -> tuple[list | None, dict | None, int]:
    """One-lookup search context for hop-dominant quadrant routing.

    Returns ``(unique_path, succ, num_nodes)``: either the pair's single
    minimum-hop path (``succ`` is ``None``) or the quadrant's adjacency
    snapshot for the load-aware Dijkstra. Cached on the topology object
    keyed by slot pair, so the per-commodity hot path of MP/SM routing
    costs one dict lookup instead of quadrant fetch + weak-cache walks.
    """
    cache = topology.__dict__.setdefault("_mp_search_cache", {})
    key = (src_slot, dst_slot)
    entry = cache.get(key)
    if entry is None:
        from repro.topology.base import term

        graph = topology.quadrant_subgraph(src_slot, dst_slot)
        unique = _unique_min_hop_path(
            graph, term(src_slot), term(dst_slot)
        )
        if unique is not None:
            entry = (unique, None, 0)
        else:
            succ, num_nodes = _successors(graph)
            entry = (None, succ, num_nodes)
        cache[key] = entry
    return entry


def min_hop_then_load(
    graph: nx.DiGraph, src, dst, loads: EdgeLoads, value: float
) -> list:
    """Minimum-hop path, breaking ties by least accumulated traffic."""
    single = _unique_min_hop_path(graph, src, dst)
    if single is not None:
        return list(single)
    succ, num_nodes = _successors(graph)
    # Scale so a full path's load terms sum < 1 (see hop_scale).
    scale = hop_scale(loads, value, num_nodes)
    return _dijkstra_min_hop(succ, src, dst, loads.edge_map, scale)


def load_then_hops(
    graph: nx.DiGraph, src, dst, loads: EdgeLoads, value: float
) -> list:
    """Least-loaded path; hops only matter between equally loaded paths."""
    succ, _ = _successors(graph)
    eps = max(1e-9, (loads.total + value) * 1e-6)
    return _dijkstra_least_load(succ, src, dst, loads.edge_map, eps)
