"""Load-aware shortest-path search used by MP/SM/SA routing.

Two weightings:

* :func:`min_hop_then_load` — hop count dominates; accumulated load only
  breaks ties. The load term of a whole path is scaled to stay below 1,
  so a path can never trade an extra hop for less load. This implements
  Figure 5's Dijkstra-on-quadrant with "edge weights increased by vl(dk)".
* :func:`load_then_hops` — load dominates; a tiny per-hop epsilon keeps
  zero-load searches minimal. Used by split-across-all-paths routing,
  which may leave the quadrant to avoid congestion.
"""

from __future__ import annotations

import networkx as nx

from repro.routing.loads import EdgeLoads
from repro.topology.base import is_switch


def routing_view(graph: nx.DiGraph, src, dst) -> nx.DiGraph:
    """Subgraph containing all switches but only the endpoint terminals.

    Routes must never pass *through* a third core's terminal; restricting
    the search graph enforces that structurally.
    """

    def keep(node):
        return is_switch(node) or node == src or node == dst

    return nx.subgraph_view(graph, filter_node=keep)


def min_hop_then_load(
    graph: nx.DiGraph, src, dst, loads: EdgeLoads, value: float
) -> list:
    """Minimum-hop path, breaking ties by least accumulated traffic."""
    # Any single edge load is bounded by the ledger total plus the value
    # currently being routed; scale so a full path's load terms sum < 1.
    scale = max(1.0, (loads.total + value) * (graph.number_of_nodes() + 1))

    def weight(u, v, _d):
        return 1.0 + loads.get(u, v) / scale

    return nx.dijkstra_path(graph, src, dst, weight=weight)


def load_then_hops(
    graph: nx.DiGraph, src, dst, loads: EdgeLoads, value: float
) -> list:
    """Least-loaded path; hops only matter between equally loaded paths."""
    eps = max(1e-9, (loads.total + value) * 1e-6)

    def weight(u, v, _d):
        return loads.get(u, v) + eps

    return nx.dijkstra_path(graph, src, dst, weight=weight)
