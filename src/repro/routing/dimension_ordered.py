"""Dimension-ordered (DO) routing.

Fully deterministic: each commodity follows the single path produced by
resolving topology dimensions in a fixed order (XY on mesh/torus, e-cube
on hypercube, destination-tag on a butterfly). No load awareness — which
is why DO needs the largest link bandwidth in Figure 9(a).

Topologies without a dimension order (e.g. Clos) raise
:class:`~repro.errors.UnsupportedRoutingError`; the selector reports the
combination as unsupported.
"""

from __future__ import annotations

from repro.routing.base import RoutingFunction
from repro.routing.loads import EdgeLoads
from repro.topology.base import Topology


class DimensionOrderedRouting(RoutingFunction):
    """Paper routing function "DO"."""

    code = "DO"
    name = "dimension-ordered"

    def load_independent(
        self, topology: Topology, src_slot: int, dst_slot: int
    ) -> bool:
        """Always: the dimension-ordered path ignores the ledger, so the
        incremental engine's delta is fully O(Δ) for DO routing."""
        return True

    def route_commodity(
        self,
        topology: Topology,
        src_slot: int,
        dst_slot: int,
        value: float,
        loads: EdgeLoads,
    ) -> list[tuple[list, float]]:
        path = topology.dor_path(src_slot, dst_slot)
        loads.add_path(path, value)
        return [(path, value)]
