"""Traffic-splitting routing functions (SM and SA).

A commodity is divided into equal chunks routed sequentially; each chunk's
traffic is recorded before the next chunk searches, so chunks naturally
fan out over parallel paths. Chunks that end up on the same path are
merged in the result.

* ``SM`` (split across minimum paths) searches the quadrant graph with
  hop-dominant weights: chunks spread over the *minimum* paths only.
* ``SA`` (split across all paths) searches the whole topology graph with
  load-dominant weights: chunks may take longer detours to flatten load.

With these two, MPEG4's 910 MB/s SDRAM flow fits under 500 MB/s links
(455 MB/s per half), which is why only split routing maps MPEG4 in
Section 6.1 / Figure 9(a).
"""

from __future__ import annotations

from repro.routing.base import RoutingFunction
from repro.routing.loads import EdgeLoads
from repro.routing.shortest import (
    _dijkstra_min_hop,
    hop_scale,
    load_then_hops,
    quadrant_search_entry,
    search_edge_set,
    topology_routing_view,
)
from repro.topology.base import Topology, term

#: Default number of chunks a commodity is split into.
DEFAULT_CHUNKS = 4


def _merge(paths: list[tuple[list, float]]) -> list[tuple[list, float]]:
    """Merge duplicate paths, preserving first-seen order."""
    merged: dict[tuple, list] = {}
    order = []
    for path, bw in paths:
        key = tuple(path)
        if key not in merged:
            merged[key] = [path, 0.0]
            order.append(key)
        merged[key][1] += bw
    return [(merged[k][0], merged[k][1]) for k in order]


class _SplitRoutingBase(RoutingFunction):
    """Common chunked-routing driver for SM and SA."""

    def __init__(self, chunks: int = DEFAULT_CHUNKS):
        if chunks < 1:
            raise ValueError("chunks must be >= 1")
        self.chunks = chunks

    def _search_graph(self, topology: Topology, src_slot: int, dst_slot: int):
        raise NotImplementedError

    def _chunk_path(self, graph, src, dst, loads, value):
        raise NotImplementedError

    def route_commodity(
        self,
        topology: Topology,
        src_slot: int,
        dst_slot: int,
        value: float,
        loads: EdgeLoads,
    ) -> list[tuple[list, float]]:
        graph = self._search_graph(topology, src_slot, dst_slot)
        src, dst = term(src_slot), term(dst_slot)
        chunk_bw = value / self.chunks
        paths = []
        for _ in range(self.chunks):
            path = self._chunk_path(graph, src, dst, loads, chunk_bw)
            loads.add_path(path, chunk_bw)
            paths.append((path, chunk_bw))
        return _merge(paths)


class SplitMinPathRouting(_SplitRoutingBase):
    """Paper routing function "SM": split across minimum paths."""

    code = "SM"
    name = "split-traffic-minimum-paths"

    def load_independent(
        self, topology: Topology, src_slot: int, dst_slot: int
    ) -> bool:
        """True when the quadrant has a single minimum-hop path: SM's
        hop-dominant chunk searches are all forced onto it, so the whole
        commodity routes identically under any ledger."""
        unique, _, _ = quadrant_search_entry(topology, src_slot, dst_slot)
        return unique is not None

    def route_commodity(
        self,
        topology: Topology,
        src_slot: int,
        dst_slot: int,
        value: float,
        loads: EdgeLoads,
    ) -> list[tuple[list, float]]:
        # Hop count dominates SM's weight, so a quadrant with a single
        # minimum-hop path forces every chunk onto it: record each
        # chunk's traffic separately (the ledger accumulates exactly as
        # in the per-chunk search) without re-searching.
        unique, succ, num_nodes = quadrant_search_entry(
            topology, src_slot, dst_slot
        )
        chunk_bw = value / self.chunks
        if unique is not None:
            path = list(unique)
            for _ in range(self.chunks):
                loads.add_path(path, chunk_bw)
            return _merge([(path, chunk_bw)] * self.chunks)
        src, dst = term(src_slot), term(dst_slot)
        loads_map = loads.edge_map
        paths = []
        for _ in range(self.chunks):
            scale = hop_scale(loads, chunk_bw, num_nodes)
            path = _dijkstra_min_hop(succ, src, dst, loads_map, scale)
            loads.add_path(path, chunk_bw)
            paths.append((path, chunk_bw))
        return _merge(paths)

    def search_edges(
        self, topology: Topology, src_slot: int, dst_slot: int
    ) -> frozenset | None:
        return search_edge_set(topology, src_slot, dst_slot)


class SplitAllPathRouting(_SplitRoutingBase):
    """Paper routing function "SA": split across all paths."""

    code = "SA"
    name = "split-traffic-all-paths"

    def __init__(self, chunks: int = 2 * DEFAULT_CHUNKS):
        super().__init__(chunks)

    def _search_graph(self, topology, src_slot, dst_slot):
        return topology_routing_view(topology, src_slot, dst_slot)

    def _chunk_path(self, graph, src, dst, loads, value):
        return load_then_hops(graph, src, dst, loads, value)
