"""Link (wire) power model (paper Section 5, wiring parameters from [23]).

Links dissipate dynamic power proportional to traffic x length (wire +
repeater capacitance switching) plus a small repeater leakage per mm.
The paper's observation that "link power dissipation is much lower than
the switch power dissipation" holds here: ≈0.58 pJ/bit/mm versus ≈4 pJ
per switch traversal at 0.1 µm.
"""

from __future__ import annotations

from repro.physical.switch_power import BITS_PER_MB
from repro.physical.technology import TECH_100NM, Technology


def link_dynamic_power_mw(
    traffic_mb_s: float, length_mm: float, tech: Technology = TECH_100NM
) -> float:
    """Dynamic power of one link segment."""
    bits_per_s = traffic_mb_s * BITS_PER_MB
    energy_pj = tech.link_energy_pj_per_bit_mm * length_mm
    return bits_per_s * energy_pj * 1e-12 * 1e3


def link_leakage_power_mw(
    length_mm: float, tech: Technology = TECH_100NM
) -> float:
    """Repeater leakage of one link segment."""
    return tech.link_leakage_mw_per_mm * length_mm
