"""Area-power libraries (the paper's "Area Lib" / "Pow Lib", Figure 4).

"The area-power models are used to generate area-power libraries for
various switch configurations for different technology parameters."

:class:`AreaPowerLibrary` memoizes the analytical models per switch
configuration and can emit the full library table for documentation or
the CLI (``sunmap library``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.switch_area import SwitchConfig, switch_area_mm2
from repro.physical.switch_power import (
    switch_energy_pj_per_bit,
    switch_static_power_mw,
)
from repro.physical.technology import TECH_100NM, Technology


@dataclass(frozen=True)
class LibraryEntry:
    """Area/power characterization of one switch configuration."""

    config: SwitchConfig
    area_mm2: float
    energy_pj_per_bit: float
    static_power_mw: float


class AreaPowerLibrary:
    """Per-technology cache of switch characterizations."""

    def __init__(self, tech: Technology = TECH_100NM):
        self.tech = tech
        self._entries: dict[SwitchConfig, LibraryEntry] = {}

    def entry(self, cfg: SwitchConfig) -> LibraryEntry:
        """Characterize (and cache) one switch configuration."""
        cached = self._entries.get(cfg)
        if cached is None:
            cached = LibraryEntry(
                config=cfg,
                area_mm2=switch_area_mm2(cfg, self.tech),
                energy_pj_per_bit=switch_energy_pj_per_bit(cfg, self.tech),
                static_power_mw=switch_static_power_mw(cfg, self.tech),
            )
            self._entries[cfg] = cached
        return cached

    def table(self, max_radix: int = 8) -> list[LibraryEntry]:
        """Library entries for all square switches up to ``max_radix``."""
        return [
            self.entry(SwitchConfig(r, r)) for r in range(2, max_radix + 1)
        ]

    def __repr__(self) -> str:
        return f"AreaPowerLibrary({self.tech.name}, cached={len(self._entries)})"
