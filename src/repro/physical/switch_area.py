"""Analytical switch area model (paper Section 5).

"The area calculations include the crossbar area, buffer area, logic
(including control) area. The models take into account the nuances of
individual switch configurations and include fine granularity of details
(like accounting for pipeline registers, cross points, etc)."

The crossbar is modeled as a wire matrix: ``n_in * W`` horizontal tracks
crossing ``n_out * W`` vertical tracks at the technology's wire pitch, so
its area grows with the *product* of port counts — the reason a torus
(all 5x5 switches) pays more area than a mesh (3x3 corners, 4x4 edges).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.technology import TECH_100NM, Technology


@dataclass(frozen=True)
class SwitchConfig:
    """One switch configuration in the area/power library.

    Port counts include the core (network-interface) ports; a mesh
    interior switch is ``SwitchConfig(5, 5)``.
    """

    n_in: int
    n_out: int
    flit_width_bits: int = TECH_100NM.flit_width_bits
    buffer_depth_flits: int = TECH_100NM.buffer_depth_flits

    def __post_init__(self):
        if self.n_in < 1 or self.n_out < 1:
            raise ValueError("switch needs at least one port per side")
        if self.flit_width_bits < 1 or self.buffer_depth_flits < 1:
            raise ValueError("flit width and buffer depth must be positive")

    @property
    def radix(self) -> int:
        return max(self.n_in, self.n_out)


def crossbar_area_um2(cfg: SwitchConfig, tech: Technology = TECH_100NM) -> float:
    """Wire-matrix crossbar area."""
    horizontal = cfg.n_in * cfg.flit_width_bits * tech.wire_pitch_um
    vertical = cfg.n_out * cfg.flit_width_bits * tech.wire_pitch_um
    return horizontal * vertical


def buffer_area_um2(cfg: SwitchConfig, tech: Technology = TECH_100NM) -> float:
    """Input FIFO area: depth x width SRAM per input port."""
    bits = cfg.n_in * cfg.buffer_depth_flits * cfg.flit_width_bits
    return bits * tech.sram_bit_area_um2


def logic_area_um2(cfg: SwitchConfig, tech: Technology = TECH_100NM) -> float:
    """Arbitration, flow control, pipeline registers and per-switch misc."""
    arbiter = tech.arbiter_area_per_portpair_um2 * cfg.n_in * cfg.n_out
    ports = tech.port_logic_area_um2 * (cfg.n_in + cfg.n_out)
    return arbiter + ports + tech.switch_overhead_um2


def switch_area_mm2(cfg: SwitchConfig, tech: Technology = TECH_100NM) -> float:
    """Total switch silicon area in mm²."""
    total_um2 = (
        crossbar_area_um2(cfg, tech)
        + buffer_area_um2(cfg, tech)
        + logic_area_um2(cfg, tech)
    )
    return total_um2 * 1e-6


def channel_area_mm2(
    length_mm: float,
    flit_width_bits: int | None = None,
    tech: Technology = TECH_100NM,
) -> float:
    """Wiring area of one unidirectional inter-switch channel.

    ``W`` parallel wires at the technology pitch over ``length_mm``; used
    to charge long torus wrap-arounds and butterfly stage links against
    the design area.
    """
    width_bits = flit_width_bits or tech.flit_width_bits
    return length_mm * width_bits * tech.wire_pitch_um * 1e-3
