"""ORION-style switch power model (paper Section 5, [22]).

Dynamic energy is charged *per bit traversing the switch*: one buffer
write, one buffer read, a crossbar traversal whose cost grows with port
count (longer crossbar wires), and arbitration. On top of the
traffic-proportional part, each instantiated switch burns clock power
(proportional to its port count) and leakage (proportional to its area)
regardless of load.
"""

from __future__ import annotations

from repro.physical.switch_area import SwitchConfig, switch_area_mm2
from repro.physical.technology import TECH_100NM, Technology

#: Conversion: 1 MB/s of traffic = 8e6 bits/s.
BITS_PER_MB = 8e6


def switch_energy_pj_per_bit(
    cfg: SwitchConfig, tech: Technology = TECH_100NM
) -> float:
    """Dynamic energy for one bit to cross one switch."""
    effective_ports = (cfg.n_in + cfg.n_out) / 2.0
    return (
        tech.e_buffer_write_pj
        + tech.e_buffer_read_pj
        + tech.e_xbar_base_pj
        + tech.e_xbar_per_port_pj * effective_ports
        + tech.e_arb_per_port_pj * effective_ports
    )


def switch_dynamic_power_mw(
    cfg: SwitchConfig, traffic_mb_s: float, tech: Technology = TECH_100NM
) -> float:
    """Dynamic power of a switch carrying ``traffic_mb_s`` of traffic."""
    bits_per_s = traffic_mb_s * BITS_PER_MB
    return bits_per_s * switch_energy_pj_per_bit(cfg, tech) * 1e-12 * 1e3


def switch_clock_power_mw(cfg: SwitchConfig, tech: Technology = TECH_100NM) -> float:
    """Clock-tree and idle control power (load independent)."""
    return tech.clock_power_mw_per_port * (cfg.n_in + cfg.n_out) / 2.0


def switch_leakage_power_mw(
    cfg: SwitchConfig, tech: Technology = TECH_100NM
) -> float:
    """Leakage power, proportional to switch area."""
    return tech.leakage_mw_per_mm2 * switch_area_mm2(cfg, tech)


def switch_static_power_mw(cfg: SwitchConfig, tech: Technology = TECH_100NM) -> float:
    """Total load-independent power of one instantiated switch."""
    return switch_clock_power_mw(cfg, tech) + switch_leakage_power_mw(cfg, tech)
