"""Network-level area and power estimation.

Bridges the per-switch analytical models to whole-design numbers: given a
topology, a routing result (which switch/link carries how much traffic)
and physical link lengths, produce the "des area" / "des pow" columns of
the paper's tables (Figures 3(d), 6(c,d), 7(b), 8(c,d)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.library import AreaPowerLibrary
from repro.physical.link_power import link_leakage_power_mw
from repro.physical.switch_area import SwitchConfig, channel_area_mm2
from repro.physical.switch_power import BITS_PER_MB
from repro.physical.technology import TECH_100NM, Technology
from repro.routing.base import RoutingResult
from repro.topology.base import SW, Topology, is_switch


@dataclass
class PowerBreakdown:
    """Network power split by mechanism (all mW)."""

    switch_dynamic: float = 0.0
    link_dynamic: float = 0.0
    clock: float = 0.0
    leakage: float = 0.0

    @property
    def total_mw(self) -> float:
        return self.switch_dynamic + self.link_dynamic + self.clock + self.leakage


class NetworkEstimator:
    """Computes network area/power for an evaluated mapping."""

    def __init__(self, tech: Technology = TECH_100NM):
        self.tech = tech
        self.library = AreaPowerLibrary(tech)

    # ------------------------------------------------------------------
    def switch_config(self, topology: Topology, sw) -> SwitchConfig:
        n_in, n_out = topology.switch_ports(sw)
        return SwitchConfig(
            n_in=n_in,
            n_out=n_out,
            flit_width_bits=self.tech.flit_width_bits,
            buffer_depth_flits=self.tech.buffer_depth_flits,
        )

    def _physical_tables(self, topology: Topology) -> tuple[dict, dict]:
        """Per-topology lookup tables for the power/area walks.

        Returns ``(entry_by_switch, nominal_length_by_edge)``: the
        library entry of every switch and the nominal ``length``
        attribute of every edge. Both depend only on the topology and
        the technology point, so they are cached *on the topology
        object*, keyed by technology — topologies outlive estimator
        instances (and estimators get re-created per engine job), and a
        topology-resident cache also survives estimator pickling into
        worker processes.
        """
        cache = topology.__dict__.setdefault("_phys_tables_cache", {})
        key = (type(self).__name__, self.tech)
        tables = cache.get(key)
        if tables is None:
            entries = {
                sw: self.library.entry(self.switch_config(topology, sw))
                for sw in topology.switches
            }
            lengths = {
                (u, v): d["length"]
                for u, v, d in topology.graph.edges(data=True)
            }
            tables = cache[key] = (entries, lengths)
        return tables

    def used_switches(
        self, topology: Topology, result: RoutingResult | None
    ) -> set:
        """Switches that must be instantiated.

        Direct topologies instantiate every switch (each hosts a core
        slot); multistage topologies prune switches no route touches —
        the paper's DSP butterfly keeps 4 of 6 switches (Fig. 10(b)).
        """
        if topology.kind == "direct" or result is None:
            return set(topology.switches)
        return {
            node
            for path in result.all_paths()
            for node in path
            if is_switch(node)
        }

    # ------------------------------------------------------------------
    def edge_length_mm(self, topology, u, v, lengths_mm, pitch_mm) -> float:
        """Physical length of a link: floorplanned if known, nominal else."""
        if lengths_mm is not None and (u, v) in lengths_mm:
            return lengths_mm[(u, v)]
        return topology.graph.edges[u, v]["length"] * pitch_mm

    def dynamic_power_terms(
        self,
        topology: Topology,
        routed,
        lengths_mm: dict | None = None,
        pitch_mm: float = 2.0,
        switch_dynamic: float = 0.0,
        link_dynamic: float = 0.0,
    ) -> tuple[float, float]:
        """Accumulate switch/link dynamic power over routed commodities.

        Walks every path of ``routed`` (an iterable of
        :class:`~repro.routing.base.RoutedCommodity`), charging switch
        and wire energy per bit (Section 5: "power dissipation for the
        switches and links are calculated based on the average
        traffic"). The wire term inlines link_dynamic_power_mw with the
        identical operation order (bit-identical floats).

        ``switch_dynamic``/``link_dynamic`` seed the accumulators: the
        incremental engine resumes from a per-commodity partial sum and
        adds only the re-routed suffix, producing the same float result
        as a full walk because the additions happen in the same order.

        Accumulation is two-level — each commodity's terms fold into a
        per-commodity subtotal (starting at 0.0) which is then added to
        the running total. A commodity's contribution is therefore one
        float that depends only on its own paths, which is what lets
        the incremental engine splice cached contributions with a
        single addition per commodity.
        """
        entries, nominal = self._physical_tables(topology)
        link_energy = self.tech.link_energy_pj_per_bit_mm
        for rc in routed:
            rc_switch = 0.0
            rc_link = 0.0
            for path, bw in rc.paths:
                bits_per_s = bw * BITS_PER_MB
                for node in path:
                    if node[0] == SW:
                        rc_switch += (
                            bits_per_s
                            * entries[node].energy_pj_per_bit
                            * 1e-9
                        )
                for edge in zip(path, path[1:]):
                    if lengths_mm is not None and edge in lengths_mm:
                        length = lengths_mm[edge]
                    else:
                        length = nominal[edge] * pitch_mm
                    rc_link += (
                        bits_per_s * (link_energy * length) * 1e-12 * 1e3
                    )
            switch_dynamic += rc_switch
            link_dynamic += rc_link
        return switch_dynamic, link_dynamic

    def static_power_terms(
        self,
        topology: Topology,
        result: RoutingResult,
        lengths_mm: dict | None = None,
        pitch_mm: float = 2.0,
    ) -> tuple[float, float]:
        """(clock, leakage) mW over instantiated switches and channels.

        Every instantiated switch clocks and leaks, and instantiated
        channels leak through their repeaters. For direct topologies
        with nominal lengths this is mapping-independent (every switch
        hosts a slot), so the two loops' results are cached per
        (estimator type, tech, pitch) on the topology — computed once by
        the exact legacy accumulation order.
        """
        tech = self.tech
        static_cache = None
        static_key = None
        if topology.kind == "direct" and lengths_mm is None:
            static_cache = topology.__dict__.setdefault(
                "_static_power_cache", {}
            )
            static_key = (type(self).__name__, tech, pitch_mm)
            cached = static_cache.get(static_key)
            if cached is not None:
                return cached
        entries, nominal = self._physical_tables(topology)
        used = self.used_switches(topology, result)
        clock = 0.0
        leakage = 0.0
        for sw in used:
            entry = entries[sw]
            clock += (
                tech.clock_power_mw_per_port
                * (entry.config.n_in + entry.config.n_out)
                / 2.0
            )
            leakage += tech.leakage_mw_per_mm2 * entry.area_mm2
        # Link repeater leakage over instantiated channels; every
        # parallel physical channel of a fat link leaks independently.
        mults = topology.channel_multiplicities()
        for u, v in topology.net_edges():
            if u in used and v in used:
                if lengths_mm is not None and (u, v) in lengths_mm:
                    length = lengths_mm[(u, v)]
                else:
                    length = nominal[(u, v)] * pitch_mm
                m = mults.get((u, v), 1) if mults else 1
                leakage += link_leakage_power_mw(length, tech) * m
        if static_cache is not None:
            static_cache[static_key] = (clock, leakage)
        return clock, leakage

    def network_power_mw(
        self,
        topology: Topology,
        result: RoutingResult,
        lengths_mm: dict | None = None,
        pitch_mm: float = 2.0,
    ) -> PowerBreakdown:
        """Total network power for a routed mapping.

        Args:
            lengths_mm: optional ``{(u, v): mm}`` floorplanned lengths.
            pitch_mm: tile pitch used with nominal lengths when a link is
                not in ``lengths_mm``.
        """
        breakdown = PowerBreakdown()
        breakdown.switch_dynamic, breakdown.link_dynamic = (
            self.dynamic_power_terms(
                topology, result.routed, lengths_mm, pitch_mm
            )
        )
        breakdown.clock, breakdown.leakage = self.static_power_terms(
            topology, result, lengths_mm, pitch_mm
        )
        return breakdown

    # ------------------------------------------------------------------
    def switches_area_mm2(
        self, topology: Topology, result: RoutingResult | None = None
    ) -> float:
        """Total silicon area of the instantiated switches."""
        entries, _ = self._physical_tables(topology)
        return sum(
            entries[sw].area_mm2
            for sw in self.used_switches(topology, result)
        )

    def channels_area_mm2(
        self,
        topology: Topology,
        result: RoutingResult | None = None,
        lengths_mm: dict | None = None,
        pitch_mm: float = 2.0,
    ) -> float:
        """Total wiring area of the instantiated inter-switch channels.

        A fat link instantiates one physical channel per unit of its
        multiplicity, so its wiring area scales accordingly.
        """
        _, nominal = self._physical_tables(topology)
        used = self.used_switches(topology, result)
        mults = topology.channel_multiplicities()
        total = 0.0
        for u, v in topology.net_edges():
            if u in used and v in used:
                if lengths_mm is not None and (u, v) in lengths_mm:
                    length = lengths_mm[(u, v)]
                else:
                    length = nominal[(u, v)] * pitch_mm
                m = mults.get((u, v), 1) if mults else 1
                total += channel_area_mm2(
                    length, self.tech.flit_width_bits, self.tech
                ) * m
        return total
