"""Network-level area and power estimation.

Bridges the per-switch analytical models to whole-design numbers: given a
topology, a routing result (which switch/link carries how much traffic)
and physical link lengths, produce the "des area" / "des pow" columns of
the paper's tables (Figures 3(d), 6(c,d), 7(b), 8(c,d)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.library import AreaPowerLibrary
from repro.physical.link_power import (
    link_dynamic_power_mw,
    link_leakage_power_mw,
)
from repro.physical.switch_area import SwitchConfig, channel_area_mm2
from repro.physical.switch_power import BITS_PER_MB
from repro.physical.technology import TECH_100NM, Technology
from repro.routing.base import RoutingResult
from repro.topology.base import Topology, is_switch


@dataclass
class PowerBreakdown:
    """Network power split by mechanism (all mW)."""

    switch_dynamic: float = 0.0
    link_dynamic: float = 0.0
    clock: float = 0.0
    leakage: float = 0.0

    @property
    def total_mw(self) -> float:
        return self.switch_dynamic + self.link_dynamic + self.clock + self.leakage


class NetworkEstimator:
    """Computes network area/power for an evaluated mapping."""

    def __init__(self, tech: Technology = TECH_100NM):
        self.tech = tech
        self.library = AreaPowerLibrary(tech)

    # ------------------------------------------------------------------
    def switch_config(self, topology: Topology, sw) -> SwitchConfig:
        n_in, n_out = topology.switch_ports(sw)
        return SwitchConfig(
            n_in=n_in,
            n_out=n_out,
            flit_width_bits=self.tech.flit_width_bits,
            buffer_depth_flits=self.tech.buffer_depth_flits,
        )

    def used_switches(
        self, topology: Topology, result: RoutingResult | None
    ) -> set:
        """Switches that must be instantiated.

        Direct topologies instantiate every switch (each hosts a core
        slot); multistage topologies prune switches no route touches —
        the paper's DSP butterfly keeps 4 of 6 switches (Fig. 10(b)).
        """
        if topology.kind == "direct" or result is None:
            return set(topology.switches)
        return {
            node
            for path in result.all_paths()
            for node in path
            if is_switch(node)
        }

    # ------------------------------------------------------------------
    def edge_length_mm(self, topology, u, v, lengths_mm, pitch_mm) -> float:
        """Physical length of a link: floorplanned if known, nominal else."""
        if lengths_mm is not None and (u, v) in lengths_mm:
            return lengths_mm[(u, v)]
        return topology.graph.edges[u, v]["length"] * pitch_mm

    def network_power_mw(
        self,
        topology: Topology,
        result: RoutingResult,
        lengths_mm: dict | None = None,
        pitch_mm: float = 2.0,
    ) -> PowerBreakdown:
        """Total network power for a routed mapping.

        Args:
            lengths_mm: optional ``{(u, v): mm}`` floorplanned lengths.
            pitch_mm: tile pitch used with nominal lengths when a link is
                not in ``lengths_mm``.
        """
        breakdown = PowerBreakdown()
        # Dynamic power: walk every routed path, charging switch and wire
        # energy per bit (Section 5: "power dissipation for the switches
        # and links are calculated based on the average traffic").
        for rc in result.routed:
            for path, bw in rc.paths:
                bits_per_s = bw * BITS_PER_MB
                for node in path:
                    if is_switch(node):
                        entry = self.library.entry(
                            self.switch_config(topology, node)
                        )
                        breakdown.switch_dynamic += (
                            bits_per_s * entry.energy_pj_per_bit * 1e-9
                        )
                for u, v in zip(path, path[1:]):
                    length = self.edge_length_mm(
                        topology, u, v, lengths_mm, pitch_mm
                    )
                    breakdown.link_dynamic += link_dynamic_power_mw(
                        bw, length, self.tech
                    )
        # Static power: every instantiated switch clocks and leaks.
        for sw in self.used_switches(topology, result):
            entry = self.library.entry(self.switch_config(topology, sw))
            breakdown.clock += (
                self.tech.clock_power_mw_per_port
                * (entry.config.n_in + entry.config.n_out)
                / 2.0
            )
            breakdown.leakage += (
                self.tech.leakage_mw_per_mm2 * entry.area_mm2
            )
        # Link repeater leakage over instantiated channels.
        used = self.used_switches(topology, result)
        for u, v in topology.net_edges():
            if u in used and v in used:
                length = self.edge_length_mm(
                    topology, u, v, lengths_mm, pitch_mm
                )
                breakdown.leakage += link_leakage_power_mw(length, self.tech)
        return breakdown

    # ------------------------------------------------------------------
    def switches_area_mm2(
        self, topology: Topology, result: RoutingResult | None = None
    ) -> float:
        """Total silicon area of the instantiated switches."""
        return sum(
            self.library.entry(self.switch_config(topology, sw)).area_mm2
            for sw in self.used_switches(topology, result)
        )

    def channels_area_mm2(
        self,
        topology: Topology,
        result: RoutingResult | None = None,
        lengths_mm: dict | None = None,
        pitch_mm: float = 2.0,
    ) -> float:
        """Total wiring area of the instantiated inter-switch channels."""
        used = self.used_switches(topology, result)
        total = 0.0
        for u, v in topology.net_edges():
            if u in used and v in used:
                length = self.edge_length_mm(
                    topology, u, v, lengths_mm, pitch_mm
                )
                total += channel_area_mm2(
                    length, self.tech.flit_width_bits, self.tech
                )
        return total
