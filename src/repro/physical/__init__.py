"""Area/power models and libraries (paper Section 5)."""

from repro.physical.estimate import NetworkEstimator, PowerBreakdown
from repro.physical.library import AreaPowerLibrary, LibraryEntry
from repro.physical.link_power import (
    link_dynamic_power_mw,
    link_leakage_power_mw,
)
from repro.physical.switch_area import (
    SwitchConfig,
    buffer_area_um2,
    channel_area_mm2,
    crossbar_area_um2,
    logic_area_um2,
    switch_area_mm2,
)
from repro.physical.switch_power import (
    BITS_PER_MB,
    switch_clock_power_mw,
    switch_dynamic_power_mw,
    switch_energy_pj_per_bit,
    switch_leakage_power_mw,
    switch_static_power_mw,
)
from repro.physical.technology import TECH_100NM, Technology, scaled_technology

__all__ = [
    "Technology",
    "TECH_100NM",
    "scaled_technology",
    "SwitchConfig",
    "switch_area_mm2",
    "crossbar_area_um2",
    "buffer_area_um2",
    "logic_area_um2",
    "channel_area_mm2",
    "switch_energy_pj_per_bit",
    "switch_dynamic_power_mw",
    "switch_clock_power_mw",
    "switch_leakage_power_mw",
    "switch_static_power_mw",
    "BITS_PER_MB",
    "link_dynamic_power_mw",
    "link_leakage_power_mw",
    "AreaPowerLibrary",
    "LibraryEntry",
    "NetworkEstimator",
    "PowerBreakdown",
]
