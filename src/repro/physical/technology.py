"""Technology parameters (paper Section 5).

The paper generates its area/power libraries for a 0.1 µm process, using
xpipes-style analytical switch area models, ORION-derived bit-energy
models [22] and the wiring parameters of Ho/Mai/Horowitz "The Future of
Wires" [23]. The constants below are clean-room equivalents calibrated so
that absolute results land in the paper's reported ranges (a 5x5 32-bit
switch ≈ 0.2 mm²; VOPD mesh design ≈ tens of mm² and a few hundred mW);
selection decisions only depend on the *relative* ordering they induce.

All areas are in µm² unless suffixed otherwise; energies in pJ per bit;
power coefficients in mW.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Technology:
    """Process + microarchitecture parameters for the area/power models."""

    name: str = "cmos-100nm"
    feature_um: float = 0.10
    vdd_v: float = 1.2
    clock_mhz: float = 500.0

    # Switch microarchitecture (xpipes-style, Section 5).
    flit_width_bits: int = 32
    buffer_depth_flits: int = 16

    # --- area model -----------------------------------------------------
    #: SRAM cell + FIFO control overhead, per buffered bit.
    sram_bit_area_um2: float = 12.0
    #: Metal pitch of crossbar / channel wires.
    wire_pitch_um: float = 0.8
    #: Matrix arbiter + flow-control logic per input-output port pair.
    arbiter_area_per_portpair_um2: float = 450.0
    #: Pipeline registers, synchronizers and control per port.
    port_logic_area_um2: float = 15000.0
    #: Clock tree taps, configuration registers, misc per switch.
    switch_overhead_um2: float = 20000.0

    # --- dynamic energy model (pJ/bit) ----------------------------------
    # Crossbar energy carries a strong per-port term (crossbar wires span
    # all ports), which is what rewards the butterfly's small 4x4 switches
    # over the torus's uniform 5x5 ones (Section 6.1 discussion).
    e_buffer_write_pj: float = 0.8
    e_buffer_read_pj: float = 0.7
    e_xbar_base_pj: float = 0.45
    e_xbar_per_port_pj: float = 0.5
    e_arb_per_port_pj: float = 0.06
    #: Effective wire + repeater capacitance. Kept low so that, as the
    #: paper observes, "link power dissipation is much lower than the
    #: switch power dissipation".
    wire_cap_ff_per_mm: float = 100.0

    # --- static / clock power -------------------------------------------
    clock_power_mw_per_port: float = 2.4
    leakage_mw_per_mm2: float = 8.0
    link_leakage_mw_per_mm: float = 0.04

    @property
    def link_energy_pj_per_bit_mm(self) -> float:
        """Dynamic energy to move one bit over one mm of wire."""
        return self.wire_cap_ff_per_mm * 1e-3 * self.vdd_v**2


#: The technology used throughout the paper's experiments.
TECH_100NM = Technology()


def scaled_technology(feature_um: float, base: Technology = TECH_100NM) -> Technology:
    """Derive a technology node by classic constant-field scaling.

    Areas scale with the square of the feature ratio, capacitances and
    energies roughly linearly, supply voltage with the ratio (floored at
    0.7 V). This supports "area-power libraries ... for different
    technology parameters" (Section 5) without tabulating each node.
    """
    if feature_um <= 0:
        raise ValueError("feature size must be positive")
    s = feature_um / base.feature_um
    vdd = max(0.7, base.vdd_v * s)
    ve = (vdd / base.vdd_v) ** 2  # dynamic energy scales with C * V^2
    return replace(
        base,
        name=f"cmos-{int(feature_um * 1000)}nm",
        feature_um=feature_um,
        vdd_v=vdd,
        sram_bit_area_um2=base.sram_bit_area_um2 * s**2,
        wire_pitch_um=base.wire_pitch_um * s,
        arbiter_area_per_portpair_um2=base.arbiter_area_per_portpair_um2 * s**2,
        port_logic_area_um2=base.port_logic_area_um2 * s**2,
        switch_overhead_um2=base.switch_overhead_um2 * s**2,
        e_buffer_write_pj=base.e_buffer_write_pj * s * ve,
        e_buffer_read_pj=base.e_buffer_read_pj * s * ve,
        e_xbar_base_pj=base.e_xbar_base_pj * s * ve,
        e_xbar_per_port_pj=base.e_xbar_per_port_pj * s * ve,
        e_arb_per_port_pj=base.e_arb_per_port_pj * s * ve,
        wire_cap_ff_per_mm=base.wire_cap_ff_per_mm,
        clock_power_mw_per_port=base.clock_power_mw_per_port * s,
        leakage_mw_per_mm2=base.leakage_mw_per_mm2,
    )
