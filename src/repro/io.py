"""JSON serialization for applications, topologies and selection results.

Lets users describe their SoC outside Python and feed it to the CLI
(``sunmap select --app-file my_soc.json``), lets tools consume selection
outcomes programmatically, and lets synthesized custom fabrics be saved,
reloaded and re-evaluated without re-running synthesis
(``sunmap synthesize --save-topology fabric.json`` then
``sunmap map --topology-file fabric.json``).

Core-graph schema::

    {
      "name": "my-soc",
      "cores": [
        {"name": "cpu", "area_mm2": 4.0, "is_soft": true,
         "aspect_min": 0.33, "aspect_max": 3.0, "power_mw": 0.0},
        ...
      ],
      "flows": [
        {"src": "cpu", "dst": "mem", "bandwidth_mb_s": 400.0},
        ...
      ]
    }

Custom-topology schema (parallel channels carried as ``mult``)::

    {
      "name": "syn-greedy-s3c4d4",
      "slot_switch": [0, 0, 1, 1, 2],
      "links": [{"a": 0, "b": 1, "mult": 2}, {"a": 1, "b": 2}],
      "positions": {"0": [0.0, 0.0], "1": [1.0, 0.0], "2": [0.0, 1.0]}
    }
"""

from __future__ import annotations

import json

from repro.core.coregraph import CoreGraph
from repro.core.selector import SelectionResult
from repro.errors import CoreGraphError, TopologyError
from repro.topology.custom import CustomTopology


def core_graph_to_dict(graph: CoreGraph) -> dict:
    """Serializable description of an application."""
    return {
        "name": graph.name,
        "cores": [
            {
                "name": core.name,
                "area_mm2": core.area_mm2,
                "is_soft": core.is_soft,
                "aspect_min": core.aspect_min,
                "aspect_max": core.aspect_max,
                "power_mw": core.power_mw,
            }
            for core in graph.cores
        ],
        "flows": [
            {
                "src": graph.core(src).name,
                "dst": graph.core(dst).name,
                "bandwidth_mb_s": bandwidth,
            }
            for (src, dst), bandwidth in sorted(graph.flows().items())
        ],
    }


def core_graph_from_dict(payload: dict) -> CoreGraph:
    """Rebuild an application from its dict form (validates)."""
    try:
        graph = CoreGraph(payload["name"])
        for core in payload["cores"]:
            graph.add_core(
                core["name"],
                area_mm2=core.get("area_mm2", 2.0),
                is_soft=core.get("is_soft", True),
                aspect_min=core.get("aspect_min", 1.0 / 3.0),
                aspect_max=core.get("aspect_max", 3.0),
                power_mw=core.get("power_mw", 0.0),
            )
        for flow in payload["flows"]:
            graph.add_flow(flow["src"], flow["dst"], flow["bandwidth_mb_s"])
    except KeyError as exc:
        raise CoreGraphError(f"missing field in core-graph JSON: {exc}") from None
    graph.validate()
    return graph


def save_core_graph(graph: CoreGraph, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(core_graph_to_dict(graph), handle, indent=2)


def load_core_graph(path) -> CoreGraph:
    with open(path, "r", encoding="utf-8") as handle:
        return core_graph_from_dict(json.load(handle))


def custom_topology_to_dict(topology: CustomTopology) -> dict:
    """Serializable description of an explicit switch fabric."""
    return {
        "name": topology.name,
        "slot_switch": topology.slot_switch,
        "links": [
            {"a": a, "b": b, "mult": mult}
            for (a, b), mult in sorted(topology.link_multiplicity().items())
        ],
        "positions": {
            str(sid): [x, y]
            for sid, (x, y) in sorted(topology.switch_positions().items())
        },
    }


def custom_topology_from_dict(payload: dict) -> CustomTopology:
    """Rebuild a custom fabric from its dict form (validates).

    Round-trips :func:`custom_topology_to_dict` exactly: the rebuilt
    topology has the same name, slots, channel multiplicities and switch
    positions, so re-evaluating it reproduces the original results.
    """
    try:
        links: list[tuple[int, int]] = []
        for link in payload["links"]:
            pair = (int(link["a"]), int(link["b"]))
            links.extend([pair] * int(link.get("mult", 1)))
        positions = {
            int(sid): (float(xy[0]), float(xy[1]))
            for sid, xy in (payload.get("positions") or {}).items()
        }
        return CustomTopology(
            name=payload["name"],
            slot_switch=[int(s) for s in payload["slot_switch"]],
            links=links,
            positions=positions or None,
        )
    except KeyError as exc:
        raise TopologyError(
            f"missing field in topology JSON: {exc}"
        ) from None
    except (TypeError, ValueError, IndexError, AttributeError) as exc:
        raise TopologyError(f"malformed topology JSON: {exc}") from None


def save_topology(topology: CustomTopology, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(custom_topology_to_dict(topology), handle, indent=2)


def load_topology(path) -> CustomTopology:
    with open(path, "r", encoding="utf-8") as handle:
        return custom_topology_from_dict(json.load(handle))


def selection_to_dict(selection: SelectionResult) -> dict:
    """Serializable selection outcome (summary rows + winner)."""
    return {
        "objective": selection.objective_name,
        "routing": selection.routing_code,
        "best": selection.best_name,
        "synthesized": list(selection.synthesized),
        "rows": selection.table(),
    }


def save_selection(selection: SelectionResult, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(selection_to_dict(selection), handle, indent=2)
