"""JSON serialization for applications and selection results.

Lets users describe their SoC outside Python and feed it to the CLI
(``sunmap select --app-file my_soc.json``), and lets tools consume
selection outcomes programmatically.

Core-graph schema::

    {
      "name": "my-soc",
      "cores": [
        {"name": "cpu", "area_mm2": 4.0, "is_soft": true,
         "aspect_min": 0.33, "aspect_max": 3.0, "power_mw": 0.0},
        ...
      ],
      "flows": [
        {"src": "cpu", "dst": "mem", "bandwidth_mb_s": 400.0},
        ...
      ]
    }
"""

from __future__ import annotations

import json

from repro.core.coregraph import CoreGraph
from repro.core.selector import SelectionResult
from repro.errors import CoreGraphError


def core_graph_to_dict(graph: CoreGraph) -> dict:
    """Serializable description of an application."""
    return {
        "name": graph.name,
        "cores": [
            {
                "name": core.name,
                "area_mm2": core.area_mm2,
                "is_soft": core.is_soft,
                "aspect_min": core.aspect_min,
                "aspect_max": core.aspect_max,
                "power_mw": core.power_mw,
            }
            for core in graph.cores
        ],
        "flows": [
            {
                "src": graph.core(src).name,
                "dst": graph.core(dst).name,
                "bandwidth_mb_s": bandwidth,
            }
            for (src, dst), bandwidth in sorted(graph.flows().items())
        ],
    }


def core_graph_from_dict(payload: dict) -> CoreGraph:
    """Rebuild an application from its dict form (validates)."""
    try:
        graph = CoreGraph(payload["name"])
        for core in payload["cores"]:
            graph.add_core(
                core["name"],
                area_mm2=core.get("area_mm2", 2.0),
                is_soft=core.get("is_soft", True),
                aspect_min=core.get("aspect_min", 1.0 / 3.0),
                aspect_max=core.get("aspect_max", 3.0),
                power_mw=core.get("power_mw", 0.0),
            )
        for flow in payload["flows"]:
            graph.add_flow(flow["src"], flow["dst"], flow["bandwidth_mb_s"])
    except KeyError as exc:
        raise CoreGraphError(f"missing field in core-graph JSON: {exc}") from None
    graph.validate()
    return graph


def save_core_graph(graph: CoreGraph, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(core_graph_to_dict(graph), handle, indent=2)


def load_core_graph(path) -> CoreGraph:
    with open(path, "r", encoding="utf-8") as handle:
        return core_graph_from_dict(json.load(handle))


def selection_to_dict(selection: SelectionResult) -> dict:
    """Serializable selection outcome (summary rows + winner)."""
    return {
        "objective": selection.objective_name,
        "routing": selection.routing_code,
        "best": selection.best_name,
        "rows": selection.table(),
    }


def save_selection(selection: SelectionResult, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(selection_to_dict(selection), handle, indent=2)
