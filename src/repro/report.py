"""Plain-text rendering of SUNMAP artifacts.

ASCII views of floorplans (Figure 10(b) style), topology summaries,
latency–throughput campaign curves and markdown tables — useful in
terminals, logs and docs, with zero plotting dependencies.
"""

from __future__ import annotations

import math

from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation
from repro.core.selector import SelectionResult
from repro.floorplan.lp import FloorplanResult
from repro.simulation.campaign import CampaignResult


def render_floorplan(
    floorplan: FloorplanResult,
    core_graph: CoreGraph | None = None,
    width: int = 68,
    height: int = 24,
) -> str:
    """ASCII rendering of a floorplan (labels at block centers).

    Cores render as boxes of ``#`` borders; switches as ``+`` blocks.
    """
    if floorplan.width_mm <= 0 or floorplan.height_mm <= 0:
        return "(empty floorplan)"
    sx = (width - 1) / floorplan.width_mm
    sy = (height - 1) / floorplan.height_mm
    canvas = [[" "] * width for _ in range(height)]

    def plot(x0, y0, x1, y1, border):
        c0, r0 = int(x0 * sx), int(y0 * sy)
        c1, r1 = max(int(x1 * sx), c0 + 1), max(int(y1 * sy), r0 + 1)
        c1 = min(c1, width - 1)
        r1 = min(r1, height - 1)
        for c in range(c0, c1 + 1):
            canvas[r0][c] = border
            canvas[r1][c] = border
        for r in range(r0, r1 + 1):
            canvas[r][c0] = border
            canvas[r][c1] = border
        return (r0 + r1) // 2, (c0 + c1) // 2

    for key, rect in floorplan.rects.items():
        border = "+" if key[0] == "sw" else "#"
        row, col = plot(
            rect.x, rect.y, rect.x + rect.w, rect.y + rect.h, border
        )
        if key[0] == "core" and core_graph is not None:
            label = core_graph.core(key[1]).name[:10]
        elif key[0] == "core":
            label = f"c{key[1]}"
        else:
            label = "sw"
        start = max(1, col - len(label) // 2)
        for i, ch in enumerate(label):
            if start + i < width - 1:
                canvas[row][start + i] = ch

    # y grows upward in floorplan coordinates; flip for display.
    lines = ["".join(row).rstrip() for row in reversed(canvas)]
    header = (
        f"{floorplan.width_mm:.2f} x {floorplan.height_mm:.2f} mm "
        f"({floorplan.area_mm2:.1f} mm2, "
        f"{floorplan.whitespace_fraction * 100:.0f}% whitespace)"
    )
    return "\n".join([header] + lines)


def render_mapping(evaluation: MappingEvaluation) -> str:
    """One-mapping report: metrics plus the core->slot table."""
    app = evaluation.core_graph
    lines = [
        f"{app.name} on {evaluation.topology.name} "
        f"[{evaluation.routing_code}]",
        f"  feasible:  {evaluation.feasible}",
        f"  avg hops:  {evaluation.avg_hops:.3f}",
        f"  max load:  {evaluation.max_link_load:.1f} MB/s",
    ]
    if evaluation.area_mm2 is not None:
        lines.append(f"  area:      {evaluation.area_mm2:.2f} mm2")
    if evaluation.power_mw is not None:
        lines.append(f"  power:     {evaluation.power_mw:.1f} mW")
    lines.append("  mapping:")
    for core_index, slot in sorted(evaluation.assignment.items()):
        lines.append(f"    {app.core(core_index).name:<14} -> slot {slot}")
    return "\n".join(lines)


def campaign_to_markdown(campaign: CampaignResult) -> str:
    """Campaign curves as GitHub-flavored markdown (one table, all
    patterns), with saturation rates called out below the table."""
    header = (
        "| pattern | rate | avg latency | p95 | throughput | delivered |"
    )
    rule = "|---|---|---|---|---|---|"
    rows = []
    for pattern, curve in campaign.curves.items():
        for i, rate in enumerate(curve.rates):
            lat = curve.avg_latency[i]
            p95 = curve.p95_latency[i]
            rows.append(
                f"| {pattern} | {rate:g} | "
                f"{'∞' if not math.isfinite(lat) else f'{lat:.1f}'} | "
                f"{'∞' if not math.isfinite(p95) else f'{p95:.1f}'} | "
                f"{curve.throughput[i]:.3f} | "
                f"{curve.delivered[i] * 100:.1f}% |"
            )
    sat_lines = [
        f"- **{pattern}** saturates at "
        + (f"{rate:g} flits/cycle/node" if rate is not None else "no swept rate")
        for pattern, rate in campaign.saturation_rates().items()
    ]
    title = (
        f"**Campaign:** {campaign.application or '(synthetic)'} on "
        f"{campaign.topology_name}"
    )
    return "\n".join([title, "", header, rule] + rows + [""] + sat_lines)


def selection_to_markdown(selection: SelectionResult) -> str:
    """Selection table as GitHub-flavored markdown."""
    header = (
        "| topology | feasible | avg hops | area mm² | power mW | "
        "max load | selected |"
    )
    rule = "|---|---|---|---|---|---|---|"
    rows = []
    for row in selection.table():
        rows.append(
            "| {topology} | {feasible} | {hops} | {area} | {power} | "
            "{load} | {sel} |".format(
                topology=row["topology"],
                feasible="yes" if row["feasible"] else "no",
                hops=row.get("avg_hops", "-"),
                area=row.get("area_mm2") or "-",
                power=row.get("power_mw") or "-",
                load=row.get("max_link_load_mb_s", "-"),
                sel="**x**" if row.get("selected") else "",
            )
        )
    return "\n".join([header, rule] + rows)
