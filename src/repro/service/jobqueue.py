"""Request dedup and cross-request batching for the design service.

Two mechanisms turn N concurrent design requests into less-than-N
engine work, both without changing a single result bit:

* :class:`InFlightTable` — *request-level* dedup. Identical requests
  (same normalized contract fingerprint) that overlap in time share one
  computation: the first becomes the owner, the rest await its future.
  This is the request-granularity analogue of the engine's in-batch
  job dedup, and it is what makes a thundering herd of identical
  queries cost one evaluation pass.

* :class:`BatchingEngine` — *job-level* batching. Request handlers run
  in worker threads and each eventually calls ``engine.run(jobs)``;
  concurrent calls rendezvous here, their job lists are concatenated
  and executed as **one** pass of the inner
  :class:`~repro.engine.engine.ExplorationEngine`. One pass means one
  executor fan-out (a single process-pool dispatch instead of several
  small ones) and engine-level dedup *across* requests: two different
  requests sharing a candidate evaluate it once.

Bit-identity: the engine reduces results by submission index and every
job's seed is content-derived, so ``inner.run(a + b)`` sliced back into
``a`` and ``b`` is element-wise identical to ``inner.run(a)`` and
``inner.run(b)`` — batching composition can never leak into results.
"""

from __future__ import annotations

import asyncio
import time
from threading import Event, Lock

from repro.engine.engine import ExplorationEngine
from repro.engine.jobs import JobResult
from repro.engine.resilience import JobFailure
from repro.errors import ReproError
from repro.obs import metrics as obs_metrics

_DEDUPED = obs_metrics.REGISTRY.counter(
    "repro_service_deduped_total",
    "Requests that joined an identical in-flight computation",
)
_BATCHES = obs_metrics.REGISTRY.counter(
    "repro_service_batches_total", "Merged engine passes run by the batcher"
)
_BATCHED_REQUESTS = obs_metrics.REGISTRY.counter(
    "repro_service_batched_requests_total",
    "run() submissions folded into merged passes",
)


class InFlightTable:
    """Fingerprint → future map of requests currently being computed.

    Single-threaded by design: all calls happen on the event-loop
    thread (the compute itself runs in a worker thread, but joining,
    resolving and rejecting are loop-side), so no lock is needed.
    """

    def __init__(self):
        """Create an empty table."""
        self._futures: dict[str, asyncio.Future] = {}
        #: Requests that joined an in-flight computation instead of
        #: starting their own (asserted by the dedup tests).
        self.deduped = 0

    def join(self, fingerprint: str) -> tuple[asyncio.Future, bool]:
        """Return ``(future, owner)`` for a request fingerprint.

        The first caller for a fingerprint becomes the owner
        (``owner=True``): it must compute the result and call
        :meth:`resolve` or :meth:`reject`. Later callers get the same
        future with ``owner=False`` and simply await it.
        """
        future = self._futures.get(fingerprint)
        if future is not None:
            self.deduped += 1
            _DEDUPED.inc()
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._futures[fingerprint] = future
        return future, True

    def resolve(self, fingerprint: str, result) -> None:
        """Deliver the owner's result to every awaiter and retire the entry."""
        future = self._futures.pop(fingerprint)
        if not future.done():
            future.set_result(result)

    def reject(self, fingerprint: str, exc: BaseException) -> None:
        """Deliver the owner's failure to every awaiter and retire the entry."""
        future = self._futures.pop(fingerprint)
        if not future.done():
            future.set_exception(exc)
            # Mark the exception as retrieved: when no follower joined,
            # nobody awaits this future and asyncio would otherwise log
            # "exception was never retrieved" at GC time.
            future.exception()

    def __len__(self) -> int:
        """Number of computations currently in flight."""
        return len(self._futures)


class _Submission:
    """One ``run()`` call waiting for its slice of a merged batch."""

    __slots__ = ("jobs", "on_failure", "results", "exception", "done")

    def __init__(self, jobs: list, on_failure: str = "raise"):
        """Wrap one caller's job list ahead of the merge."""
        self.jobs = jobs
        self.on_failure = on_failure
        self.results: list[JobResult] | None = None
        self.exception: BaseException | None = None
        self.done = Event()


class BatchingEngine(ExplorationEngine):
    """Engine façade that merges concurrent ``run()`` calls into one pass.

    Behaves exactly like the wrapped engine — same cache, same executor,
    same job-list builders — but when several threads call :meth:`run`
    at once, their job lists are concatenated and executed as a single
    inner pass. The leader (first submitter to win the flush lock) waits
    ``window_s`` for stragglers, drains everything queued, runs it, and
    hands each submission its own result slice.

    ``window_s`` trades latency for batching: 0 disables the straggler
    wait (merging then only happens while a previous pass is running,
    which is still the common case under load).
    """

    def __init__(self, inner: ExplorationEngine, window_s: float = 0.005):
        """Wrap ``inner``; do not submit to ``inner`` directly afterwards."""
        self.inner = inner
        self.window_s = window_s
        self.executor = inner.executor
        self.cache = inner.cache
        self.journal = inner.journal
        # Failure stats accumulate on the inner engine (the merged
        # passes run there); expose the same counter object.
        self.failure_stats = inner.failure_stats
        self.last_failures = inner.last_failures
        self._mutex = Lock()          # guards _pending
        self._flush_lock = Lock()     # held by the current leader
        self._pending: list[_Submission] = []
        #: Merged-pass counters (observability + batching tests).
        self.batches = 0
        self.batched_requests = 0
        self.largest_batch = 0

    def run(self, jobs, on_failure: str = "raise") -> list[JobResult]:
        """Execute a batch, possibly merged with concurrent callers' work.

        Results are the caller's own submission slice, in its submission
        order — indistinguishable from ``inner.run(jobs)``.

        ``on_failure`` applies to the *caller's slice only*: the merged
        inner pass always runs with ``on_failure="skip"`` so one
        request's infrastructure failure cannot poison co-batched
        requests, then each submission's own policy decides whether its
        slice raises or keeps the typed failures.
        """
        if on_failure not in ("raise", "skip"):
            raise ReproError(
                f"on_failure must be 'raise' or 'skip', got {on_failure!r}"
            )
        jobs = list(jobs)
        if not jobs:
            return []
        submission = _Submission(jobs, on_failure)
        with self._mutex:
            self._pending.append(submission)
        while True:
            # Try to become the leader. Losing just means another
            # thread is flushing — our submission may be in its batch.
            if self._flush_lock.acquire(blocking=False):
                try:
                    if not submission.done.is_set():
                        if self.window_s > 0:
                            time.sleep(self.window_s)
                        self._drain()
                finally:
                    self._flush_lock.release()
            # A submission enqueued between a leader's final drain and
            # its lock release is picked up by this timed retry.
            if submission.done.wait(timeout=0.05):
                break
        if submission.exception is not None:
            raise submission.exception
        return submission.results

    def _drain(self) -> None:
        """Run every queued submission as merged inner passes."""
        while True:
            with self._mutex:
                batch, self._pending = self._pending, []
            if not batch:
                return
            self._execute(batch)

    def _execute(self, batch: list[_Submission]) -> None:
        """One merged pass: concatenate, run, slice back, wake waiters."""
        merged: list = []
        for submission in batch:
            merged.extend(submission.jobs)
        self.batches += 1
        self.batched_requests += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        _BATCHES.inc()
        _BATCHED_REQUESTS.inc(len(batch))
        try:
            # Always skip inside the merged pass: a JobFailure belongs
            # to exactly one submission's slice, and only that
            # submission's on_failure policy may turn it into a raise.
            results = self.inner.run(merged, on_failure="skip")
        except BaseException as exc:
            for submission in batch:
                submission.exception = exc
                submission.done.set()
            return
        offset = 0
        for submission in batch:
            chunk = results[offset:offset + len(submission.jobs)]
            offset += len(submission.jobs)
            if submission.on_failure == "raise":
                failed = next(
                    (r for r in chunk if isinstance(r, JobFailure)), None
                )
                if failed is not None:
                    submission.exception = failed.to_exception()
                    submission.done.set()
                    continue
            submission.results = chunk
            submission.done.set()
