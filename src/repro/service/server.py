"""Async design service: many concurrent JSON requests, one warm engine.

:class:`DesignService` is the front door the ROADMAP's service layer
asks for: it accepts concurrent design requests (``select`` /
``synthesize`` / ``campaign``, plus the ``health`` and ``metrics``
probes), validates
them against the contract (:mod:`repro.service.contract`), dedupes
identical requests in flight
(:class:`~repro.service.jobqueue.InFlightTable`), batches the engine
jobs of overlapping requests into single executor passes
(:class:`~repro.service.jobqueue.BatchingEngine`), and streams each
response as soon as its computation lands — over a newline-delimited
JSON TCP protocol (:meth:`DesignService.serve`) or directly in-process
(:meth:`DesignService.handle`, which is also what the tests drive).

The service degrades before it collapses: an optional ``max_inflight``
budget rejects over-capacity computations with the typed retryable
``busy`` error (dedup joiners stay free), campaign requests honour a
per-request ``deadline_s`` by returning partial results flagged
``degraded``, and oversized request lines get a clean ``ContractError``
response instead of a dropped connection.

Every handler calls the exact public flow a direct caller would —
:func:`~repro.sunmap.run_sunmap`,
:func:`~repro.synthesis.generate.synthesize_topologies`,
:func:`~repro.simulation.campaign.run_campaign` — so a response's
``result`` payload is byte-identical to the direct call, regardless of
cache backend, batching or dedup (asserted in the service tests).

Compute runs in worker threads (``asyncio.to_thread``), so the event
loop stays free to accept, validate and dedupe requests while the
engine grinds; the engine's own process executor supplies the real
parallelism when the service is started with ``jobs > 1``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
from time import perf_counter

from repro.apps import APPLICATIONS, load_application
from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.greedy import initial_greedy_mapping
from repro.core.selector import select_topology
from repro.engine.cache import EvaluationCache
from repro.engine.engine import ExplorationEngine
from repro.errors import ContractError, ReproError, ServiceBusyError
from repro.io import (
    core_graph_from_dict,
    custom_topology_from_dict,
    custom_topology_to_dict,
    selection_to_dict,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.contract import (
    DesignRequest,
    error_response,
    parse_request,
    DesignResponse,
)
from repro.service.jobqueue import BatchingEngine, InFlightTable
from repro.simulation.campaign import CampaignConfig, run_campaign
from repro.sunmap import run_sunmap
from repro.synthesis.generate import SynthesisConfig, synthesize_topologies
from repro.topology.library import make_topology

log = logging.getLogger(__name__)

_REQUESTS = obs_metrics.REGISTRY.counter(
    "repro_service_requests_total",
    "Requests received, by kind (invalid requests count under 'invalid')",
    ("kind",),
)
_BUSY = obs_metrics.REGISTRY.counter(
    "repro_service_busy_total", "Computations rejected by admission control"
)
_INFLIGHT = obs_metrics.REGISTRY.gauge(
    "repro_service_inflight", "Computations currently admitted"
)
_REQUEST_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_service_request_seconds",
    "End-to-end request latency by kind (compute kinds only)",
    ("kind",),
)


class DesignService:
    """One service instance: shared engine, in-flight table, counters.

    Args:
        engine: explicit inner engine (overrides ``jobs`` and
            ``cache_backend``). The service wraps it in a
            :class:`~repro.service.jobqueue.BatchingEngine`; do not
            submit to it directly while the service is live.
        jobs: engine worker processes (1 = in-thread serial execution).
        cache_backend: evaluation-cache storage — a
            :class:`~repro.engine.backends.CacheBackend` or a
            :func:`~repro.engine.backends.make_backend` spec string.
            With a persistent backend (``"sqlite:..."``/``"dir:..."``)
            the service starts warm: requests already answered by any
            earlier process cost zero evaluations.
        batch_window_s: straggler window of the job batcher (see
            :class:`~repro.service.jobqueue.BatchingEngine`).
        max_inflight: admission-control budget — the number of request
            *computations* allowed to run concurrently (in-flight dedup
            joiners are free: they cost no engine work). Past the
            budget, new computations are rejected with the typed
            retryable ``busy`` error instead of being queued without
            bound. ``None`` (default) disables admission control.
        max_request_bytes: largest accepted request line on the TCP
            transport; an oversized line gets a clean ``ContractError``
            response (and the connection survives) instead of an
            asyncio ``LimitOverrunError`` connection drop.
    """

    def __init__(
        self,
        engine: ExplorationEngine | None = None,
        jobs: int = 1,
        cache_backend=None,
        batch_window_s: float = 0.005,
        max_inflight: int | None = None,
        max_request_bytes: int = 1_048_576,
    ):
        """Build the service (see the class docstring for the knobs)."""
        if max_inflight is not None and max_inflight < 1:
            raise ReproError("max_inflight must be at least 1")
        if max_request_bytes < 1024:
            raise ReproError("max_request_bytes must be at least 1024")
        inner = engine or ExplorationEngine(
            jobs=jobs, cache_backend=cache_backend
        )
        self.engine = BatchingEngine(inner, window_s=batch_window_s)
        self.inflight = InFlightTable()
        self._ids = itertools.count(1)
        self.max_inflight = max_inflight
        self.max_request_bytes = max_request_bytes
        #: Requests received (including invalid ones).
        self.requests = 0
        #: Requests actually computed (excludes in-flight dedup joins).
        self.computed = 0
        #: Requests rejected by admission control.
        self.busy_rejections = 0
        #: Computations currently admitted (all state below is mutated
        #: on the event-loop thread only, so plain ints suffice).
        self._admitted = 0
        #: EWMA of recent compute times, feeding the busy response's
        #: ``retry_after_s`` hint.
        self._ewma_compute_s: float | None = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def handle(self, payload: dict) -> dict:
        """Process one raw request payload into a response dict.

        The full lifecycle: validate → normalize → fingerprint → join or
        own the in-flight computation → compute in a worker thread →
        respond. Contract violations and captured domain errors come
        back as error envelopes; only genuine bugs propagate.
        """
        self.requests += 1
        try:
            request = parse_request(payload)
        except ContractError as exc:
            _REQUESTS.inc(kind="invalid")
            raw_id = payload.get("id") if isinstance(payload, dict) else None
            raw_kind = (
                payload.get("kind") if isinstance(payload, dict) else None
            )
            return error_response(raw_kind, raw_id, exc).to_dict()
        _REQUESTS.inc(kind=request.kind)
        request_id = (
            request.request_id
            if request.request_id is not None
            else f"req-{next(self._ids)}"
        )
        if request.kind == "health":
            # Operational probe: answered on the event loop, never
            # admitted (a saturated service must still report itself).
            return DesignResponse(
                kind="health", request_id=request_id, result=self.health()
            ).to_dict()
        if request.kind == "metrics":
            # Observability probe: like health, answered on the event
            # loop even at saturation — the moment you most need it.
            return DesignResponse(
                kind="metrics", request_id=request_id, result=self.metrics()
            ).to_dict()
        start = perf_counter()
        deduped = False
        with obs_trace.span(
            "service.request", kind=request.kind, id=request_id
        ) as sp:
            try:
                if request.cache == "default":
                    fingerprint = request.fingerprint()
                    future, owner = self.inflight.join(fingerprint)
                    if owner:
                        try:
                            result = await self._compute_admitted(request)
                        except BaseException as exc:
                            self.inflight.reject(fingerprint, exc)
                            raise
                        self.inflight.resolve(fingerprint, result)
                    else:
                        deduped = True
                        result = await future
                else:
                    # refresh/bypass explicitly ask for a fresh
                    # computation, so they never join (or seed) the
                    # in-flight table.
                    result = await self._compute_admitted(request)
            except ReproError as exc:
                sp.set("deduped", deduped)
                sp.set("ok", False)
                _REQUEST_SECONDS.observe(
                    perf_counter() - start, kind=request.kind
                )
                response = error_response(request.kind, request_id, exc)
                response.stats = {"deduped": deduped}
                return response.to_dict()
            elapsed = perf_counter() - start
            sp.set("deduped", deduped)
            sp.set("ok", True)
        _REQUEST_SECONDS.observe(elapsed, kind=request.kind)
        return DesignResponse(
            kind=request.kind,
            request_id=request_id,
            result=result,
            stats={
                "elapsed_ms": round(elapsed * 1000.0, 3),
                "deduped": deduped,
            },
        ).to_dict()

    async def _compute_admitted(self, request: DesignRequest) -> dict:
        """Admit one computation against the budget, then run it.

        Called on the event-loop thread, so the admit/release counter
        needs no lock. Over budget, the request is rejected with the
        typed retryable ``busy`` error — nothing was computed, and
        ``retry_after_s`` estimates when a slot should free up.
        """
        if (
            self.max_inflight is not None
            and self._admitted >= self.max_inflight
        ):
            self.busy_rejections += 1
            _BUSY.inc()
            raise ServiceBusyError(
                f"service at capacity: {self._admitted}/"
                f"{self.max_inflight} computations in flight; retry later",
                retry_after_s=self._retry_hint(),
            )
        self._admitted += 1
        _INFLIGHT.set(self._admitted)
        start = perf_counter()
        try:
            return await asyncio.to_thread(self._compute, request)
        finally:
            self._admitted -= 1
            _INFLIGHT.set(self._admitted)
            elapsed = perf_counter() - start
            self._ewma_compute_s = (
                elapsed
                if self._ewma_compute_s is None
                else 0.7 * self._ewma_compute_s + 0.3 * elapsed
            )

    def _retry_hint(self) -> float:
        """Backoff hint for busy responses (recent compute-time EWMA)."""
        if self._ewma_compute_s is None:
            return 1.0
        return min(30.0, max(0.05, self._ewma_compute_s))

    def health(self) -> dict:
        """The ``health`` probe payload: load, budget and cache stats."""
        stats = self.engine.cache.stats
        return {
            "status": "ok",
            "in_flight": self._admitted,
            "max_inflight": self.max_inflight,
            "deduping": len(self.inflight),
            "requests": self.requests,
            "computed": self.computed,
            "busy_rejections": self.busy_rejections,
            "cache": {
                "entries": len(self.engine.cache),
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "write_errors": stats.write_errors,
            },
            "job_failures": dict(self.engine.failure_stats),
            "batches": self.engine.batches,
        }

    def metrics(self) -> dict:
        """The ``metrics`` probe payload: the unified registry snapshot.

        Served on the event loop like ``health`` — a saturated service
        still reports its counters, latency histograms and gauges (the
        full catalog lives in ``docs/OBSERVABILITY.md``).
        """
        return obs_metrics.get_registry().snapshot()

    def _compute(self, request: DesignRequest) -> dict:
        """Run one request's flow on a worker thread (blocking)."""
        engine = self._engine_for(request.cache)
        handler = {
            "select": self._run_select,
            "synthesize": self._run_synthesize,
            "campaign": self._run_campaign,
        }[request.kind]
        result = handler(request.params, engine)
        self.computed += 1
        return result

    def _engine_for(self, cache_control: str) -> ExplorationEngine:
        """Engine honouring the request's cache-control value.

        ``default`` shares the batching engine (warm reads, warm
        writes, cross-request batching); ``bypass`` runs on a private
        in-memory engine (no shared reads or writes); ``refresh`` runs
        write-only over the shared backend, overwriting warm entries
        with freshly computed — bit-identical — results.
        """
        if cache_control == "default":
            return self.engine
        if cache_control == "bypass":
            return ExplorationEngine(executor=self.engine.executor)
        return ExplorationEngine(
            executor=self.engine.executor,
            cache=EvaluationCache(
                backend=self.engine.cache.backend, write_only=True
            ),
        )

    # ------------------------------------------------------------------
    # per-kind handlers (each is the direct public flow, nothing more)
    # ------------------------------------------------------------------
    @staticmethod
    def _load_app(params: dict) -> CoreGraph:
        """Resolve the request's application reference."""
        if "core_graph" in params:
            return core_graph_from_dict(params["core_graph"])
        name = params["app"]
        if name not in APPLICATIONS:
            raise ContractError(
                f"$.params.app: unknown application {name!r}; built-ins: "
                f"{sorted(APPLICATIONS)}"
            )
        return load_application(name)

    def _run_select(self, params: dict, engine: ExplorationEngine) -> dict:
        """``select``: the paper's phase-1/2 flow via :func:`run_sunmap`."""
        app = self._load_app(params)
        constraints = Constraints(
            link_capacity_mb_s=params["link_capacity_mb_s"]
        )
        synthesize = params["synthesize"] or None
        if synthesize and params["fault_tolerance"]:
            synthesize = SynthesisConfig(
                fault_tolerance=params["fault_tolerance"]
            )
        if params["fallback"]:
            report = run_sunmap(
                app,
                routing=params["routing"],
                objective=params["objective"],
                constraints=constraints,
                generate=False,
                synthesize=synthesize,
                engine=engine,
            )
            selection = report.selection
            attempted = report.attempted_routings
        else:
            selection = select_topology(
                app,
                routing=params["routing"],
                objective=params["objective"],
                constraints=constraints,
                synthesize=synthesize,
                engine=engine,
            )
            attempted = [params["routing"]]
        return {
            "application": app.name,
            "attempted_routings": attempted,
            "selection": selection_to_dict(selection),
        }

    def _run_synthesize(
        self, params: dict, engine: ExplorationEngine
    ) -> dict:
        """``synthesize``: custom-fabric generation + ranking."""
        app = self._load_app(params)
        constraints = Constraints(
            link_capacity_mb_s=params["link_capacity_mb_s"]
        )
        config = SynthesisConfig(
            strategies=tuple(params["strategies"]),
            concentrations=tuple(params["concentrations"]),
            max_switch_degrees=tuple(params["max_switch_degrees"]),
            max_candidates=params["max_candidates"],
            fault_tolerance=params["fault_tolerance"],
        )
        result = synthesize_topologies(
            app,
            config=config,
            routing=params["routing"],
            objective=params["objective"],
            constraints=constraints,
            engine=engine,
        )
        payload = result.to_dict()
        best = result.best
        payload["best_topology"] = (
            None if best is None else custom_topology_to_dict(best.topology)
        )
        return payload

    def _run_campaign(self, params: dict, engine: ExplorationEngine) -> dict:
        """``campaign``: latency–throughput sweep of one mapped design."""
        app = (
            self._load_app(params)
            if ("app" in params or "core_graph" in params)
            else None
        )
        if "custom_topology" in params:
            topology = custom_topology_from_dict(params["custom_topology"])
        else:
            cores = params.get(
                "cores", None if app is None else app.num_cores
            )
            if cores is None:
                raise ContractError(
                    "$.params: a library 'topology' needs a size; add "
                    "'cores', an application, or send 'custom_topology'"
                )
            topology = make_topology(params["topology"], cores)
        # The campaign validates a mapped design; as in the CLI, the
        # deterministic greedy phase-1 mapping stands in for a full
        # search (submit a 'select' request for the optimized mapping).
        assignment = (
            None if app is None else initial_greedy_mapping(app, topology)
        )
        config = CampaignConfig(
            rates=tuple(params["rates"]),
            patterns=tuple(params["patterns"]),
            seeds=tuple(params["seeds"]),
            warmup=params["warmup"],
            measure=params["measure"],
            drain=params["drain"],
            faults=params["faults"],
            fault_seeds=tuple(params["fault_seeds"]),
            # Absent means "exact" (kept out of PARAM_DEFAULTS so
            # pre-batch campaign fingerprints stay stable).
            sim_engine=params.get("sim_engine", "exact"),
        )
        result = run_campaign(
            topology,
            core_graph=app,
            assignment=assignment,
            config=config,
            engine=engine,
            # A request deadline degrades gracefully: the sweep stops
            # scheduling chunks once the budget is spent and the
            # partial result comes back flagged "degraded": true.
            deadline_s=params.get("deadline_s"),
        )
        return result.to_dict()

    # ------------------------------------------------------------------
    # transport: newline-delimited JSON over TCP
    # ------------------------------------------------------------------
    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one client connection.

        Each input line is an independent request processed as its own
        task; response lines are written **as computations complete**,
        not in request order — clients match them back by ``id``. This
        is the streaming half of the contract: a batch of submitted
        jobs trickles back per-job instead of blocking on the slowest.
        """
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(raw: bytes) -> None:
            """Handle one request line and stream its response out."""
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                response = error_response(
                    None, None, ContractError(f"invalid JSON: {exc}")
                ).to_dict()
            else:
                try:
                    response = await self.handle(payload)
                except Exception as exc:  # keep the connection alive
                    log.exception("internal error handling request")
                    response = error_response(
                        payload.get("kind") if isinstance(payload, dict)
                        else None,
                        payload.get("id") if isinstance(payload, dict)
                        else None,
                        exc,
                    ).to_dict()
            async with write_lock:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()

        while True:
            try:
                line = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as exc:
                # EOF: a final unterminated line is still a request.
                line = exc.partial
                if line.strip():
                    task = asyncio.create_task(respond(line))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                break
            except asyncio.LimitOverrunError:
                # The line exceeds max_request_bytes: answer with a
                # typed contract error and discard through the next
                # newline — the connection (and any pipelined requests
                # after the newline) survives.
                response = error_response(
                    None,
                    None,
                    ContractError(
                        "request line exceeds the server's "
                        f"{self.max_request_bytes}-byte limit"
                    ),
                ).to_dict()
                async with write_lock:
                    writer.write(
                        json.dumps(response).encode("utf-8") + b"\n"
                    )
                    await writer.drain()
                if not await _discard_oversized_line(reader):
                    break
                continue
            if not line.strip():
                continue
            task = asyncio.create_task(respond(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
            # Every response is already written; a server shutdown
            # cancelling this final handshake is not an error.
            pass

    async def start(
        self, host: str = "127.0.0.1", port: int = 8787
    ) -> asyncio.base_events.Server:
        """Bind and return the listening server (``port=0`` = ephemeral)."""
        return await asyncio.start_server(
            self.handle_connection, host, port,
            limit=self.max_request_bytes,
        )

    async def serve(self, host: str = "127.0.0.1", port: int = 8787) -> None:
        """Serve requests until cancelled."""
        server = await self.start(host, port)
        sockets = ", ".join(
            str(sock.getsockname()) for sock in server.sockets
        )
        log.info("design service listening on %s", sockets)
        async with server:
            await server.serve_forever()


async def _discard_oversized_line(reader: asyncio.StreamReader) -> bool:
    """Consume the rest of an over-limit request line.

    After a ``LimitOverrunError`` the oversized data is still buffered;
    ``readuntil`` only ever consumes *through* a separator, so eating
    ``exc.consumed``-byte chunks until the newline arrives discards the
    bad line without touching any pipelined request behind it. Returns
    ``False`` on EOF (nothing left to serve).
    """
    while True:
        try:
            await reader.readuntil(b"\n")
            return True
        except asyncio.LimitOverrunError as exc:
            await reader.readexactly(exc.consumed)
        except asyncio.IncompleteReadError:
            return False


# ---------------------------------------------------------------------------
# client helpers
# ---------------------------------------------------------------------------
async def submit_async(
    payloads: list[dict], host: str = "127.0.0.1", port: int = 8787
):
    """Submit requests over one connection; yield responses as they land.

    Responses arrive in completion order (the server streams them);
    match them to requests by ``id``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for payload in payloads:
            writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()
        for _ in payloads:
            line = await reader.readline()
            if not line:
                raise ReproError(
                    "server closed the connection before answering every "
                    "request"
                )
            yield json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


def submit(
    payloads: list[dict], host: str = "127.0.0.1", port: int = 8787
) -> list[dict]:
    """Blocking :func:`submit_async` wrapper (completion-order list)."""
    async def _collect() -> list[dict]:
        return [r async for r in submit_async(payloads, host, port)]

    return asyncio.run(_collect())
