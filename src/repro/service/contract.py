"""The design service's typed JSON request/response contract.

One request = one design question — "which topology for this app?"
(``select``), "what custom fabric suits it?" (``synthesize``) or "how
does this design behave under load?" (``campaign``) — wrapped in a
versioned envelope::

    {"v": 1, "id": "job-1", "kind": "select", "cache": "default",
     "params": {"app": "vopd", "routing": "MP", "objective": "hops"}}

Responses echo the envelope and carry either a ``result`` payload or an
``error`` object, never both. The full contract, with one worked example
per request kind, lives in ``docs/SERVICE_API.md`` — that document and
this module are maintained in lockstep.

Validation happens here, against :data:`ENVELOPE_SCHEMA` and the
per-kind :data:`PARAM_SCHEMAS` (JSON-Schema-shaped dicts checked by a
dependency-free validator), so malformed requests fail with a precise
:class:`~repro.errors.ContractError` before any engine work starts.
:func:`parse_request` normalizes a valid payload into a
:class:`DesignRequest` with every default applied; the normalized form
is what :meth:`DesignRequest.fingerprint` hashes, so two requests that
differ only in spelling (an omitted default vs. an explicit one) dedupe
to one computation in flight.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ContractError, RetryableError, ServiceBusyError

#: Contract version carried in every envelope; a request with another
#: version is rejected (the server cannot guess what its fields mean).
CONTRACT_VERSION = 1

#: Request kinds the service accepts. ``health`` is the operational
#: probe: no engine work, returns in-flight/budget/cache statistics.
#: ``metrics`` is its sibling: no engine work, returns the unified
#: metrics-registry snapshot (see ``docs/OBSERVABILITY.md``).
KINDS = ("select", "synthesize", "campaign", "health", "metrics")

#: Cache-control values: ``default`` serves warm results and joins
#: in-flight duplicates; ``refresh`` recomputes and overwrites warm
#: entries; ``bypass`` computes without reading or writing the shared
#: store (see docs/SERVICE_API.md, "Cache control").
CACHE_CONTROLS = ("default", "refresh", "bypass")

_ROUTINGS = ("DO", "MP", "SM", "SA")
_OBJECTIVES = ("hops", "area", "power", "bandwidth")

#: Schema of the request envelope (JSON-Schema draft-07 subset).
ENVELOPE_SCHEMA = {
    "type": "object",
    "required": ["v", "kind", "params"],
    "additionalProperties": False,
    "properties": {
        "v": {"const": CONTRACT_VERSION},
        "id": {"type": "string"},
        "kind": {"enum": list(KINDS)},
        "cache": {"enum": list(CACHE_CONTROLS)},
        "params": {"type": "object"},
    },
}

#: Shared application reference: exactly one of ``app`` (a built-in
#: benchmark name) or ``core_graph`` (an inline ``repro.io`` core-graph
#: document) — the exactly-one rule is enforced by :func:`parse_request`
#: (JSON-Schema ``oneOf`` is deliberately out of the validator subset).
_APP_PROPERTIES = {
    "app": {"type": "string"},
    "core_graph": {"type": "object"},
}

#: Per-kind ``params`` schemas.
PARAM_SCHEMAS = {
    "select": {
        "type": "object",
        "additionalProperties": False,
        "properties": {
            **_APP_PROPERTIES,
            "routing": {"enum": list(_ROUTINGS)},
            "objective": {"enum": list(_OBJECTIVES)},
            "link_capacity_mb_s": {
                "type": "number", "exclusiveMinimum": 0,
            },
            "fallback": {"type": "boolean"},
            "synthesize": {"type": "boolean"},
            "fault_tolerance": {"type": "integer", "minimum": 0},
        },
    },
    "synthesize": {
        "type": "object",
        "additionalProperties": False,
        "properties": {
            **_APP_PROPERTIES,
            "routing": {"enum": list(_ROUTINGS)},
            "objective": {"enum": list(_OBJECTIVES)},
            "link_capacity_mb_s": {
                "type": "number", "exclusiveMinimum": 0,
            },
            "strategies": {
                "type": "array", "minItems": 1,
                "items": {"type": "string"},
            },
            "concentrations": {
                "type": "array", "minItems": 1,
                "items": {"type": "integer", "minimum": 1},
            },
            "max_switch_degrees": {
                "type": "array", "minItems": 1,
                "items": {"type": "integer", "minimum": 1},
            },
            "max_candidates": {"type": "integer", "minimum": 1},
            "fault_tolerance": {"type": "integer", "minimum": 0},
        },
    },
    "campaign": {
        "type": "object",
        "additionalProperties": False,
        "properties": {
            **_APP_PROPERTIES,
            "topology": {"type": "string"},
            "custom_topology": {"type": "object"},
            "cores": {"type": "integer", "minimum": 2},
            "rates": {
                "type": "array", "minItems": 1,
                "items": {"type": "number", "exclusiveMinimum": 0},
            },
            "patterns": {
                "type": "array", "minItems": 1,
                "items": {"type": "string"},
            },
            "seeds": {
                "type": "array", "minItems": 1,
                "items": {"type": "integer"},
            },
            "warmup": {"type": "integer", "minimum": 0},
            "measure": {"type": "integer", "minimum": 1},
            "drain": {"type": "integer", "minimum": 0},
            "faults": {"type": "integer", "minimum": 0},
            "fault_seeds": {
                "type": "array", "minItems": 1,
                "items": {"type": "integer"},
            },
            "deadline_s": {"type": "number", "exclusiveMinimum": 0},
            "sim_engine": {"enum": ["exact", "batch"]},
        },
    },
    # The health probe takes no parameters (send "params": {}).
    "health": {
        "type": "object",
        "additionalProperties": False,
        "properties": {},
    },
    # The metrics probe likewise takes no parameters.
    "metrics": {
        "type": "object",
        "additionalProperties": False,
        "properties": {},
    },
}

#: Defaults applied by :func:`parse_request` (normalized into the
#: request, so fingerprints are spelling-independent). Campaign sweep
#: defaults intentionally mirror
#: :class:`~repro.simulation.campaign.CampaignConfig`.
PARAM_DEFAULTS = {
    "select": {
        "routing": "MP",
        "objective": "hops",
        "link_capacity_mb_s": 500.0,
        "fallback": True,
        "synthesize": False,
        "fault_tolerance": 0,
    },
    "synthesize": {
        "routing": "MP",
        "objective": "hops",
        "link_capacity_mb_s": 500.0,
        "strategies": ["greedy", "bisect", "bounded"],
        "concentrations": [2, 3, 4],
        "max_switch_degrees": [4, 6, 8],
        "max_candidates": 12,
        "fault_tolerance": 0,
    },
    "campaign": {
        "rates": [0.05, 0.1, 0.2, 0.35, 0.5, 0.7],
        "patterns": ["app", "uniform", "hotspot", "transpose"],
        "seeds": [1],
        "warmup": 500,
        "measure": 2000,
        "drain": 1500,
        "faults": 0,
        "fault_seeds": [1],
        # deadline_s intentionally has no default: absence means "run
        # the whole sweep", and a normalized default would change every
        # existing campaign fingerprint. sim_engine likewise: absence
        # means "exact", and normalizing it in would re-fingerprint
        # every pre-batch campaign request.
    },
    "health": {},
    "metrics": {},
}


# ---------------------------------------------------------------------------
# minimal JSON-Schema validator
# ---------------------------------------------------------------------------
_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def validate(value, schema: dict, path: str = "$") -> None:
    """Check ``value`` against a JSON-Schema subset; raise on violation.

    Supported keywords: ``type``, ``enum``, ``const``, ``required``,
    ``properties``, ``additionalProperties`` (boolean form), ``items``,
    ``minimum``, ``exclusiveMinimum``, ``minItems``. That subset covers
    the whole contract; anything fancier belongs in
    :func:`parse_request`'s explicit checks, where the error message can
    say *why* the rule exists.

    Raises:
        ContractError: naming the offending path and constraint.
    """
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        ok = isinstance(value, py_type)
        if ok and expected in ("integer", "number") and isinstance(value, bool):
            ok = False  # bool is an int subclass; JSON says it is not
        if not ok:
            raise ContractError(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )
    if "const" in schema and value != schema["const"]:
        raise ContractError(
            f"{path}: must be {schema['const']!r}, got {value!r}"
        )
    if "enum" in schema and value not in schema["enum"]:
        raise ContractError(
            f"{path}: {value!r} is not one of {schema['enum']}"
        )
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            raise ContractError(
                f"{path}: {value} is below the minimum {schema['minimum']}"
            )
        if (
            "exclusiveMinimum" in schema
            and value <= schema["exclusiveMinimum"]
        ):
            raise ContractError(
                f"{path}: {value} must be greater than "
                f"{schema['exclusiveMinimum']}"
            )
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                raise ContractError(f"{path}: missing required field {name!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            unknown = sorted(set(value) - set(properties))
            if unknown:
                raise ContractError(
                    f"{path}: unknown field(s) {unknown}; allowed: "
                    f"{sorted(properties)}"
                )
        for name, sub in properties.items():
            if name in value:
                validate(value[name], sub, f"{path}.{name}")
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            raise ContractError(
                f"{path}: needs at least {schema['minItems']} item(s)"
            )
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                validate(item, items, f"{path}[{i}]")


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DesignRequest:
    """One validated, normalized design request.

    ``params`` has every contract default applied, so two requests that
    express the same work — with or without explicit defaults — are
    equal and share a :meth:`fingerprint`.
    """

    kind: str
    params: dict
    request_id: str | None = None
    cache: str = "default"
    v: int = CONTRACT_VERSION

    def fingerprint(self) -> str:
        """Content fingerprint used for in-flight request dedup.

        Hashes the canonical JSON of ``(v, kind, params)``; ``id`` is
        caller-chosen labelling and ``cache`` is delivery policy, so
        neither changes what is computed.
        """
        canonical = json.dumps(
            {"v": self.v, "kind": self.kind, "params": self.params},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def parse_request(payload: dict) -> DesignRequest:
    """Validate a raw request payload and normalize it.

    Checks the envelope against :data:`ENVELOPE_SCHEMA`, the params
    against the kind's :data:`PARAM_SCHEMAS` entry, applies
    :data:`PARAM_DEFAULTS`, and enforces the cross-field rules the
    schema subset cannot express (exactly one application reference;
    a campaign needs a topology, and its ``app`` pattern needs an
    application).

    Raises:
        ContractError: on any violation, naming the offending field.
    """
    if not isinstance(payload, dict):
        raise ContractError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    validate(payload, ENVELOPE_SCHEMA)
    kind = payload["kind"]
    params = dict(payload["params"])
    validate(params, PARAM_SCHEMAS[kind], path="$.params")
    normalized = {**PARAM_DEFAULTS[kind], **params}

    has_app = "app" in normalized
    has_inline = "core_graph" in normalized
    if kind in ("select", "synthesize"):
        if has_app == has_inline:
            raise ContractError(
                "$.params: provide exactly one of 'app' (built-in name) "
                "or 'core_graph' (inline document)"
            )
    elif kind == "campaign":
        if has_app and has_inline:
            raise ContractError(
                "$.params: provide at most one of 'app' and 'core_graph'"
            )
        has_topology = "topology" in normalized
        has_custom = "custom_topology" in normalized
        if has_topology == has_custom:
            raise ContractError(
                "$.params: provide exactly one of 'topology' (library "
                "name) or 'custom_topology' (inline document)"
            )
        if (
            has_topology
            and "cores" not in normalized
            and not (has_app or has_inline)
        ):
            raise ContractError(
                "$.params: a library 'topology' needs a size; add "
                "'cores' or an application ('app'/'core_graph')"
            )
        if "app" in normalized["patterns"] and not (has_app or has_inline):
            raise ContractError(
                "$.params.patterns: the 'app' trace pattern needs an "
                "application; add 'app' or 'core_graph', or drop the "
                "pattern"
            )
    return DesignRequest(
        kind=kind,
        params=normalized,
        request_id=payload.get("id"),
        cache=payload.get("cache", "default"),
    )


# ---------------------------------------------------------------------------
# responses
# ---------------------------------------------------------------------------
@dataclass
class DesignResponse:
    """One response envelope: ``result`` XOR ``error``.

    ``result`` is the deterministic payload — byte-identical to the
    equivalent direct :func:`~repro.sunmap.run_sunmap` /
    :func:`~repro.synthesis.synthesize_topologies` /
    :func:`~repro.simulation.campaign.run_campaign` call, asserted in
    tests. ``stats`` carries delivery metadata (timing, dedup) that
    legitimately varies between runs and is therefore kept out of
    ``result``.
    """

    kind: str
    request_id: str | None = None
    result: dict | None = None
    error: dict | None = None
    stats: dict = field(default_factory=dict)
    v: int = CONTRACT_VERSION

    @property
    def ok(self) -> bool:
        """Whether the request produced a result."""
        return self.error is None

    def to_dict(self) -> dict:
        """The JSON-ready envelope sent over the wire."""
        payload = {
            "v": self.v,
            "id": self.request_id,
            "kind": self.kind,
            "ok": self.ok,
        }
        if self.ok:
            payload["result"] = self.result
        else:
            payload["error"] = self.error
        if self.stats:
            payload["stats"] = self.stats
        return payload


def error_response(
    kind: str | None,
    request_id: str | None,
    exc: BaseException,
) -> DesignResponse:
    """Wrap an exception in the contract's error envelope.

    The ``type`` field is the exception class name (clients branch on
    the :mod:`repro.errors` hierarchy names); ``message`` is the
    human-readable reason. Transient failures additionally carry
    ``retryable: true``, and an admission-control rejection
    (:class:`~repro.errors.ServiceBusyError`) is the typed ``busy``
    error: ``code: "busy"`` plus a ``retry_after_s`` backoff hint —
    nothing was computed, resubmitting the same request is safe.
    """
    error: dict = {"type": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, RetryableError):
        error["retryable"] = True
    if isinstance(exc, ServiceBusyError):
        error["code"] = "busy"
        error["retry_after_s"] = round(exc.retry_after_s, 3)
    return DesignResponse(
        kind=kind or "unknown",
        request_id=request_id,
        error=error,
    )
