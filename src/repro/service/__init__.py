"""Design-service layer: one warm engine answering many design requests.

This package turns the library's batch flows into a long-lived service:

* :mod:`~repro.service.contract` — the versioned JSON request/response
  contract (``select`` / ``synthesize`` / ``campaign`` envelopes,
  validation, normalization, request fingerprints). Documented with
  worked examples in ``docs/SERVICE_API.md``.
* :mod:`~repro.service.jobqueue` — in-flight request dedup and
  cross-request job batching, both bit-neutral by construction.
* :mod:`~repro.service.server` — the asyncio server
  (:class:`DesignService`), its newline-delimited-JSON transport, and
  the :func:`submit` client used by ``repro submit``.

The service guarantees the same invariant as every other layer: a
response's ``result`` is byte-identical to the equivalent direct
library call, whatever the cache backend, batching or concurrency
(``docs/ARCHITECTURE.md`` walks the full request lifecycle).
"""

from repro.service.contract import (
    CACHE_CONTROLS,
    CONTRACT_VERSION,
    KINDS,
    DesignRequest,
    DesignResponse,
    error_response,
    parse_request,
)
from repro.service.jobqueue import BatchingEngine, InFlightTable
from repro.service.server import DesignService, submit, submit_async

__all__ = [
    "CACHE_CONTROLS",
    "CONTRACT_VERSION",
    "KINDS",
    "BatchingEngine",
    "DesignRequest",
    "DesignResponse",
    "DesignService",
    "InFlightTable",
    "error_response",
    "parse_request",
    "submit",
    "submit_async",
]
