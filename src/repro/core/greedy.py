"""Initial greedy mapping (Figure 5, step 1).

"First the core that has maximum communication is placed on to the NoC
node with maximum neighbors. Then the core that communicates the most
with placed cores is chosen. This core is placed onto the NoC node that
minimizes the cost function and this procedure is repeated until all the
cores are placed."

The placement cost used here is the communication-weighted hop distance
to the already-placed cores — a routing-free proxy that all objectives
share (the swap phase then optimizes the true objective).
"""

from __future__ import annotations

from repro.core.coregraph import CoreGraph
from repro.errors import MappingInfeasibleError
from repro.topology.base import Topology


def _slot_degree(topology: Topology, slot: int) -> int:
    """Network degree of the switch a slot injects into."""
    sw = topology.switch_of(slot)
    return sum(
        1
        for _, _, d in topology.graph.out_edges(sw, data=True)
        if d["kind"] == "net"
    )


def initial_greedy_mapping(
    core_graph: CoreGraph, topology: Topology
) -> dict[int, int]:
    """Greedy seed assignment of cores to terminal slots."""
    n = core_graph.num_cores
    if not topology.fits(n):
        raise MappingInfeasibleError(
            f"{core_graph.name}: {n} cores exceed the {topology.num_slots} "
            f"slots of {topology.name}"
        )

    # Core order: total communication, heaviest first (deterministic ties).
    unplaced = sorted(
        range(n), key=lambda c: (-core_graph.core_traffic(c), c)
    )
    free_slots = list(range(topology.num_slots))
    assignment: dict[int, int] = {}

    # Seed: heaviest core on the best-connected slot.
    first = unplaced.pop(0)
    seed_slot = max(free_slots, key=lambda s: (_slot_degree(topology, s), -s))
    assignment[first] = seed_slot
    free_slots.remove(seed_slot)

    while unplaced:
        # Core talking the most with already-placed cores.
        core = max(
            unplaced,
            key=lambda c: (
                sum(core_graph.comm_between(c, p) for p in assignment),
                -c,
            ),
        )
        unplaced.remove(core)
        # Slot minimizing communication-weighted distance to placed cores.
        def placement_cost(slot: int) -> tuple:
            cost = sum(
                core_graph.comm_between(core, placed)
                * topology.hop_distance(slot, placed_slot)
                for placed, placed_slot in assignment.items()
            )
            return (cost, slot)

        best_slot = min(free_slots, key=placement_cost)
        assignment[core] = best_slot
        free_slots.remove(best_slot)
    return assignment
