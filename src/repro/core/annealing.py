"""Alternative mapping optimizers: simulated annealing and random search.

The paper's mapping engine is greedy seeding + pairwise-swap descent
(Figure 5). These optimizers explore the same search space with
different strategies, serving two purposes:

* a **baseline** (uniform random search) that quantifies how much the
  structured search buys;
* a **stronger optimizer** (simulated annealing over slot swaps) that
  bounds how far from optimal the paper's algorithm lands.

``bench_ablation_optimizers`` compares all of them. Both optimizers are
fully deterministic given their seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.engine.cache import EvaluationCache

import math
import random
from dataclasses import dataclass

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation
from repro.core.greedy import initial_greedy_mapping
from repro.core.mapper import _resolve, _score
from repro.core.memo import MemoizedMappingEvaluator
from repro.errors import ReproError
from repro.physical.estimate import NetworkEstimator
from repro.topology.base import Topology

#: Penalty offset making any infeasible mapping worse than any feasible
#: one when scalarizing (costs in this library stay far below this).
_INFEASIBLE_OFFSET = 1e9


def _scalar(evaluation: MappingEvaluation) -> float:
    """Scalarized sort key for acceptance tests."""
    if evaluation.feasible:
        return evaluation.cost
    return (
        _INFEASIBLE_OFFSET
        + 1e3 * len(evaluation.qos_violations)
        + evaluation.overflow_mb_s
        + evaluation.max_link_load
    )


@dataclass
class AnnealingConfig:
    """Simulated-annealing schedule."""

    iterations: int = 1500
    initial_temperature: float | None = None  # None = auto-calibrated
    cooling: float = 0.997
    seed: int = 0
    floorplan_each_step: bool = False
    #: Route each move as a delta against the current state through the
    #: incremental engine (bit-identical; off = from-scratch A/B path).
    incremental: bool = True

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if not 0.5 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0.5, 1)")


def _random_swap_slots(
    assignment: dict, num_slots: int, rng: random.Random
) -> tuple[int, int]:
    """Pick the slot pair of a random swap move.

    The target slot is resampled until it differs from the source slot,
    so every call (on a topology with at least two slots) proposes a
    real move — the previous early-return on ``s1 == s2`` silently
    wasted an annealing iteration *and* skipped its cooling step.
    Returns ``(s1, s1)`` only in the degenerate single-slot case. The
    RNG draw sequence matches the historical dict-building helper, so
    seeded trajectories are unchanged.
    """
    cores = list(assignment)
    c1 = rng.choice(cores)
    s1 = assignment[c1]
    if num_slots < 2:
        return s1, s1  # nowhere to move: degenerate single-slot case
    s2 = rng.randrange(num_slots)
    while s2 == s1:
        s2 = rng.randrange(num_slots)
    return s1, s2


def _random_swap(assignment: dict, num_slots: int, rng: random.Random) -> dict:
    """Swap two slots (possibly moving a core into a free slot)."""
    from repro.routing.incremental import swap_assignment

    s1, s2 = _random_swap_slots(assignment, num_slots, rng)
    if s1 == s2:
        return dict(assignment)
    return swap_assignment(assignment, s1, s2)


def simulated_annealing_map(
    core_graph: CoreGraph,
    topology: Topology,
    routing="MP",
    objective="hops",
    constraints: Constraints | None = None,
    estimator: NetworkEstimator | None = None,
    config: AnnealingConfig | None = None,
    initial_assignment: dict | None = None,
    cache: EvaluationCache | None = None,
) -> MappingEvaluation:
    """Anneal over slot-swap moves.

    Args:
        initial_assignment: starting point; defaults to the greedy seed.
            Passing the swap search's result turns annealing into a
            refinement pass (the returned mapping is never worse than
            the starting one).
        cache: optional shared :class:`~repro.engine.cache.
            EvaluationCache`; ``None`` uses a private per-run cache.
            Either way a revisited assignment (walks returning to an
            earlier state) is never routed twice.
    """
    routing, objective = _resolve(routing, objective)
    constraints = constraints or Constraints()
    estimator = estimator or NetworkEstimator()
    config = config or AnnealingConfig()
    rng = random.Random(config.seed)
    with_floorplan = config.floorplan_each_step or objective.needs_floorplan
    memo = MemoizedMappingEvaluator(
        core_graph, topology, routing, constraints, estimator,
        cache=cache, objective=objective,
    )

    def run(assignment):
        ev = memo.evaluate(assignment, with_floorplan=with_floorplan)
        return _score(ev, objective)

    def run_swap(base, s1, s2):
        # Delta evaluation against the current state: the previous
        # move's record is the engine's most recent, so accepted walks
        # stay incremental end to end.
        if config.incremental:
            ev = memo.evaluate_swap(
                base.assignment, s1, s2, with_floorplan=with_floorplan
            )
        else:
            from repro.routing.incremental import swap_assignment

            ev = memo.evaluate(
                swap_assignment(base.assignment, s1, s2),
                with_floorplan=with_floorplan,
            )
        return _score(ev, objective)

    if initial_assignment is None:
        initial_assignment = initial_greedy_mapping(core_graph, topology)
    current = run(dict(initial_assignment))
    current_scalar = _scalar(current)
    best = current
    best_scalar = current_scalar

    temperature = config.initial_temperature
    if temperature is None:
        # Calibrate from the move landscape, not the scalar magnitude
        # (the infeasibility offset would otherwise make T astronomical):
        # probe a handful of random swaps and set T0 to the mean |delta|,
        # giving roughly 40-60% initial acceptance of uphill moves.
        deltas = []
        for _ in range(15):
            s1, s2 = _random_swap_slots(
                current.assignment, topology.num_slots, rng
            )
            if s1 == s2:
                continue
            probe = run_swap(current, s1, s2)
            deltas.append(abs(_scalar(probe) - current_scalar))
        meaningful = [d for d in deltas if 0 < d < _INFEASIBLE_OFFSET / 2]
        temperature = max(1e-6, sum(meaningful) / len(meaningful)) if (
            meaningful
        ) else 1.0

    # The acceptance test compares cached scalars: _scalar(current) and
    # _scalar(best) are invariant between moves, so recomputing them
    # every iteration (the old behaviour) did redundant work per step.
    for _ in range(config.iterations):
        s1, s2 = _random_swap_slots(
            current.assignment, topology.num_slots, rng
        )
        if s1 == s2:
            continue  # degenerate single-slot topology: no real move
        candidate = run_swap(current, s1, s2)
        candidate_scalar = _scalar(candidate)
        delta = candidate_scalar - current_scalar
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current = candidate
            current_scalar = candidate_scalar
            if current_scalar < best_scalar:
                best = current
                best_scalar = current_scalar
        temperature *= config.cooling

    final = memo.evaluate(best.assignment, with_floorplan=True)
    return _score(final, objective)


def random_search_map(
    core_graph: CoreGraph,
    topology: Topology,
    routing="MP",
    objective="hops",
    constraints: Constraints | None = None,
    estimator: NetworkEstimator | None = None,
    iterations: int = 1500,
    seed: int = 0,
    cache: EvaluationCache | None = None,
) -> MappingEvaluation:
    """Uniform random assignments — the unstructured baseline.

    Args:
        cache: optional shared :class:`~repro.engine.cache.
            EvaluationCache`, like the other optimizers; ``None`` uses a
            private per-run cache. Either way duplicate random samples
            (likely on small topologies) are never routed twice.
    """
    routing, objective = _resolve(routing, objective)
    constraints = constraints or Constraints()
    estimator = estimator or NetworkEstimator()
    rng = random.Random(seed)
    slots = list(range(topology.num_slots))
    n = core_graph.num_cores
    memo = MemoizedMappingEvaluator(
        core_graph, topology, routing, constraints, estimator,
        cache=cache, objective=objective,
    )

    best: MappingEvaluation | None = None
    best_scalar = math.inf
    for _ in range(iterations):
        chosen = rng.sample(slots, n)
        assignment = {core: slot for core, slot in zip(range(n), chosen)}
        ev = memo.evaluate(assignment, with_floorplan=False)
        _score(ev, objective)
        scalar = _scalar(ev)
        if best is None or scalar < best_scalar:
            best = ev
            best_scalar = scalar
    if best is None:
        # iterations < 1 (or an empty search space) would otherwise
        # surface as an AttributeError on ``best.assignment`` below.
        raise ReproError(
            f"random search evaluated no mapping of {core_graph.name!r} "
            f"onto {topology.name!r} (iterations={iterations}); use "
            f"iterations >= 1"
        )
    final = memo.evaluate(best.assignment, with_floorplan=True)
    return _score(final, objective)
