"""Phase 2: topology selection (Figure 4).

"In the second phase, the various topologies (with mappings produced from
the first phase) are evaluated for several design objectives and the best
topology is chosen."

:func:`select_topology` submits one evaluation job per library topology
to the :class:`~repro.engine.ExplorationEngine` (serial by default,
``jobs=N`` for a process pool), collects the evaluations into a
paper-style comparison table (Figures 6, 7(b), 8(c,d)), and picks the
feasible mapping with the lowest objective cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation
from repro.core.mapper import MapperConfig
from repro.core.objectives import make_objective
from repro.engine.engine import ExplorationEngine
from repro.physical.estimate import NetworkEstimator
from repro.topology.base import Topology
from repro.topology.library import standard_library


@dataclass
class SelectionResult:
    """Outcome of a library-wide selection run.

    When synthesis is enabled, synthesized fabrics appear in
    ``evaluations``/``errors`` alongside the library entries (their
    names carry the ``syn-`` spec labels) and are listed in
    ``synthesized`` so tables and reports can mark them.
    """

    objective_name: str
    routing_code: str
    evaluations: dict[str, MappingEvaluation] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    #: Names of entries produced by topology synthesis (subset of the
    #: evaluations/errors keys), in candidate order.
    synthesized: list[str] = field(default_factory=list)

    @property
    def feasible(self) -> dict[str, MappingEvaluation]:
        return {
            name: ev for name, ev in self.evaluations.items() if ev.feasible
        }

    @property
    def best_name(self) -> str | None:
        feasible = self.feasible
        if not feasible:
            return None
        return min(feasible, key=lambda n: (feasible[n].cost, n))

    @property
    def best(self) -> MappingEvaluation | None:
        name = self.best_name
        return None if name is None else self.evaluations[name]

    def table(self) -> list[dict]:
        """Rows in library order; infeasible entries carry their reason."""
        synthesized = set(self.synthesized)
        rows = []
        for name, ev in self.evaluations.items():
            row = ev.summary_row()
            row["selected"] = name == self.best_name
            if not ev.feasible:
                row["note"] = "no feasible mapping"
            if synthesized:
                row["synthesized"] = name in synthesized
            rows.append(row)
        for name, reason in self.errors.items():
            row = {
                "topology": name,
                "routing": self.routing_code,
                "feasible": False,
                "selected": False,
                "note": reason,
            }
            if synthesized:
                row["synthesized"] = name in synthesized
            rows.append(row)
        return rows

    def format_table(self) -> str:
        """Human-readable table (CLI / examples)."""
        header = (
            f"{'topology':<22}{'ok':<4}{'avg hops':>9}{'area mm2':>10}"
            f"{'power mW':>10}{'max load':>10}  note"
        )
        lines = [header, "-" * len(header)]
        for row in self.table():
            mark = "*" if row.get("selected") else ""
            lines.append(
                f"{row['topology'] + mark:<22}"
                f"{'y' if row['feasible'] else 'n':<4}"
                f"{_fmt(row.get('avg_hops')):>9}"
                f"{_fmt(row.get('area_mm2')):>10}"
                f"{_fmt(row.get('power_mw')):>10}"
                f"{_fmt(row.get('max_link_load_mb_s')):>10}"
                f"  {row.get('note', '')}"
            )
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}" if isinstance(value, float) else str(value)


def select_topology(
    core_graph: CoreGraph,
    topologies: list[Topology] | None = None,
    routing: str = "MP",
    objective="hops",
    constraints: Constraints | None = None,
    estimator: NetworkEstimator | None = None,
    config: MapperConfig | None = None,
    jobs: int = 1,
    engine: ExplorationEngine | None = None,
    synthesize=None,
    cache_backend=None,
    journal=None,
) -> SelectionResult:
    """Map onto every library topology and choose the best.

    Args:
        topologies: explicit topology instances; defaults to the paper's
            standard five-entry library sized for the application.
        objective: an objective name or an
            :class:`~repro.core.objectives.Objective` instance (e.g. a
            :class:`~repro.core.objectives.WeightedObjective`).
        jobs: parallel worker processes (1 = serial). Results are
            identical to the serial path regardless of ``jobs``.
        engine: explicit engine (overrides ``jobs``); pass the same
            engine across calls to reuse its evaluation cache.
        cache_backend: persistent cache storage spec (e.g.
            ``"sqlite:evals.db"``, ``"dir:.cache"``) for the engine
            built when ``engine`` is not given.
        journal: optional :class:`~repro.engine.journal.RunJournal`;
            completed evaluations are appended and (on a resume
            journal) replayed bit-identically, so an interrupted
            selection resumes instead of restarting.
        synthesize: race automatically synthesized custom fabrics
            against the library in the same table: a
            :class:`~repro.synthesis.SynthesisConfig`, or ``True`` for
            the default sweep. Synthesized candidates are evaluated
            under the same routing/objective/constraints in the same
            engine batch, marked in :attr:`SelectionResult.synthesized`
            and eligible to win the selection outright.

    Raises:
        ValueError: when ``topologies`` is an empty list — selection
            over an empty library can never produce a result, so this
            fails loudly instead of reporting "no feasible topology".
    """
    if isinstance(objective, str):
        make_objective(objective)  # validate the name early
        objective_name = objective
    else:
        objective_name = objective.name
    if topologies is None:
        topologies = standard_library(core_graph.num_cores)
    # Materialize: the sequence is walked twice (job build + reduction).
    topologies = list(topologies)
    if not topologies:
        raise ValueError(
            "select_topology received an empty topologies list; pass None "
            "for the standard library or at least one topology instance"
        )
    if engine is None:
        engine = ExplorationEngine(
            jobs=jobs, cache_backend=cache_backend, journal=journal
        )
    elif journal is not None and engine.journal is None:
        engine.journal = journal
    selection = SelectionResult(
        objective_name=objective_name, routing_code=routing
    )
    job_list = engine.selection_jobs(
        core_graph,
        topologies=topologies,
        routing=routing,
        objective=objective,
        constraints=constraints,
        config=config,
        estimator=estimator,
    )

    synth_candidates: list = []
    synth_jobs: list = []
    if synthesize:
        # Imported here: the synthesis package builds on the engine and
        # mapper layers, so a module-level import would be circular.
        from repro.synthesis.generate import SynthesisConfig, synthesis_jobs

        synth_config = (
            synthesize
            if isinstance(synthesize, SynthesisConfig)
            else SynthesisConfig()
        )
        synth_candidates, synth_jobs, _pruned = synthesis_jobs(
            core_graph,
            config=synth_config,
            routing=routing,
            objective=objective,
            constraints=constraints,
            mapper_config=config,
            estimator=estimator,
        )

    results = engine.run(job_list + synth_jobs)
    for topology, result in zip(topologies, results):
        if result.ok:
            selection.evaluations[topology.name] = result.evaluation
        else:
            selection.errors[topology.name] = result.error
    for (spec, _topology), result in zip(
        synth_candidates, results[len(job_list):]
    ):
        selection.synthesized.append(spec.label)
        if result.ok:
            selection.evaluations[spec.label] = result.evaluation
        else:
            selection.errors[spec.label] = result.error
    return selection
