"""The general mapping algorithm (Figure 5).

Three phases, exactly as the paper describes:

1. an initial greedy mapping (:mod:`repro.core.greedy`);
2. commodity routing in decreasing order with bandwidth/area checks and
   cost computation (:mod:`repro.core.evaluate`);
3. pair-wise swap exploration: "repeat steps 2 to 8 for each pair-wise
   swap of vertices in P; return the mapping with lowest cost of all
   evaluated mappings".

Feasibility dominates cost when comparing mappings: a feasible mapping
always beats an infeasible one, and infeasible mappings compete on their
worst link overload, which steers the search toward feasibility (this is
how MPEG4 finds split-routable placements for its 910 MB/s flow).

``MapperConfig.converge`` extends the paper's single swap pass to
steepest-descent rounds until no swap improves — an optional quality
knob measured by ``bench_ablation_swap``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.engine.cache import EvaluationCache

import math
from dataclasses import dataclass
from itertools import combinations

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation
from repro.core.greedy import initial_greedy_mapping
from repro.core.memo import MemoizedMappingEvaluator
from repro.core.objectives import Objective, make_objective
from repro.errors import ReproError
from repro.physical.estimate import NetworkEstimator
from repro.routing.base import RoutingFunction
from repro.routing.library import make_routing
from repro.topology.base import Topology


@dataclass
class MapperConfig:
    """Knobs of the swap phase.

    Attributes:
        swap_rounds: full pairwise-swap passes when ``converge`` is off
            (1 = the paper's single pass, Figure 5 steps 9-10).
        converge: keep running swap passes until none improves (default;
            needed e.g. for VOPD to discover a bandwidth-feasible
            butterfly placement). ``bench_ablation_swap`` quantifies the
            difference against the single-pass variant.
        max_rounds: safety bound for ``converge`` mode.
        floorplan_in_loop: force floorplanning on/off inside the swap
            loop; None = automatic (on iff the objective or constraints
            need it).
        incremental: route swap candidates as deltas against the round's
            base through the incremental engine
            (:mod:`repro.routing.incremental`) — bit-identical results,
            measured speedups in ``BENCH_mapping.json``. Off = the
            from-scratch path (kept for A/B benchmarking).
    """

    swap_rounds: int = 1
    converge: bool = True
    max_rounds: int = 8
    floorplan_in_loop: bool | None = None
    incremental: bool = True


def _resolve(routing, objective):
    if isinstance(routing, str):
        routing = make_routing(routing)
    if isinstance(objective, str):
        objective = make_objective(objective)
    return routing, objective


def _score(evaluation: MappingEvaluation, objective: Objective) -> MappingEvaluation:
    try:
        evaluation.cost = objective.cost(evaluation)
    except (ReproError, TypeError):
        evaluation.cost = math.inf
    return evaluation


def map_onto(
    core_graph: CoreGraph,
    topology: Topology,
    routing: RoutingFunction | str = "MP",
    objective: Objective | str = "hops",
    constraints: Constraints | None = None,
    estimator: NetworkEstimator | None = None,
    config: MapperConfig | None = None,
    collector: list | None = None,
    cache: EvaluationCache | None = None,
) -> MappingEvaluation:
    """Map a core graph onto one topology and return the best evaluation.

    Args:
        collector: optional list receiving *every* evaluated mapping
            (used for the Pareto exploration of Figure 9(b)).
        cache: optional shared :class:`~repro.engine.cache.
            EvaluationCache` memoizing per-assignment evaluations
            (content-keyed); ``None`` uses a private per-search cache,
            so the swap search never routes the same assignment twice
            either way.

    Raises:
        MappingInfeasibleError: if the application has more cores than
            the topology has slots.
        UnsupportedRoutingError: if the routing function is undefined for
            this topology (e.g. DO on Clos).

    Note: a returned evaluation may still have ``feasible == False``
    (bandwidth or area violation everywhere) — that is the paper's
    "No Feasible Mapping" outcome for MPEG4 on the butterfly.
    """
    routing, objective = _resolve(routing, objective)
    constraints = constraints or Constraints()
    estimator = estimator or NetworkEstimator()
    config = config or MapperConfig()

    fp_in_loop = config.floorplan_in_loop
    if fp_in_loop is None:
        fp_in_loop = (
            objective.needs_floorplan or constraints.max_area_mm2 is not None
        )

    memo = MemoizedMappingEvaluator(
        core_graph, topology, routing, constraints, estimator,
        cache=cache, objective=objective,
    )

    def run(assignment: dict[int, int]) -> MappingEvaluation:
        ev = memo.evaluate(assignment, with_floorplan=fp_in_loop)
        _score(ev, objective)
        if collector is not None:
            collector.append(ev)
        return ev

    def run_swap(base: MappingEvaluation, s1: int, s2: int) -> MappingEvaluation:
        if config.incremental:
            ev = memo.evaluate_swap(
                base.assignment, s1, s2, with_floorplan=fp_in_loop
            )
        else:
            from repro.routing.incremental import swap_assignment

            ev = memo.evaluate(
                swap_assignment(base.assignment, s1, s2),
                with_floorplan=fp_in_loop,
            )
        _score(ev, objective)
        if collector is not None:
            collector.append(ev)
        return ev

    best = run(initial_greedy_mapping(core_graph, topology))

    rounds = config.max_rounds if config.converge else config.swap_rounds
    for _ in range(rounds):
        candidate = _best_swap(best, run_swap)
        if candidate is None or candidate.sort_key() >= best.sort_key():
            break
        best = candidate

    # Final authoritative evaluation with the floorplanner on, so every
    # reported mapping carries area/power numbers and a real area check
    # (a cache hit when the search already floorplanned this winner).
    final = memo.evaluate(best.assignment, with_floorplan=True)
    return _score(final, objective)


def _best_swap(base: MappingEvaluation, run_swap) -> MappingEvaluation | None:
    """Evaluate every pairwise slot swap of ``base``; return the best.

    ``run_swap(base, s1, s2)`` evaluates one slot swap — normally as a
    delta against the base's routing (the incremental engine), which is
    why this enumerates slot pairs instead of building candidate dicts.
    """
    topology = base.topology
    occupied = sorted(base.assignment.values())
    free = sorted(set(range(topology.num_slots)) - set(occupied))

    best: MappingEvaluation | None = None
    candidates = list(combinations(occupied, 2))
    candidates += [(s, f) for s in occupied for f in free]
    for s1, s2 in candidates:
        ev = run_swap(base, s1, s2)
        if best is None or ev.sort_key() < best.sort_key():
            best = ev
    return best
