"""Assignment-level memoization of :func:`~repro.core.evaluate.evaluate_mapping`.

The pairwise-swap search (:mod:`repro.core.mapper`) and the annealing
refinement (:mod:`repro.core.annealing`) both revisit assignments — the
swap that undoes the previous round's best move, annealing walks that
return to an earlier state, the final authoritative re-evaluation of the
winning assignment. Routing and floorplanning the same assignment twice
is pure waste: :func:`evaluate_mapping` is deterministic in its inputs.

:class:`MemoizedMappingEvaluator` wraps one search's evaluation context
(core graph, topology, routing function, constraints, estimator) around
PR-1's content-keyed :class:`~repro.engine.cache.EvaluationCache`, keyed
by assignment fingerprint plus the floorplan flag. Hits return the
previously evaluated :class:`~repro.core.evaluate.MappingEvaluation`
object itself — callers treat evaluations as immutable apart from the
``cost`` field, which objectives re-assign idempotently.

:meth:`~MemoizedMappingEvaluator.evaluate_swap` is the searches' fast
path: a candidate that differs from a base assignment by one slot swap
is routed as a delta through the incremental engine
(:mod:`repro.routing.incremental`) instead of from scratch. The memo
stays the outer layer — an exact-assignment hit still short-circuits
everything — and misses land in the same cache, so both entry points
interoperate on one store.

Whether the delta actually beats from-scratch depends on the workload:
load-independent routing (DO, unique-path quadrants) and large sparse
applications splice most of the sequence, while small dense core graphs
under congestion-coupled MP/SM genuinely change a third of their routes
per swap. Since both paths are bit-identical, ``evaluate_swap``
self-tunes: it probes the non-current path on a fixed cadence, tracks
per-path EWMA timings, and serves each (application, topology, routing)
context with whichever evaluator is measurably faster — the delta
engine's wins are kept and its overhead-bound cases cost at most the
probe cadence.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import (
    MappingEvaluation,
    evaluate_mapping,
    finish_evaluation,
)
from repro.physical.estimate import NetworkEstimator
from repro.routing.base import RoutingFunction
from repro.topology.base import Topology

if TYPE_CHECKING:  # runtime import is lazy: engine's package __init__
    from repro.engine.cache import EvaluationCache  # imports the mapper
    from repro.routing.incremental import BaseRouting, IncrementalRoutingEngine

#: evaluate_swap probes the non-current evaluator once per this many
#: misses, so a mode that turns out faster is discovered at a bounded
#: (~1/PROBE_EVERY) cost while the other keeps serving the search.
PROBE_EVERY = 24

#: EWMA smoothing for per-mode timings (weight of the newest sample).
_EWMA_ALPHA = 0.25

#: Required advantage before switching modes (hysteresis against noise).
_SWITCH_MARGIN = 0.90

#: Learned evaluator modes per (app name, flow count, topology, routing)
#: context, shared process-wide: every search over the same context
#: (fresh memos per map_onto, selection flows, benchmark reps) starts
#: with the mode its predecessors converged to instead of re-paying the
#: adaptation lag. A stale or colliding hint only mis-picks the
#: *starting* mode — probing corrects it. Bounded by _MODE_HINTS_MAX.
_MODE_HINTS: dict[tuple, bool] = {}
_MODE_HINTS_MAX = 4096


class MemoizedMappingEvaluator:
    """Evaluate assignments through a content-keyed cache.

    Args:
        cache: an :class:`~repro.engine.cache.EvaluationCache` to share
            across searches (pass the same instance to several
            ``map_onto`` calls to pool their work); ``None`` creates a
            private unbounded cache for this search.

    With a private cache the key is just the assignment (the context is
    fixed by construction); with a shared cache the key is prefixed by
    content fingerprints of the whole evaluation context, so two
    searches can never serve each other stale results.
    """

    __slots__ = (
        "core_graph",
        "topology",
        "routing",
        "constraints",
        "estimator",
        "cache",
        "_context",
        "_engine",
        "_delta_mode",
        "_swap_misses",
        "_mode_ewma",
        "_mode_hint_key",
        "_probes_left",
        "_probe_early",
    )

    def __init__(
        self,
        core_graph: CoreGraph,
        topology: Topology,
        routing: RoutingFunction,
        constraints: Constraints,
        estimator: NetworkEstimator,
        cache: EvaluationCache | None = None,
        objective=None,
    ):
        self.core_graph = core_graph
        self.topology = topology
        self.routing = routing
        self.constraints = constraints
        self.estimator = estimator
        self._engine = None
        # Initial evaluator mode: a hint learned by earlier searches
        # over the same context, else a structural guess —
        # load-independent routing (DO) and larger applications splice
        # enough to start on the delta path; small dense apps start
        # from-scratch. Probing corrects either way within a few dozen
        # candidates.
        self._mode_hint_key = (
            core_graph.name,
            core_graph.num_flows,
            topology.name,
            routing.code,
        )
        hint = _MODE_HINTS.get(self._mode_hint_key)
        self._delta_mode = (
            hint
            if hint is not None
            else routing.code == "DO" or len(core_graph.commodities()) >= 24
        )
        # Probing budget: a search with a learned hint only re-checks a
        # few times (cheap insurance against stale hints); an unhinted
        # one probes early and more often. Once spent, the converged
        # mode serves the rest of the search at zero probing cost.
        self._probes_left = 3 if hint is not None else 8
        self._probe_early = hint is None
        self._swap_misses = 0
        self._mode_ewma: dict[bool, float | None] = {True: None, False: None}
        if cache is None:
            from repro.engine.cache import EvaluationCache

            self.cache = EvaluationCache(max_entries=None)
            self._context = None
        else:
            self.cache = cache
            # Lazy import: repro.engine.fingerprint imports the mapper,
            # which imports this module.
            from repro.engine.fingerprint import (
                constraints_fingerprint,
                core_graph_fingerprint,
                estimator_fingerprint,
                objective_fingerprint,
                topology_fingerprint,
            )

            # The objective is part of the shared-cache key even though
            # it does not influence routing: callers re-assign
            # ``evaluation.cost`` after scoring, and two searches with
            # different objectives must therefore never share the
            # MappingEvaluation objects the cache hands back.
            self._context = (
                core_graph_fingerprint(core_graph),
                topology_fingerprint(topology),
                type(routing).__name__,
                routing.code,
                tuple(sorted(vars(routing).items())),
                constraints_fingerprint(constraints),
                estimator_fingerprint(estimator),
                None if objective is None else objective_fingerprint(
                    objective
                ),
            )

    @property
    def stats(self):
        """Hit/miss counters of the underlying cache."""
        return self.cache.stats

    def evaluate(
        self, assignment: dict[int, int], with_floorplan: bool
    ) -> MappingEvaluation:
        """Route/check/measure ``assignment``, or return the cached
        evaluation of a bit-identical earlier one."""
        key = (
            self._context,
            tuple(sorted(assignment.items())),
            with_floorplan,
        )
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        evaluation = evaluate_mapping(
            self.core_graph,
            self.topology,
            assignment,
            self.routing,
            self.constraints,
            estimator=self.estimator,
            with_floorplan=with_floorplan,
        )
        self.cache.put(key, evaluation)
        return evaluation

    # ------------------------------------------------------------------
    # incremental (delta) evaluation
    # ------------------------------------------------------------------
    @property
    def engine(self) -> IncrementalRoutingEngine:
        """The lazily created incremental delta-routing engine."""
        if self._engine is None:
            # Lazy import: repro.routing.incremental imports repro.core
            # modules, which import this one.
            from repro.routing.incremental import IncrementalRoutingEngine

            self._engine = IncrementalRoutingEngine(
                self.core_graph, self.topology, self.routing, self.estimator
            )
        return self._engine

    def evaluate_swap(
        self,
        base_assignment: dict[int, int],
        s1: int,
        s2: int,
        with_floorplan: bool,
    ) -> MappingEvaluation:
        """Evaluate the slot swap (s1, s2) of ``base_assignment`` as a
        delta against its base routing.

        Bit-identical to ``evaluate(swap_assignment(base, s1, s2), ...)``
        — the incremental engine splices the clean routing prefix and
        re-routes only the dirty suffix (see
        :mod:`repro.routing.incremental`). The memo stays the outer
        layer: an exact hit on the swapped assignment returns the cached
        evaluation without touching the engine, and misses are stored
        under the same key a from-scratch evaluation would use.

        Self-tuning: because the delta and from-scratch evaluators
        produce identical results, misses are timed per evaluator (the
        non-current one is probed every ``PROBE_EVERY`` misses) and the
        faster one serves this context — so workloads whose swap delta
        is genuinely most of the sequence never pay the delta engine's
        bookkeeping for long.
        """
        from repro.routing.incremental import swap_assignment

        swapped = swap_assignment(base_assignment, s1, s2)
        swapped_key = tuple(sorted(swapped.items()))
        key = (self._context, swapped_key, with_floorplan)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        self._swap_misses += 1
        use_delta = self._delta_mode
        # Probe the other evaluator early once when unhinted (so short
        # searches adapt within their first round), then on a fixed
        # cadence until the probing budget is spent.
        if self._probes_left > 0 and (
            (self._probe_early and self._swap_misses == 4)
            or self._swap_misses % PROBE_EVERY == 0
        ):
            use_delta = not use_delta
            self._probes_left -= 1
        start = perf_counter()
        if use_delta:
            engine = self.engine
            base_record = engine.record_for(base_assignment)
            record = engine.swap_record(base_record, s1, s2, key=swapped_key)
            evaluation = self._evaluate_record(record, with_floorplan)
        else:
            evaluation = evaluate_mapping(
                self.core_graph,
                self.topology,
                swapped,
                self.routing,
                self.constraints,
                estimator=self.estimator,
                with_floorplan=with_floorplan,
            )
        elapsed = perf_counter() - start
        ewma = self._mode_ewma[use_delta]
        self._mode_ewma[use_delta] = (
            elapsed
            if ewma is None
            else ewma + _EWMA_ALPHA * (elapsed - ewma)
        )
        current = self._mode_ewma[self._delta_mode]
        other = self._mode_ewma[not self._delta_mode]
        if (
            current is not None
            and other is not None
            and other < current * _SWITCH_MARGIN
        ):
            self._delta_mode = not self._delta_mode
        if current is not None and other is not None:
            if len(_MODE_HINTS) >= _MODE_HINTS_MAX:
                _MODE_HINTS.clear()
            _MODE_HINTS[self._mode_hint_key] = self._delta_mode
        self.cache.put(key, evaluation)
        return evaluation

    def _evaluate_record(
        self, record: BaseRouting, with_floorplan: bool
    ) -> MappingEvaluation:
        """Measure a spliced routing record exactly like a from-scratch
        evaluation: shared checks/floorplan tail, with fast-mode power
        resumed from the record's partial sums.

        No assignment validation here: a slot swap of a structurally
        valid base assignment is valid by construction (injectivity and
        slot ranges are preserved), and bases come from prior validated
        evaluations.
        """
        engine = self.engine
        fast_power = None if with_floorplan else engine.fast_power(record)
        return finish_evaluation(
            self.core_graph,
            self.topology,
            self.routing.code,
            record.assignment,
            record.result(),
            engine.average_hops(record),
            self.constraints,
            self.estimator,
            with_floorplan,
            fast_power=fast_power,
        )
