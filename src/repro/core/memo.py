"""Assignment-level memoization of :func:`~repro.core.evaluate.evaluate_mapping`.

The pairwise-swap search (:mod:`repro.core.mapper`) and the annealing
refinement (:mod:`repro.core.annealing`) both revisit assignments — the
swap that undoes the previous round's best move, annealing walks that
return to an earlier state, the final authoritative re-evaluation of the
winning assignment. Routing and floorplanning the same assignment twice
is pure waste: :func:`evaluate_mapping` is deterministic in its inputs.

:class:`MemoizedMappingEvaluator` wraps one search's evaluation context
(core graph, topology, routing function, constraints, estimator) around
PR-1's content-keyed :class:`~repro.engine.cache.EvaluationCache`, keyed
by assignment fingerprint plus the floorplan flag. Hits return the
previously evaluated :class:`~repro.core.evaluate.MappingEvaluation`
object itself — callers treat evaluations as immutable apart from the
``cost`` field, which objectives re-assign idempotently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation, evaluate_mapping
from repro.physical.estimate import NetworkEstimator
from repro.routing.base import RoutingFunction
from repro.topology.base import Topology

if TYPE_CHECKING:  # runtime import is lazy: engine's package __init__
    from repro.engine.cache import EvaluationCache  # imports the mapper


class MemoizedMappingEvaluator:
    """Evaluate assignments through a content-keyed cache.

    Args:
        cache: an :class:`~repro.engine.cache.EvaluationCache` to share
            across searches (pass the same instance to several
            ``map_onto`` calls to pool their work); ``None`` creates a
            private unbounded cache for this search.

    With a private cache the key is just the assignment (the context is
    fixed by construction); with a shared cache the key is prefixed by
    content fingerprints of the whole evaluation context, so two
    searches can never serve each other stale results.
    """

    __slots__ = (
        "core_graph",
        "topology",
        "routing",
        "constraints",
        "estimator",
        "cache",
        "_context",
    )

    def __init__(
        self,
        core_graph: CoreGraph,
        topology: Topology,
        routing: RoutingFunction,
        constraints: Constraints,
        estimator: NetworkEstimator,
        cache: EvaluationCache | None = None,
        objective=None,
    ):
        self.core_graph = core_graph
        self.topology = topology
        self.routing = routing
        self.constraints = constraints
        self.estimator = estimator
        if cache is None:
            from repro.engine.cache import EvaluationCache

            self.cache = EvaluationCache(max_entries=None)
            self._context = None
        else:
            self.cache = cache
            # Lazy import: repro.engine.fingerprint imports the mapper,
            # which imports this module.
            from repro.engine.fingerprint import (
                constraints_fingerprint,
                core_graph_fingerprint,
                estimator_fingerprint,
                objective_fingerprint,
                topology_fingerprint,
            )

            # The objective is part of the shared-cache key even though
            # it does not influence routing: callers re-assign
            # ``evaluation.cost`` after scoring, and two searches with
            # different objectives must therefore never share the
            # MappingEvaluation objects the cache hands back.
            self._context = (
                core_graph_fingerprint(core_graph),
                topology_fingerprint(topology),
                type(routing).__name__,
                routing.code,
                tuple(sorted(vars(routing).items())),
                constraints_fingerprint(constraints),
                estimator_fingerprint(estimator),
                None if objective is None else objective_fingerprint(
                    objective
                ),
            )

    @property
    def stats(self):
        """Hit/miss counters of the underlying cache."""
        return self.cache.stats

    def evaluate(
        self, assignment: dict[int, int], with_floorplan: bool
    ) -> MappingEvaluation:
        """Route/check/measure ``assignment``, or return the cached
        evaluation of a bit-identical earlier one."""
        key = (
            self._context,
            tuple(sorted(assignment.items())),
            with_floorplan,
        )
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        evaluation = evaluate_mapping(
            self.core_graph,
            self.topology,
            assignment,
            self.routing,
            self.constraints,
            estimator=self.estimator,
            with_floorplan=with_floorplan,
        )
        self.cache.put(key, evaluation)
        return evaluation
