"""Single-mapping evaluation (Figure 5, steps 2-8).

Given an assignment of cores to slots, this module routes all commodities
in decreasing order, checks bandwidth feasibility, optionally floorplans
the design, and derives the three report metrics of the paper's tables:
average hop delay, design area and design power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.constraints import (
    Constraints,
    area_feasible,
    bandwidth_feasible,
    bandwidth_overflow,
    qos_feasible,
)
from repro.core.coregraph import CoreGraph
from repro.errors import FloorplanError, MappingInfeasibleError
from repro.floorplan.lp import FloorplanResult, floorplan_mapping
from repro.physical.estimate import NetworkEstimator, PowerBreakdown
from repro.routing.base import RoutingFunction, RoutingResult
from repro.topology.base import ResourceSummary, Topology


def nominal_pitch_mm(core_graph: CoreGraph) -> float:
    """Tile pitch estimate when no floorplan is available: the side of an
    average core block."""
    if core_graph.num_cores == 0:
        return 1.0
    return math.sqrt(core_graph.total_core_area() / core_graph.num_cores)


@dataclass
class MappingEvaluation:
    """Everything known about one evaluated mapping."""

    core_graph: CoreGraph
    topology: Topology
    routing_code: str
    assignment: dict[int, int]

    routing_result: RoutingResult
    avg_hops: float
    max_link_load: float
    bandwidth_feasible: bool
    overflow_mb_s: float = 0.0
    qos_feasible: bool = True
    qos_violations: list = field(default_factory=list)

    floorplan: FloorplanResult | None = None
    area_mm2: float | None = None
    power: PowerBreakdown | None = None
    power_mw: float | None = None
    area_feasible: bool = True
    resources: ResourceSummary | None = None
    cost: float = math.inf

    @property
    def feasible(self) -> bool:
        return (
            self.bandwidth_feasible
            and self.area_feasible
            and self.qos_feasible
        )

    def sort_key(self) -> tuple:
        """Feasible-first, then cost; infeasible mappings compete on how
        badly they violate constraints (QoS violations, then total
        bandwidth overflow, then worst link), driving the swap search
        toward feasibility."""
        if self.feasible:
            return (0, 0, self.cost, 0.0)
        return (
            1,
            len(self.qos_violations),
            self.overflow_mb_s,
            self.max_link_load,
        )

    def summary_row(self) -> dict:
        """Row for the paper-style comparison tables."""
        return {
            "topology": self.topology.name,
            "routing": self.routing_code,
            "feasible": self.feasible,
            "avg_hops": round(self.avg_hops, 3),
            "max_link_load_mb_s": round(self.max_link_load, 1),
            "area_mm2": None if self.area_mm2 is None else round(self.area_mm2, 2),
            "power_mw": None if self.power_mw is None else round(self.power_mw, 1),
            "switches": None if self.resources is None else self.resources.num_switches,
            "links": None if self.resources is None else self.resources.num_links,
        }


def evaluate_mapping(
    core_graph: CoreGraph,
    topology: Topology,
    assignment: dict[int, int],
    routing: RoutingFunction,
    constraints: Constraints,
    estimator: NetworkEstimator | None = None,
    with_floorplan: bool = True,
) -> MappingEvaluation:
    """Route, check and measure one mapping.

    Args:
        assignment: core index -> terminal slot; must be injective and
            cover every core.
        with_floorplan: run the LP floorplanner (needed for area/power
            numbers and area feasibility). Disable inside hop-objective
            swap loops for speed; re-enable for the final report.

    Raises:
        MappingInfeasibleError: if the assignment is structurally invalid
            (wrong size, duplicate slots, slot out of range).
    """
    _validate_assignment(core_graph, topology, assignment)
    if estimator is None:
        estimator = NetworkEstimator()

    commodities = core_graph.commodities()
    result = routing.route_all(topology, assignment, commodities)
    return finish_evaluation(
        core_graph,
        topology,
        routing.code,
        assignment,
        result,
        result.weighted_average_hops(),
        constraints,
        estimator,
        with_floorplan,
    )


def finish_evaluation(
    core_graph: CoreGraph,
    topology: Topology,
    routing_code: str,
    assignment: dict[int, int],
    result: RoutingResult,
    avg_hops: float,
    constraints: Constraints,
    estimator: NetworkEstimator,
    with_floorplan: bool,
    fast_power: PowerBreakdown | None = None,
) -> MappingEvaluation:
    """Shared evaluation tail: feasibility checks, floorplan/power/area.

    Both :func:`evaluate_mapping` (from-scratch routing) and the
    incremental delta engine (:mod:`repro.routing.incremental`, which
    splices ``result`` from a base evaluation) funnel through here, so a
    candidate is measured identically whichever way it was routed.

    Args:
        avg_hops: precomputed ``result.weighted_average_hops()`` — the
            incremental path supplies it from running partial sums.
        fast_power: optional precomputed fast-mode power breakdown
            (ignored when ``with_floorplan`` is set, where power depends
            on floorplanned link lengths).
    """
    bw_ok, max_load = bandwidth_feasible(result, topology, constraints)
    overflow = 0.0 if bw_ok else bandwidth_overflow(result, topology, constraints)
    qos_ok, violations = qos_feasible(result, constraints)

    evaluation = MappingEvaluation(
        core_graph=core_graph,
        topology=topology,
        routing_code=routing_code,
        assignment=dict(assignment),
        routing_result=result,
        avg_hops=avg_hops,
        max_link_load=max_load,
        bandwidth_feasible=bw_ok,
        overflow_mb_s=overflow,
        qos_feasible=qos_ok,
        qos_violations=violations,
    )

    pitch = nominal_pitch_mm(core_graph)
    if with_floorplan:
        used = estimator.used_switches(topology, result)
        try:
            floorplan = floorplan_mapping(
                topology,
                assignment,
                core_graph,
                used_switches=used,
                tech=estimator.tech,
                max_aspect=constraints.max_chip_aspect,
            )
        except FloorplanError:
            floorplan = None
        evaluation.floorplan = floorplan
        lengths = (
            floorplan.link_lengths(topology, assignment)
            if floorplan is not None
            else None
        )
        channels = estimator.channels_area_mm2(
            topology, result, lengths_mm=lengths, pitch_mm=pitch
        )
        if floorplan is not None:
            evaluation.area_mm2 = floorplan.area_mm2 + channels
        evaluation.power = estimator.network_power_mw(
            topology, result, lengths_mm=lengths, pitch_mm=pitch
        )
        evaluation.power_mw = evaluation.power.total_mw
        evaluation.area_feasible = floorplan is not None and area_feasible(
            floorplan, evaluation.area_mm2, constraints
        )
    else:
        # Fast mode: power from nominal link lengths, no area numbers.
        evaluation.power = (
            fast_power
            if fast_power is not None
            else estimator.network_power_mw(
                topology, result, lengths_mm=None, pitch_mm=pitch
            )
        )
        evaluation.power_mw = evaluation.power.total_mw
        evaluation.area_feasible = True

    # Direct topologies ignore the route list entirely (their resource
    # summary is mapping-independent apart from the slot count), so skip
    # materializing all paths for them — it sits on the swap-search hot
    # path.
    routes = None if topology.kind == "direct" else result.all_paths()
    evaluation.resources = topology.resource_summary(
        routes=routes, mapped_slots=list(assignment.values())
    )
    return evaluation


def _validate_assignment(
    core_graph: CoreGraph, topology: Topology, assignment: dict[int, int]
) -> None:
    if set(assignment) != set(range(core_graph.num_cores)):
        raise MappingInfeasibleError(
            "assignment must map every core exactly once"
        )
    slots = list(assignment.values())
    if len(set(slots)) != len(slots):
        raise MappingInfeasibleError("assignment maps two cores to one slot")
    for slot in slots:
        if not 0 <= slot < topology.num_slots:
            raise MappingInfeasibleError(f"slot {slot} out of range")
