"""Bandwidth and area constraints (Figure 5, step 8).

"Bandwidth constraints are satisfied, if in the resulting mapping, the
traffic across any link is smaller than or equal to the capacity of the
link. The area constraints are satisfied when the mapped design area is
lower than the maximum allowed area and aspect ratios of the design and
soft core blocks are within permissible ranges."

Link capacity "is technology and implementation dependent and is assumed
as an input" — the paper's experiments use a conservative 500 MB/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.floorplan.lp import FloorplanResult
from repro.routing.base import RoutingResult
from repro.topology.base import Topology

#: The paper's conservative maximum link bandwidth (Section 6.1).
DEFAULT_LINK_CAPACITY_MB_S = 500.0


@dataclass(frozen=True)
class Constraints:
    """Feasibility envelope for a mapping.

    Attributes:
        link_capacity_mb_s: capacity of every switch-to-switch channel.
        core_link_capacity_mb_s: optional capacity for terminal links
            (None = unconstrained; see DESIGN.md on why the paper's
            results require NI links to be unconstrained).
        max_area_mm2: optional ceiling on the floorplanned design area.
        max_chip_aspect: maximum chip width/height ratio (either
            orientation).
        max_flow_hops: optional QoS bound — no commodity may traverse
            more than this many switches on any of its paths (the
            paper's future-work "guaranteeing Quality-of-Service",
            realized as a per-flow latency guarantee).
    """

    link_capacity_mb_s: float = DEFAULT_LINK_CAPACITY_MB_S
    core_link_capacity_mb_s: float | None = None
    max_area_mm2: float | None = None
    max_chip_aspect: float = 3.0
    max_flow_hops: int | None = None

    def relaxed(self) -> "Constraints":
        """Copy with bandwidth constraints lifted (Section 6.2 uses this
        to force mappings onto every topology for simulation)."""
        return Constraints(
            link_capacity_mb_s=math.inf,
            core_link_capacity_mb_s=None,
            max_area_mm2=self.max_area_mm2,
            max_chip_aspect=self.max_chip_aspect,
            max_flow_hops=self.max_flow_hops,
        )


def bandwidth_feasible(
    result: RoutingResult, topology: Topology, constraints: Constraints
) -> tuple[bool, float]:
    """Check link loads against capacities.

    Returns ``(feasible, max_constrained_load)``. Fabrics with parallel
    channels (custom topologies with repeated link pairs) are checked on
    the worst *per-channel* load: an edge with multiplicity ``m``
    carries ``m`` times the single-link capacity.
    """
    net_load = result.loads.max_load(
        topology.net_edges(), divisors=topology.channel_multiplicities()
    )
    feasible = net_load <= constraints.link_capacity_mb_s + 1e-9
    max_load = net_load

    core_cap = constraints.core_link_capacity_mb_s
    if topology.constrain_core_links and core_cap is None:
        core_cap = constraints.link_capacity_mb_s
    if core_cap is not None:
        core_load = result.loads.max_load(topology.core_edges())
        feasible = feasible and core_load <= core_cap + 1e-9
        max_load = max(max_load, core_load)
    return feasible, max_load


def qos_feasible(
    result: RoutingResult, constraints: Constraints
) -> tuple[bool, list]:
    """Check the per-flow hop bound (QoS guarantee).

    Returns ``(feasible, violations)`` where each violation is
    ``(src_slot, dst_slot, worst_hops)``.
    """
    bound = constraints.max_flow_hops
    if bound is None:
        return True, []
    violations = []
    for rc in result.routed:
        worst = max(
            (sum(1 for n in path if n[0] == "sw") for path, _ in rc.paths),
            default=0,
        )
        if worst > bound:
            violations.append((rc.src_slot, rc.dst_slot, worst))
    return not violations, violations


def bandwidth_overflow(
    result: RoutingResult, topology: Topology, constraints: Constraints
) -> float:
    """Total excess load over capacity, summed across constrained links.

    Zero iff the mapping is bandwidth-feasible. Smoother than the max
    link load, it gives the swap search a gradient across plateaus where
    several placements share the same bottleneck (e.g. an unsplittable
    600 MB/s flow) but differ elsewhere.
    """
    cap = constraints.link_capacity_mb_s
    mults = topology.channel_multiplicities() or {}
    overflow = sum(
        max(0.0, result.loads.get(u, v) - cap * mults.get((u, v), 1))
        for u, v in topology.net_edges()
    )
    core_cap = constraints.core_link_capacity_mb_s
    if topology.constrain_core_links and core_cap is None:
        core_cap = constraints.link_capacity_mb_s
    if core_cap is not None:
        overflow += sum(
            max(0.0, result.loads.get(u, v) - core_cap)
            for u, v in topology.core_edges()
        )
    return overflow


def area_feasible(
    floorplan: FloorplanResult | None,
    design_area_mm2: float | None,
    constraints: Constraints,
) -> bool:
    """Check design area and chip aspect ratio."""
    if floorplan is None:
        return True  # fast mode: area constraints deferred
    if floorplan.aspect_ratio > constraints.max_chip_aspect + 1e-6:
        return False
    if constraints.max_area_mm2 is not None:
        area = design_area_mm2 if design_area_mm2 is not None else floorplan.area_mm2
        if area > constraints.max_area_mm2 + 1e-9:
            return False
    return True
