"""Design-space exploration of a chosen topology (Section 6.3).

Two explorations the paper demonstrates on MPEG4/mesh:

* the effect of the routing function — the minimum link bandwidth each of
  DO/MP/SM/SA needs to carry the application (Figure 9(a));
* the area-power Pareto points over the set of mappings the swap phase
  evaluates (Figure 9(b)).

Both sweeps submit their candidates through the
:class:`~repro.engine.ExplorationEngine` — one job per routing function
(or per explored mapping cloud) — so they parallelize with ``jobs=N``
and share the engine's evaluation cache with the selection flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.mapper import MapperConfig
from repro.engine.engine import ExplorationEngine
from repro.engine.jobs import EvaluationJob
from repro.routing.library import ROUTING_CODES
from repro.topology.base import Topology


def minimum_bandwidth_per_routing(
    core_graph: CoreGraph,
    topology: Topology,
    codes: tuple[str, ...] = ROUTING_CODES,
    config: MapperConfig | None = None,
    jobs: int = 1,
    engine: ExplorationEngine | None = None,
) -> dict[str, float | None]:
    """Minimum feasible link bandwidth per routing function.

    For each routing function the mapper runs with the ``bandwidth``
    objective (minimize the worst link load) and *relaxed* capacity, so
    the returned value is the smallest link capacity for which a feasible
    mapping exists. ``None`` marks an unsupported topology/routing pair.
    """
    relaxed = Constraints().relaxed()
    # Materialize: the sequence is walked twice (job build + reduction).
    codes = tuple(codes)
    engine = engine or ExplorationEngine(jobs=jobs)
    job_list = [
        EvaluationJob(
            core_graph=core_graph,
            topology=topology,
            routing=code,
            objective="bandwidth",
            constraints=relaxed,
            config=config,
            tag=code,
        )
        for code in codes
    ]
    results: dict[str, float | None] = {}
    for code, result in zip(codes, engine.run(job_list)):
        if result.is_unsupported_routing():
            results[code] = None
            continue
        result.raise_if_error()
        results[code] = result.evaluation.max_link_load
    return results


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated mapping in the area-power plane."""

    area_mm2: float
    power_mw: float
    avg_hops: float
    assignment: tuple

    def dominates(self, other: "ParetoPoint") -> bool:
        """Smaller-or-equal on both axes, strictly smaller on one."""
        no_worse = (
            self.area_mm2 <= other.area_mm2 and self.power_mw <= other.power_mw
        )
        better = (
            self.area_mm2 < other.area_mm2 or self.power_mw < other.power_mw
        )
        return no_worse and better


def pareto_front(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by increasing area."""
    ordered = sorted(points, key=lambda p: (p.area_mm2, p.power_mw))
    front: list[ParetoPoint] = []
    best_power = float("inf")
    for p in ordered:
        # Strictly better power than everything wider-or-equal seen so
        # far; no epsilon — a tolerance here would drop points that are
        # only quasi-dominated (found by hypothesis).
        if p.power_mw < best_power:
            front.append(p)
            best_power = p.power_mw
    return front


def area_power_exploration(
    core_graph: CoreGraph,
    topology: Topology,
    routing: str = "SM",
    constraints: Constraints | None = None,
    config: MapperConfig | None = None,
    engine: ExplorationEngine | None = None,
) -> tuple[list[ParetoPoint], list[ParetoPoint]]:
    """All feasible (area, power) mapping points and their Pareto front.

    Runs the mapper with the power objective while collecting every
    evaluated mapping (the paper's "set of Pareto points for the
    mappings from which the optimum design point can be chosen").
    """
    engine = engine or ExplorationEngine()
    result = engine.run_one(
        EvaluationJob(
            core_graph=core_graph,
            topology=topology,
            routing=routing,
            objective="power",
            constraints=constraints,
            config=config,
            tag=topology.name,
            collect=True,
        )
    )
    result.raise_if_error()
    collected = result.collected
    points = [
        ParetoPoint(
            area_mm2=ev.area_mm2,
            power_mw=ev.power_mw,
            avg_hops=ev.avg_hops,
            assignment=tuple(sorted(ev.assignment.items())),
        )
        for ev in collected
        if ev.feasible and ev.area_mm2 is not None and ev.power_mw is not None
    ]
    # Deduplicate identical assignments (the greedy seed reappears).
    unique = {p.assignment: p for p in points}
    points = list(unique.values())
    return points, pareto_front(points)
