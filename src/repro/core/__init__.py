"""SUNMAP's primary contribution: mapping, evaluation, selection."""

from repro.core.constraints import (
    DEFAULT_LINK_CAPACITY_MB_S,
    Constraints,
    area_feasible,
    bandwidth_feasible,
    bandwidth_overflow,
    qos_feasible,
)
from repro.core.coregraph import Commodity, Core, CoreGraph
from repro.core.evaluate import (
    MappingEvaluation,
    evaluate_mapping,
    nominal_pitch_mm,
)
from repro.core.exploration import (
    ParetoPoint,
    area_power_exploration,
    minimum_bandwidth_per_routing,
    pareto_front,
)
from repro.core.greedy import initial_greedy_mapping
from repro.core.mapper import MapperConfig, map_onto
from repro.core.objectives import (
    AreaObjective,
    BandwidthObjective,
    HopDelayObjective,
    Objective,
    PowerObjective,
    WeightedObjective,
    make_objective,
)
from repro.core.selector import SelectionResult, select_topology

__all__ = [
    "CoreGraph",
    "Core",
    "Commodity",
    "Constraints",
    "DEFAULT_LINK_CAPACITY_MB_S",
    "bandwidth_feasible",
    "bandwidth_overflow",
    "qos_feasible",
    "area_feasible",
    "MappingEvaluation",
    "evaluate_mapping",
    "nominal_pitch_mm",
    "initial_greedy_mapping",
    "MapperConfig",
    "map_onto",
    "Objective",
    "HopDelayObjective",
    "AreaObjective",
    "PowerObjective",
    "BandwidthObjective",
    "WeightedObjective",
    "make_objective",
    "SelectionResult",
    "select_topology",
    "ParetoPoint",
    "pareto_front",
    "area_power_exploration",
    "minimum_bandwidth_per_routing",
]
