"""Application core graphs (Definition 1 of the paper).

The communication between the cores of the SoC is represented by the *core
graph* ``G(V, E)``: each vertex is a core, each directed edge ``(vi, vj)``
carries a weight ``comm(i, j)`` — the bandwidth, in MB/s, of the
communication from core *i* to core *j*.

Each edge is treated as a flow of a single *commodity* ``dk`` whose value
``vl(dk) = comm(i, j)`` (Equation 2 of the paper); the mapping engine routes
commodities in decreasing order of value.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import CoreGraphError

#: Default synthetic core area when the designer does not provide one (mm^2).
DEFAULT_CORE_AREA_MM2 = 2.0

#: Default aspect-ratio range for soft (resizable) core blocks.
DEFAULT_ASPECT_MIN = 1.0 / 3.0
DEFAULT_ASPECT_MAX = 3.0


@dataclass
class Core:
    """A processing or storage element of the SoC.

    Area/power values of cores are an *input* to SUNMAP (Section 5 of the
    paper); they are carried here so the floorplanner and reports can use
    them.

    Attributes:
        name: unique human-readable identifier (e.g. ``"idct"``).
        index: position of the core in the graph's vertex list.
        area_mm2: silicon area of the core.
        is_soft: whether the block may be reshaped by the floorplanner
            within ``[aspect_min, aspect_max]``.
        aspect_min: minimum allowed width/height ratio for soft blocks.
        aspect_max: maximum allowed width/height ratio for soft blocks.
        power_mw: internal (non-NoC) power of the core; reported but not
            optimized, since SUNMAP minimizes *network* power.
    """

    name: str
    index: int
    area_mm2: float = DEFAULT_CORE_AREA_MM2
    is_soft: bool = True
    aspect_min: float = DEFAULT_ASPECT_MIN
    aspect_max: float = DEFAULT_ASPECT_MAX
    power_mw: float = 0.0


@dataclass(frozen=True)
class Commodity:
    """A single-commodity flow ``dk`` between two mapped cores.

    Attributes:
        index: identifier ``k`` of the commodity.
        src: source core index.
        dst: destination core index.
        value: bandwidth ``vl(dk)`` in MB/s.
    """

    index: int
    src: int
    dst: int
    value: float


class CoreGraph:
    """Directed application graph of cores and bandwidth demands.

    Typical construction::

        g = CoreGraph("my-app")
        g.add_core("cpu", area_mm2=4.0)
        g.add_core("mem", area_mm2=6.0)
        g.add_flow("cpu", "mem", 240.0)   # MB/s

    The class is deliberately small and explicit; all mapping-time queries
    (commodity list, per-core communication totals) are derived views.
    """

    def __init__(self, name: str):
        self.name = name
        self._cores: list[Core] = []
        self._by_name: dict[str, int] = {}
        self._flows: dict[tuple[int, int], float] = {}
        self._commodities_cache: list[Commodity] | None = None
        self._total_area_cache: float | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_core(
        self,
        name: str,
        area_mm2: float = DEFAULT_CORE_AREA_MM2,
        is_soft: bool = True,
        aspect_min: float = DEFAULT_ASPECT_MIN,
        aspect_max: float = DEFAULT_ASPECT_MAX,
        power_mw: float = 0.0,
    ) -> int:
        """Add a core and return its index.

        Raises:
            CoreGraphError: on duplicate names or non-positive area.
        """
        if name in self._by_name:
            raise CoreGraphError(f"duplicate core name: {name!r}")
        if area_mm2 <= 0:
            raise CoreGraphError(f"core {name!r} must have positive area")
        if aspect_min <= 0 or aspect_max < aspect_min:
            raise CoreGraphError(f"core {name!r} has invalid aspect bounds")
        index = len(self._cores)
        self._cores.append(
            Core(
                name=name,
                index=index,
                area_mm2=area_mm2,
                is_soft=is_soft,
                aspect_min=aspect_min,
                aspect_max=aspect_max,
                power_mw=power_mw,
            )
        )
        self._by_name[name] = index
        self._total_area_cache = None
        return index

    def add_flow(self, src: int | str, dst: int | str, bandwidth: float) -> None:
        """Add (or accumulate onto) a directed flow of ``bandwidth`` MB/s."""
        si = self.core_index(src)
        di = self.core_index(dst)
        if si == di:
            raise CoreGraphError("self-flows are not allowed in a core graph")
        if bandwidth <= 0:
            raise CoreGraphError("flow bandwidth must be positive")
        self._flows[(si, di)] = self._flows.get((si, di), 0.0) + bandwidth
        self._commodities_cache = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self._cores)

    @property
    def cores(self) -> list[Core]:
        return list(self._cores)

    def core(self, key: int | str) -> Core:
        return self._cores[self.core_index(key)]

    def core_index(self, key: int | str) -> int:
        """Resolve a core name or index to an index."""
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise CoreGraphError(f"unknown core: {key!r}") from None
        if not 0 <= key < len(self._cores):
            raise CoreGraphError(f"core index out of range: {key}")
        return key

    def comm(self, src: int | str, dst: int | str) -> float:
        """Bandwidth from ``src`` to ``dst`` (0.0 if no flow)."""
        return self._flows.get((self.core_index(src), self.core_index(dst)), 0.0)

    @property
    def num_flows(self) -> int:
        return len(self._flows)

    def flows(self) -> dict[tuple[int, int], float]:
        """All flows as ``{(src_index, dst_index): MB/s}`` (a copy)."""
        return dict(self._flows)

    def commodities(self) -> list[Commodity]:
        """Commodities sorted by decreasing value (step 2 of Figure 5).

        Ties are broken by (src, dst) so the order is deterministic.
        """
        if self._commodities_cache is None:
            items = sorted(
                self._flows.items(), key=lambda kv: (-kv[1], kv[0][0], kv[0][1])
            )
            self._commodities_cache = [
                Commodity(index=k, src=s, dst=d, value=v)
                for k, ((s, d), v) in enumerate(items)
            ]
        return list(self._commodities_cache)

    def total_bandwidth(self) -> float:
        """Sum of all commodity values in MB/s."""
        return sum(self._flows.values())

    def core_traffic(self, key: int | str) -> float:
        """Total bandwidth entering plus leaving one core (MB/s)."""
        i = self.core_index(key)
        return sum(
            v for (s, d), v in self._flows.items() if s == i or d == i
        )

    def comm_between(self, a: int, b: int) -> float:
        """Bandwidth between two cores in either direction."""
        return self.comm(a, b) + self.comm(b, a)

    def total_core_area(self) -> float:
        if self._total_area_cache is None:
            self._total_area_cache = sum(c.area_mm2 for c in self._cores)
        return self._total_area_cache

    def to_networkx(self) -> nx.DiGraph:
        """Export as a networkx DiGraph (``comm`` edge attribute in MB/s)."""
        g = nx.DiGraph(name=self.name)
        for core in self._cores:
            g.add_node(core.index, name=core.name, area_mm2=core.area_mm2)
        for (s, d), v in self._flows.items():
            g.add_edge(s, d, comm=v)
        return g

    def validate(self) -> None:
        """Check internal consistency; raises :class:`CoreGraphError`."""
        if not self._cores:
            raise CoreGraphError("core graph has no cores")
        for (s, d), v in self._flows.items():
            if not (0 <= s < self.num_cores and 0 <= d < self.num_cores):
                raise CoreGraphError(f"flow ({s},{d}) references unknown core")
            if v <= 0:
                raise CoreGraphError(f"flow ({s},{d}) has non-positive value")

    def __repr__(self) -> str:
        return (
            f"CoreGraph({self.name!r}, cores={self.num_cores}, "
            f"flows={self.num_flows}, total={self.total_bandwidth():.1f} MB/s)"
        )
