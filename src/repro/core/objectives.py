"""Mapping objectives (Section 1: "minimizing average communication
delay, area, power dissipation subject to bandwidth and area
constraints").

An objective turns a :class:`~repro.core.evaluate.MappingEvaluation` into
a scalar cost (lower is better) and declares whether it needs the
floorplanner inside the swap loop (area/power do; hop delay does not,
which keeps Figure 6(a)-style runs fast).

The extra ``bandwidth`` objective minimizes the worst link load; mapping
with it yields the *minimum feasible link bandwidth* of a routing
function — the quantity plotted in Figure 9(a).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ReproError


class Objective(ABC):
    """Scalar mapping cost; lower is better."""

    name: str = "?"
    needs_floorplan: bool = False

    @abstractmethod
    def cost(self, evaluation) -> float:
        """Cost of an evaluated mapping."""

    def __repr__(self) -> str:
        return f"Objective({self.name})"


class HopDelayObjective(Objective):
    """Bandwidth-weighted average hop count (the paper's "avg hops")."""

    name = "hops"
    needs_floorplan = False

    def cost(self, evaluation) -> float:
        return evaluation.avg_hops


class AreaObjective(Objective):
    """Floorplanned design area (blocks + whitespace + channels)."""

    name = "area"
    needs_floorplan = True

    def cost(self, evaluation) -> float:
        if evaluation.area_mm2 is None:
            raise ReproError("area objective requires a floorplanned evaluation")
        return evaluation.area_mm2


class PowerObjective(Objective):
    """Network power (switch + link dynamic, clock, leakage)."""

    name = "power"
    needs_floorplan = True

    def cost(self, evaluation) -> float:
        if evaluation.power_mw is None:
            raise ReproError("power objective requires a floorplanned evaluation")
        return evaluation.power_mw


class BandwidthObjective(Objective):
    """Worst constrained-link load (for Figure 9(a) sweeps).

    A subordinate RMS-load term breaks ties between mappings sharing the
    same bottleneck, so the swap search keeps a gradient across max-load
    plateaus (e.g. several placements all pinned at an unsplittable
    600 MB/s flow).
    """

    name = "bandwidth"
    needs_floorplan = False

    def cost(self, evaluation) -> float:
        loads = [v for _, v in evaluation.routing_result.loads.items()]
        rms = math.sqrt(sum(v * v for v in loads) / len(loads)) if loads else 0.0
        return evaluation.max_link_load + 1e-4 * rms


class WeightedObjective(Objective):
    """Convex combination of hop delay, area and power.

    Terms are normalized by caller-provided reference values so the
    weights are unitless, e.g.::

        WeightedObjective(hops=0.5, power=0.5, hops_ref=3.0, power_ref=400)
    """

    name = "weighted"

    def __init__(
        self,
        hops: float = 0.0,
        area: float = 0.0,
        power: float = 0.0,
        hops_ref: float = 1.0,
        area_ref: float = 1.0,
        power_ref: float = 1.0,
    ):
        if hops < 0 or area < 0 or power < 0:
            raise ReproError("objective weights must be non-negative")
        if hops + area + power <= 0:
            raise ReproError("at least one objective weight must be positive")
        self.weights = {"hops": hops, "area": area, "power": power}
        self.refs = {"hops": hops_ref, "area": area_ref, "power": power_ref}
        self.needs_floorplan = area > 0 or power > 0

    def cost(self, evaluation) -> float:
        total = 0.0
        if self.weights["hops"]:
            total += self.weights["hops"] * evaluation.avg_hops / self.refs["hops"]
        if self.weights["area"]:
            total += self.weights["area"] * evaluation.area_mm2 / self.refs["area"]
        if self.weights["power"]:
            total += self.weights["power"] * evaluation.power_mw / self.refs["power"]
        return total


_OBJECTIVES = {
    "hops": HopDelayObjective,
    "latency": HopDelayObjective,
    "area": AreaObjective,
    "power": PowerObjective,
    "bandwidth": BandwidthObjective,
}


def make_objective(name: str) -> Objective:
    """Instantiate an objective by name (hops/latency, area, power,
    bandwidth)."""
    try:
        return _OBJECTIVES[name.lower()]()
    except KeyError:
        raise ReproError(
            f"unknown objective {name!r}; choose from {sorted(set(_OBJECTIVES))}"
        ) from None
