"""Fault-set value type and deterministic fault samplers.

A :class:`FaultSet` names what is broken in a fabric: dead inter-switch
links, dead switches, and per-channel degradation (reduced capacity
and/or added latency). It is a frozen, canonically-ordered value type so
two fault sets with the same content compare, hash, and digest
identically — the digest feeds topology names and, through them, engine
fingerprints, which is what keeps the evaluation cache correct across
faulted variants.

Samplers (:func:`sample_faults`, :func:`sample_switch_faults`,
:func:`sample_degradations`) are deterministic functions of
``(topology.name, kind, k, seed)``: the same call always yields the same
fault set, in any process, which the engine's jobs=1 ≡ jobs=N
bit-identity contract requires.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from random import Random

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import is_switch, is_term, term


def _canon_pair(pair) -> tuple:
    """Normalize an undirected node pair to a canonical (repr-sorted) tuple."""
    u, v = pair
    a, b = sorted((u, v), key=repr)
    return (a, b)


@dataclass(frozen=True)
class FaultSet:
    """What is broken: dead links, dead switches, degraded channels.

    * ``dead_links`` — undirected switch-to-switch node pairs; both
      directed channels of the pair are removed from the fabric.
    * ``dead_switches`` — switch nodes removed outright (with every
      incident channel).
    * ``degraded`` — ``(pair, cap_factor, extra_latency)`` entries:
      the pair's surviving channels forward at most one flit every
      ``round(1 / cap_factor)`` cycles and each hop takes
      ``extra_latency`` additional cycles.

    Entries are normalized (pairs repr-sorted, lists deduplicated and
    ordered) on construction, so equal content means equal value.
    """

    dead_links: tuple = ()
    dead_switches: tuple = ()
    degraded: tuple = field(default=())

    def __post_init__(self):
        links = sorted({_canon_pair(p) for p in self.dead_links}, key=repr)
        switches = sorted(set(self.dead_switches), key=repr)
        dead = set(links)
        degraded = []
        seen = set()
        for pair, cap_factor, extra_latency in self.degraded:
            pair = _canon_pair(pair)
            cap = float(cap_factor)
            extra = int(extra_latency)
            if not 0.0 < cap <= 1.0:
                raise TopologyError(
                    f"degraded cap_factor must be in (0, 1], got {cap!r}"
                )
            if extra < 0:
                raise TopologyError(
                    f"degraded extra_latency must be >= 0, got {extra!r}"
                )
            if pair in dead:
                raise TopologyError(
                    f"link {pair!r} is both dead and degraded"
                )
            if pair in seen:
                raise TopologyError(f"duplicate degradation for {pair!r}")
            seen.add(pair)
            degraded.append((pair, cap, extra))
        degraded.sort(key=repr)
        object.__setattr__(self, "dead_links", tuple(links))
        object.__setattr__(self, "dead_switches", tuple(switches))
        object.__setattr__(self, "degraded", tuple(degraded))

    @property
    def is_empty(self) -> bool:
        """Whether this fault set changes nothing (pristine fabric)."""
        return not (self.dead_links or self.dead_switches or self.degraded)

    @property
    def digest(self) -> str:
        """Short content hash; equal fault sets share it, others don't."""
        payload = repr((self.dead_links, self.dead_switches, self.degraded))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]

    @property
    def label(self) -> str:
        """Compact human-readable tag, stable across processes."""
        if self.is_empty:
            return "pristine"
        parts = []
        if self.dead_links:
            parts.append(f"L{len(self.dead_links)}")
        if self.dead_switches:
            parts.append(f"S{len(self.dead_switches)}")
        if self.degraded:
            parts.append(f"D{len(self.degraded)}")
        return f"faults-{''.join(parts)}-{self.digest}"


def _rng(topology, kind: str, k: int, seed: int) -> Random:
    """Deterministic, process-independent RNG for one sampling call."""
    payload = repr((topology.name, kind, k, seed)).encode("utf-8")
    return Random(int.from_bytes(hashlib.sha256(payload).digest()[:8], "big"))


def _net_pairs(topology) -> list:
    """Canonically ordered undirected switch-to-switch pairs."""
    return sorted({_canon_pair(e) for e in topology.net_edges()}, key=repr)


def _masked_graph(topology, faults: FaultSet) -> nx.DiGraph:
    """The base graph with the fault set's dead elements removed."""
    g = topology.graph.copy()
    g.remove_nodes_from(n for n in faults.dead_switches if n in g)
    for u, v in faults.dead_links:
        for edge in ((u, v), (v, u)):
            if g.has_edge(*edge):
                g.remove_edge(*edge)
    return g


def _switch_fabric(g: nx.DiGraph) -> nx.DiGraph:
    """The switch-only subgraph — the network routes actually live in.

    Routes never pass *through* a third core's terminal (the routing
    view enforces that structurally), so reachability questions must be
    answered on the switch fabric alone: a terminal bridging two
    switches would otherwise make a severed pair look routable.
    """
    return g.subgraph([n for n in g if is_switch(n)])


def _severed_pairs(g: nx.DiGraph, num_slots: int, first_only: bool = False):
    """``(src, dst)`` slot pairs with no switch-fabric route in ``g``.

    One descendant BFS per source over the (small) switch fabric; a
    pivot-transitivity shortcut would be unsound on unidirectional
    multistage fabrics (butterfly), where ``src -> 0`` and ``0 -> dst``
    only compose by bouncing through terminal 0.
    """
    fabric = _switch_fabric(g)
    severed = []
    for src in range(num_slots):
        s = term(src)
        outs = set(g.successors(s)) if s in g else set()
        down = set(outs)
        for node in outs:
            down |= nx.descendants(fabric, node)
        for dst in range(num_slots):
            if dst == src:
                continue
            t = term(dst)
            if t not in g or not any(
                p in down for p in g.predecessors(t)
            ):
                severed.append((src, dst))
                if first_only:
                    return severed
    return severed


def _partitions(topology, faults: FaultSet) -> bool:
    """Whether the fault set severs any terminal pair."""
    g = _masked_graph(topology, faults)
    return bool(_severed_pairs(g, topology.num_slots, first_only=True))


def partitioned_pairs(topology) -> list:
    """Exact ``(src_slot, dst_slot)`` pairs with no route in ``topology``.

    Works on any topology (typically a
    :class:`~repro.faults.overlay.FaultedTopology`); an empty list means
    every commodity is routable. Routability means a path through the
    switch fabric — paths bouncing through a third core's terminal do
    not count, matching what the routing layer will actually build.
    """
    return _severed_pairs(topology.graph, topology.num_slots)


def sample_faults(
    topology,
    k: int,
    seed: int = 1,
    *,
    avoid_partition: bool = True,
    max_attempts: int = 200,
) -> FaultSet:
    """Sample ``k`` dead inter-switch links, deterministically.

    With ``avoid_partition`` (the default, matching the campaign's
    "latency-throughput under k random link failures" scenario) the
    sampler rejects fault sets that sever any terminal pair and redraws,
    raising :class:`~repro.errors.TopologyError` when ``max_attempts``
    deterministic draws all partition the fabric.
    """
    if k < 0:
        raise TopologyError(f"fault count must be >= 0, got {k}")
    if k == 0:
        return FaultSet()
    pairs = _net_pairs(topology)
    if k > len(pairs):
        raise TopologyError(
            f"cannot kill {k} links: {topology.name} has only "
            f"{len(pairs)} inter-switch links"
        )
    rng = _rng(topology, "links", k, seed)
    for _ in range(max_attempts):
        faults = FaultSet(dead_links=tuple(rng.sample(pairs, k)))
        if not avoid_partition or not _partitions(topology, faults):
            return faults
    raise TopologyError(
        f"no non-partitioning set of {k} dead links found on "
        f"{topology.name} after {max_attempts} draws (seed {seed})"
    )


def sample_switch_faults(
    topology,
    k: int,
    seed: int = 1,
    *,
    avoid_partition: bool = True,
    max_attempts: int = 200,
) -> FaultSet:
    """Sample ``k`` dead switches among those with no attached terminal.

    Killing a terminal's own switch always severs that terminal, so the
    pool is restricted to pure transit switches (multistage fabrics like
    Clos/butterfly have them; single-stage direct topologies do not and
    raise :class:`~repro.errors.TopologyError`).
    """
    if k < 0:
        raise TopologyError(f"fault count must be >= 0, got {k}")
    if k == 0:
        return FaultSet()
    g = topology.graph
    attached = {
        v for u, v in g.edges if is_term(u) and is_switch(v)
    } | {u for u, v in g.edges if is_switch(u) and is_term(v)}
    pool = sorted(
        (n for n in g.nodes if is_switch(n) and n not in attached), key=repr
    )
    if k > len(pool):
        raise TopologyError(
            f"cannot kill {k} switches: {topology.name} has only "
            f"{len(pool)} transit switches without terminals"
        )
    rng = _rng(topology, "switches", k, seed)
    for _ in range(max_attempts):
        faults = FaultSet(dead_switches=tuple(rng.sample(pool, k)))
        if not avoid_partition or not _partitions(topology, faults):
            return faults
    raise TopologyError(
        f"no non-partitioning set of {k} dead switches found on "
        f"{topology.name} after {max_attempts} draws (seed {seed})"
    )


def sample_degradations(
    topology,
    k: int,
    seed: int = 1,
    *,
    cap_factor: float = 0.5,
    extra_latency: int = 1,
) -> FaultSet:
    """Sample ``k`` degraded inter-switch links, deterministically.

    Degradation never disconnects anything, so there is no partition
    rejection loop; each sampled pair forwards at ``cap_factor`` of its
    capacity with ``extra_latency`` extra cycles per hop.
    """
    if k < 0:
        raise TopologyError(f"fault count must be >= 0, got {k}")
    if k == 0:
        return FaultSet()
    pairs = _net_pairs(topology)
    if k > len(pairs):
        raise TopologyError(
            f"cannot degrade {k} links: {topology.name} has only "
            f"{len(pairs)} inter-switch links"
        )
    rng = _rng(topology, "degraded", k, seed)
    chosen = rng.sample(pairs, k)
    return FaultSet(
        degraded=tuple((p, cap_factor, extra_latency) for p in chosen)
    )


def link_resilience(topology) -> float:
    """Edge connectivity of the undirected switch-level network.

    A fabric survives any ``k`` link failures iff this exceeds ``k``
    (Chen et al.'s k-connectivity objective). Fabrics with fewer than
    two switches have no inter-switch links to kill and count as
    infinitely resilient.
    """
    g = nx.Graph()
    g.add_nodes_from(topology.switches)
    g.add_edges_from(_net_pairs(topology))
    if g.number_of_nodes() < 2:
        return math.inf
    return float(nx.edge_connectivity(g))


def survives_link_faults(topology, k: int) -> bool:
    """Whether every set of ``k`` dead links leaves all pairs routable."""
    return link_resilience(topology) > k
