"""Fault injection and degraded-mode scenarios.

Public surface:

* :class:`FaultSet` — frozen value type naming dead links, dead
  switches, and per-channel capacity/latency degradation.
* :class:`FaultedTopology` — overlay applying a fault set to any
  library or custom topology through the ordinary Topology interface.
* :func:`sample_faults` / :func:`sample_switch_faults` /
  :func:`sample_degradations` — deterministic samplers keyed by
  ``(topology, k, seed)``.
* :func:`link_resilience` / :func:`survives_link_faults` — Chen et
  al.'s k-connectivity survivability check, used by the synthesis
  fault-tolerance objective and its tests.
* :func:`partitioned_pairs` — exact severed slot pairs of a (faulted)
  topology; empty means every commodity is routable.
"""

from repro.faults.faultset import (
    FaultSet,
    link_resilience,
    partitioned_pairs,
    sample_degradations,
    sample_faults,
    sample_switch_faults,
    survives_link_faults,
)
from repro.faults.overlay import FaultedTopology

__all__ = [
    "FaultSet",
    "FaultedTopology",
    "link_resilience",
    "partitioned_pairs",
    "sample_degradations",
    "sample_faults",
    "sample_switch_faults",
    "survives_link_faults",
]
