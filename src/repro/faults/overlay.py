"""Topology overlay applying a :class:`FaultSet` to any base topology.

:class:`FaultedTopology` wraps a library or custom topology and presents
the degraded fabric through the ordinary :class:`~repro.topology.base.
Topology` interface: the graph is the base graph minus dead elements,
with degradation annotations on the surviving channels. Everything
downstream — routing, mapping, simulation, fingerprints — works off
that graph unchanged, which is the whole point of the overlay design.

Routing re-convergence: quadrant shortcuts assume a pristine regular
structure, so a non-empty fault set disables them (searches fall back to
the full routing view, which only fails when endpoints are genuinely
partitioned — raising :class:`~repro.errors.UnroutableError`).
Dimension-ordered routing keeps the base route when it survives and
otherwise re-converges onto a deterministic surviving shortest path.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError, UnroutableError
from repro.faults.faultset import FaultSet
from repro.topology.base import Topology, term


class FaultedTopology(Topology):
    """A base topology with a :class:`FaultSet` applied.

    The overlay's name appends the fault set's content digest to the
    base name, so engine fingerprints (which hash the name *and* the
    surviving edge list with its degradation attributes) can never alias
    a faulted variant with the pristine fabric or with a different
    fault set.
    """

    def __init__(self, base: Topology, faults: FaultSet):
        if isinstance(base, FaultedTopology):
            raise TopologyError(
                "faulted topologies do not nest; combine the fault sets "
                "into one FaultSet and overlay the pristine base"
            )
        # An empty fault set is the pristine fabric: keeping the base
        # name (no "+pristine" suffix) lets caches alias the two, which
        # is correct — they evaluate identically.
        name = base.name if faults.is_empty else f"{base.name}+{faults.label}"
        super().__init__(name)
        self.base = base
        self.faults = faults
        self.kind = base.kind
        self.constrain_core_links = base.constrain_core_links
        self._validate_faults()

    def _validate_faults(self) -> None:
        """Every fault must reference an element the base actually has."""
        base_pairs = {
            tuple(sorted(e, key=repr)) for e in self.base.net_edges()
        }
        switches = set(self.base.switches)
        for pair in self.faults.dead_links:
            if pair not in base_pairs:
                raise TopologyError(
                    f"dead link {pair!r} is not an inter-switch link of "
                    f"{self.base.name}"
                )
        for sw in self.faults.dead_switches:
            if sw not in switches:
                raise TopologyError(
                    f"dead switch {sw!r} is not a switch of {self.base.name}"
                )
        for pair, _, _ in self.faults.degraded:
            if pair not in base_pairs:
                raise TopologyError(
                    f"degraded link {pair!r} is not an inter-switch link "
                    f"of {self.base.name}"
                )

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------
    def _build(self) -> nx.DiGraph:
        g = self.base.graph.copy()
        g.remove_nodes_from(
            n for n in self.faults.dead_switches if n in g
        )
        for u, v in self.faults.dead_links:
            for edge in ((u, v), (v, u)):
                if g.has_edge(*edge):
                    g.remove_edge(*edge)
        for pair, cap_factor, extra_latency in self.faults.degraded:
            u, v = pair
            for edge in ((u, v), (v, u)):
                if g.has_edge(*edge):
                    g.edges[edge]["cap_factor"] = cap_factor
                    g.edges[edge]["extra_latency"] = extra_latency
        return g

    @property
    def num_slots(self) -> int:
        return self.base.num_slots

    def position(self, node) -> tuple[float, float]:
        return self.base.position(node)

    def quadrant_nodes(self, src_slot: int, dst_slot: int) -> set | None:
        """Quadrant shortcuts are only sound on the pristine fabric.

        A dead element inside the base quadrant could leave a detour
        outside it, so restricting the search there would misreport a
        routable pair as unroutable; any non-empty fault set therefore
        searches the whole (masked) graph.
        """
        if self.faults.is_empty:
            return self.base.quadrant_nodes(src_slot, dst_slot)
        return None

    def dor_path(self, src_slot: int, dst_slot: int) -> list:
        """Base dimension-ordered route, re-converged around faults.

        When the base route survives the fault set it is kept verbatim
        (bit-identical to the pristine fabric). When a dead element
        breaks it, the route re-converges onto the deterministic
        networkx shortest path over the masked routing view (all
        switches, endpoint terminals only); a severed pair raises
        :class:`~repro.errors.UnroutableError`.
        """
        from repro.routing.shortest import routing_view

        path = self.base.dor_path(src_slot, dst_slot)
        g = self.graph
        if all(g.has_edge(u, v) for u, v in zip(path, path[1:])):
            return path
        src, dst = term(src_slot), term(dst_slot)
        try:
            return nx.shortest_path(routing_view(g, src, dst), src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise UnroutableError(
                f"slots {src_slot} and {dst_slot} are partitioned "
                f"by faults on {self.name}"
            ) from None

    # ------------------------------------------------------------------
    # degradation
    # ------------------------------------------------------------------
    def channel_degradations(self) -> dict | None:
        """``{directed net edge: (cap_factor, extra_latency)}`` or ``None``.

        ``None`` — no degraded entries — keeps the simulator on its
        pristine fast path; dead elements are already absent from the
        graph and need no entry here.
        """
        cached = self.__dict__.get("_degradations_cache", "unset")
        if cached == "unset":
            g = self.graph
            degr = {}
            for pair, cap_factor, extra_latency in self.faults.degraded:
                u, v = pair
                for edge in ((u, v), (v, u)):
                    if g.has_edge(*edge):
                        degr[edge] = (cap_factor, extra_latency)
            cached = degr or None
            self.__dict__["_degradations_cache"] = cached
        return cached
