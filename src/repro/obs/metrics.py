"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the single home for every operational counter in the
stack.  It is deliberately zero-dependency and tiny: instruments are
plain Python objects guarded by one registry-wide lock, which is ample
for the event rates involved (instruments are bumped per job / per
request, never per simulated flit or cycle).

Metric families follow the Prometheus naming conventions: counters end
in ``_total``, timing histograms end in ``_seconds``, and gauges carry
no suffix.  Every family may be partitioned into labeled series (for
example ``repro_engine_jobs_total{kind="simulation", status="cached"}``).

Two read-side views exist:

- :meth:`MetricsRegistry.snapshot` — a plain ``dict`` suitable for JSON
  (used by the service ``metrics`` request kind and the flight recorder),
- :meth:`MetricsRegistry.exposition` — Prometheus text exposition format
  (used by the CLI ``--metrics PATH`` flag).

Observability is passive by contract: incrementing an instrument never
touches payload bytes, cache keys, fingerprints, or any RNG stream.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]

# Log-spaced latency buckets (seconds): a 1 / 2.5 / 5 ladder from 100 us
# to 500 s.  Wide enough for both sub-millisecond cache probes and
# multi-minute campaigns; +Inf is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
    100.0, 250.0, 500.0,
)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Instrument:
    """Shared machinery for one metric family (name, labels, series)."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
    ) -> None:
        """Declare one family: ``name``, help text and its label set."""
        self._registry = registry
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        # label-values tuple (in labelnames order) -> mutable series state
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        """Validate ``labels`` against the family and build a series key."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {sorted(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def _series_items(self) -> list[tuple[tuple[str, ...], object]]:
        """Return the series sorted by label values for stable output."""
        return sorted(self._series.items())

    def _label_suffix(self, key: tuple[str, ...], extra: str = "") -> str:
        """Render the ``{a="x",b="y"}`` exposition suffix for one series."""
        parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(self.labelnames, key)]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


class Counter(_Instrument):
    """A monotonically increasing sum, optionally partitioned by labels."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (default 1) to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        key = self._key(labels)
        with self._registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount  # type: ignore[operator]

    def value(self, **labels: object) -> float:
        """Return the current value of one series (0.0 if never touched)."""
        key = self._key(labels)
        with self._registry._lock:
            return float(self._series.get(key, 0.0))  # type: ignore[arg-type]


class Gauge(_Instrument):
    """A value that can go up and down (in-flight requests, rates)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        key = self._key(labels)
        with self._registry._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (default 1) to the series selected by ``labels``."""
        key = self._key(labels)
        with self._registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount  # type: ignore[operator]

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Subtract ``amount`` (default 1) from the selected series."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """Return the current value of one series (0.0 if never set)."""
        key = self._key(labels)
        with self._registry._lock:
            return float(self._series.get(key, 0.0))  # type: ignore[arg-type]


class Histogram(_Instrument):
    """A distribution over fixed buckets (cumulative on the read side)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        """Declare the family and validate its bucket ladder."""
        super().__init__(registry, name, help_text, labelnames)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram {self.name!r} buckets must be strictly increasing")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: object) -> None:
        """Record one sample into the series selected by ``labels``."""
        key = self._key(labels)
        with self._registry._lock:
            state = self._series.get(key)
            if state is None:
                state = {"count": 0, "sum": 0.0, "buckets": [0] * len(self.buckets)}
                self._series[key] = state
            state["count"] += 1  # type: ignore[index]
            state["sum"] += float(value)  # type: ignore[index]
            counts = state["buckets"]  # type: ignore[index]
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1

    def series(self, **labels: object) -> dict:
        """Return ``{"count", "sum", "buckets"}`` for one series."""
        key = self._key(labels)
        with self._registry._lock:
            state = self._series.get(key)
            if state is None:
                return {"count": 0, "sum": 0.0, "buckets": [0] * len(self.buckets)}
            return {
                "count": state["count"],  # type: ignore[index]
                "sum": state["sum"],  # type: ignore[index]
                "buckets": list(state["buckets"]),  # type: ignore[index]
            }


class MetricsRegistry:
    """A named collection of metric families with dict and text views.

    Registration is idempotent: asking for an existing family with the
    same type and labels returns the existing instrument, so modules can
    declare their instruments at import time without coordination.
    Mismatched re-registration (different type, labels or buckets) is a
    programming error and raises ``ValueError``.
    """

    def __init__(self) -> None:
        """Create an empty registry."""
        self._lock = threading.Lock()
        self._families: dict[str, _Instrument] = {}

    def _register(self, instrument: _Instrument) -> _Instrument:
        """Insert ``instrument`` or return the compatible existing family."""
        with self._lock:
            existing = self._families.get(instrument.name)
            if existing is None:
                self._families[instrument.name] = instrument
                return instrument
            if (
                existing.kind != instrument.kind
                or existing.labelnames != instrument.labelnames
                or getattr(existing, "buckets", None) != getattr(instrument, "buckets", None)
            ):
                raise ValueError(
                    f"metric {instrument.name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}"
                )
            return existing

    def counter(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()) -> Counter:
        """Declare (or fetch) a counter family."""
        return self._register(Counter(self, name, help_text, tuple(labelnames)))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        """Declare (or fetch) a gauge family."""
        return self._register(Gauge(self, name, help_text, tuple(labelnames)))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Declare (or fetch) a histogram family with fixed buckets."""
        return self._register(
            Histogram(self, name, help_text, tuple(labelnames), buckets)
        )  # type: ignore[return-value]

    def snapshot(self) -> dict:
        """Return every family and series as one JSON-ready dict."""
        out: dict[str, dict] = {}
        with self._lock:
            for name in sorted(self._families):
                fam = self._families[name]
                series = []
                for key, state in fam._series_items():
                    labels = dict(zip(fam.labelnames, key))
                    if fam.kind == "histogram":
                        series.append(
                            {
                                "labels": labels,
                                "count": state["count"],  # type: ignore[index]
                                "sum": state["sum"],  # type: ignore[index]
                                "buckets": {
                                    _format_value(b): c
                                    for b, c in zip(fam.buckets, state["buckets"])  # type: ignore[union-attr,index]
                                },
                            }
                        )
                    else:
                        series.append({"labels": labels, "value": state})
                out[name] = {
                    "type": fam.kind,
                    "help": fam.help,
                    "labelnames": list(fam.labelnames),
                    "series": series,
                }
        return out

    def exposition(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                fam = self._families[name]
                lines.append(f"# HELP {name} {fam.help}")
                lines.append(f"# TYPE {name} {fam.kind}")
                for key, state in fam._series_items():
                    if fam.kind == "histogram":
                        cumulative = 0
                        for bound, count in zip(fam.buckets, state["buckets"]):  # type: ignore[union-attr,index]
                            cumulative = count
                            suffix = fam._label_suffix(key, f'le="{_format_value(bound)}"')
                            lines.append(f"{name}_bucket{suffix} {cumulative}")
                        suffix = fam._label_suffix(key, 'le="+Inf"')
                        lines.append(f"{name}_bucket{suffix} {state['count']}")  # type: ignore[index]
                        lines.append(
                            f"{name}_sum{fam._label_suffix(key)} "
                            f"{_format_value(state['sum'])}"  # type: ignore[index]
                        )
                        lines.append(
                            f"{name}_count{fam._label_suffix(key)} {state['count']}"  # type: ignore[index]
                        )
                    else:
                        lines.append(
                            f"{name}{fam._label_suffix(key)} {_format_value(state)}"  # type: ignore[arg-type]
                        )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every series while keeping family declarations (tests)."""
        with self._lock:
            for fam in self._families.values():
                fam._series.clear()


#: The process-wide default registry every instrumented module uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-wide default :class:`MetricsRegistry`."""
    return REGISTRY
