"""Lightweight span tracing with pluggable sinks.

A *span* is one named, timed region of work — ``engine.run``, one
executor job, one service request.  Spans nest: the currently open span
is tracked in a :mod:`contextvars` variable, so child spans opened in
the same task (including across ``asyncio.to_thread``) record their
parent automatically.

Tracing is off by default and free when off: :func:`span` checks for
installed sinks first and yields a shared no-op object without touching
the context variable.  Span ids come from a plain ``itertools.count`` —
never from ``random`` — because the passivity contract forbids tracing
from consuming any RNG stream.

Sinks receive finished spans as plain dicts::

    {"name": "engine.job", "id": 7, "parent": 3, "ts": 1754650000.1,
     "duration_s": 0.0421, "attrs": {"kind": "simulation"}}

Two sinks ship with the package: :class:`RingSink` (bounded in-memory
buffer, used by the flight recorder) and :class:`JsonlSink` (append-only
JSON-lines file, used by the CLI ``--trace PATH`` flag).
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import IO, Iterator

__all__ = [
    "JsonlSink",
    "RingSink",
    "add_sink",
    "emit",
    "remove_sink",
    "span",
    "tracing_enabled",
]

_SINKS: list = []
_IDS = itertools.count(1)
_CURRENT: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class _ActiveSpan:
    """Handle yielded by :func:`span` while the region is open."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "start_wall", "start_perf")

    def __init__(self, name: str, span_id: int, parent_id: int | None, attrs: dict) -> None:
        """Start the clock on one open span."""
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_wall = time.time()
        self.start_perf = time.perf_counter()

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attrs[key] = value


class _NoopSpan:
    """Shared do-nothing handle yielded when no sinks are installed."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        """Discard the attribute (tracing is off)."""


_NOOP = _NoopSpan()


def tracing_enabled() -> bool:
    """Return True when at least one sink is installed."""
    return bool(_SINKS)


def add_sink(sink) -> None:
    """Install ``sink``; every finished span is passed to ``sink.handle``."""
    if sink not in _SINKS:
        _SINKS.append(sink)


def remove_sink(sink) -> None:
    """Uninstall ``sink``; unknown sinks are ignored."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def _dispatch(record: dict) -> None:
    """Hand one finished span to every installed sink."""
    for sink in list(_SINKS):
        sink.handle(record)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[_ActiveSpan | _NoopSpan]:
    """Open a named, timed region; record it to the sinks on exit.

    Usage::

        with span("engine.run", jobs=3) as sp:
            ...
            sp.set("computed", n)

    When no sinks are installed this is a cheap no-op.
    """
    if not _SINKS:
        yield _NOOP
        return
    parent = _CURRENT.get()
    active = _ActiveSpan(name, next(_IDS), parent, dict(attrs))
    token = _CURRENT.set(active.span_id)
    try:
        yield active
    finally:
        _CURRENT.reset(token)
        duration = time.perf_counter() - active.start_perf
        _dispatch(
            {
                "name": active.name,
                "id": active.span_id,
                "parent": active.parent_id,
                "ts": active.start_wall,
                "duration_s": duration,
                "attrs": active.attrs,
            }
        )


def emit(name: str, duration_s: float, **attrs: object) -> None:
    """Record a span retrospectively, after its duration is known.

    The executors use this for per-job spans whose queue-wait and
    execute times are only known once the future completes.  The span
    parents onto whatever span is currently open in this context.
    """
    if not _SINKS:
        return
    _dispatch(
        {
            "name": name,
            "id": next(_IDS),
            "parent": _CURRENT.get(),
            "ts": time.time() - duration_s,
            "duration_s": duration_s,
            "attrs": dict(attrs),
        }
    )


class RingSink:
    """Keep the last ``maxlen`` spans in memory (flight-recorder buffer)."""

    def __init__(self, maxlen: int = 4096) -> None:
        """Create an empty ring holding at most ``maxlen`` spans."""
        self._spans: deque = deque(maxlen=maxlen)

    def handle(self, record: dict) -> None:
        """Append one finished span, evicting the oldest when full."""
        self._spans.append(record)

    def spans(self) -> list[dict]:
        """Return the buffered spans, oldest first."""
        return list(self._spans)


class JsonlSink:
    """Append finished spans to a JSON-lines file, one object per line."""

    def __init__(self, path: str, stream: IO[str] | None = None) -> None:
        """Open ``path`` for appending (or adopt an existing ``stream``)."""
        self.path = path
        self._lock = threading.Lock()
        self._stream = stream if stream is not None else open(path, "a", encoding="utf-8")

    def handle(self, record: dict) -> None:
        """Serialize one finished span onto its own line."""
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            try:
                self._stream.flush()
            finally:
                self._stream.close()
