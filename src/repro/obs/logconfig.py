"""Unified logging for the ``repro`` package.

Every module logs through ``logging.getLogger(__name__)``, which places
it under the single ``repro`` root logger.  :func:`configure_logging`
attaches one stream handler to that root — plain text by default, or
structured JSON lines with ``json=True`` — and is idempotent, so the
CLI and tests can call it repeatedly without duplicating handlers.
"""

from __future__ import annotations

import json as _json
import logging
import sys
from typing import IO

__all__ = ["JsonLogFormatter", "configure_logging"]

#: Marker attribute identifying handlers installed by configure_logging.
_MARKER = "_repro_obs_handler"


class JsonLogFormatter(logging.Formatter):
    """Format records as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        """Render ``record`` as a compact JSON line."""
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return _json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: int | str = "INFO",
    json: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the ``repro`` root logger and return it.

    Replaces any handler previously installed by this function (repeat
    calls reconfigure rather than stack).  ``level`` accepts a logging
    level name or number; ``json=True`` switches to structured JSON
    lines; ``stream`` defaults to stderr.
    """
    root = logging.getLogger("repro")
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level: {level}")
    root.setLevel(level)
    root.propagate = False
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    setattr(handler, _MARKER, True)
    root.handlers = [
        h for h in root.handlers if not getattr(h, _MARKER, False)
    ] + [handler]
    return root
