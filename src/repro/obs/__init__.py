"""Zero-dependency observability: metrics, tracing, flight recorder.

The package is passive by contract — enabling any part of it changes no
payload bytes, fingerprints, cache keys, or RNG draws.  See
``docs/OBSERVABILITY.md`` for the metric catalog and span taxonomy.
"""

from .logconfig import JsonLogFormatter, configure_logging
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .recorder import FlightRecorder, RunReport, environment_fingerprint
from .trace import (
    JsonlSink,
    RingSink,
    add_sink,
    emit,
    remove_sink,
    span,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "JsonlSink",
    "MetricsRegistry",
    "REGISTRY",
    "RingSink",
    "RunReport",
    "add_sink",
    "configure_logging",
    "emit",
    "environment_fingerprint",
    "get_registry",
    "remove_sink",
    "span",
    "tracing_enabled",
]
