"""Per-run flight recorder: spans + metrics + environment in one report.

A :class:`FlightRecorder` wraps one run (a CLI command, a ``run_sunmap``
flow, a test).  On entry it snapshots the metrics registry and installs
an in-memory span ring; on exit it assembles a :class:`RunReport`
holding the captured spans, the metrics snapshot, the delta of every
counter that moved during the run, and an environment fingerprint —
enough to answer "where did this run spend its time?" from the artifact
alone, without a rerun.

Reports serialize via :meth:`RunReport.to_dict` (attached to
``SunmapReport.observability`` and written by the CLI) and render a
human summary via :meth:`RunReport.to_markdown`, a table of the top-N
slowest spans.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field

from . import metrics as _metrics
from . import trace as _trace

__all__ = ["FlightRecorder", "RunReport", "environment_fingerprint"]


def environment_fingerprint() -> dict:
    """Describe the interpreter/platform/package this run executed on."""
    try:
        from repro import __version__ as repro_version
    except Exception:  # pragma: no cover - partial-import edge
        repro_version = "unknown"
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "repro_version": repro_version,
    }


def _flatten_counters(snapshot: dict) -> dict[str, float]:
    """Map ``name{a=x,b=y}`` -> value for every counter series."""
    flat: dict[str, float] = {}
    for name, family in snapshot.items():
        if family["type"] != "counter":
            continue
        for series in family["series"]:
            labels = series["labels"]
            suffix = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            flat[f"{name}{{{suffix}}}" if suffix else name] = series["value"]
    return flat


@dataclass
class RunReport:
    """The assembled artifact of one recorded run."""

    label: str
    started_at: float
    duration_s: float
    environment: dict
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    metrics_delta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Return the report as one JSON-ready dict."""
        return {
            "label": self.label,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "environment": dict(self.environment),
            "spans": list(self.spans),
            "metrics": self.metrics,
            "metrics_delta": dict(self.metrics_delta),
        }

    def slowest_spans(self, top: int = 10) -> list[dict]:
        """Return the ``top`` spans by duration, slowest first."""
        return sorted(self.spans, key=lambda s: -s["duration_s"])[:top]

    def to_markdown(self, top: int = 10) -> str:
        """Render a markdown summary: header line + slowest-span table."""
        lines = [
            f"## flight record: {self.label}",
            "",
            f"- duration: {self.duration_s:.3f}s, spans captured: {len(self.spans)}",
            f"- python {self.environment.get('python', '?')} on "
            f"{self.environment.get('platform', '?')} "
            f"(repro {self.environment.get('repro_version', '?')})",
            "",
            "| span | duration (s) | attrs |",
            "| --- | --- | --- |",
        ]
        for s in self.slowest_spans(top):
            attrs = ", ".join(f"{k}={v}" for k, v in sorted(s["attrs"].items()))
            lines.append(f"| {s['name']} | {s['duration_s']:.4f} | {attrs} |")
        if self.metrics_delta:
            lines += ["", "| counter | delta |", "| --- | --- |"]
            for key in sorted(self.metrics_delta):
                lines.append(f"| `{key}` | {_fmt(self.metrics_delta[key])} |")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a counter delta without a trailing ``.0``."""
    return str(int(value)) if float(value).is_integer() else f"{value:g}"


class FlightRecorder:
    """Context manager that records spans and metric deltas for one run."""

    def __init__(
        self,
        label: str = "run",
        registry: _metrics.MetricsRegistry | None = None,
        ring_size: int = 4096,
    ) -> None:
        """Prepare a recorder for one labeled run (enter to start)."""
        self.label = label
        self.registry = registry if registry is not None else _metrics.get_registry()
        self._ring = _trace.RingSink(maxlen=ring_size)
        self._before: dict[str, float] = {}
        self._start_wall = 0.0
        self._start_perf = 0.0
        self.report: RunReport | None = None

    def __enter__(self) -> "FlightRecorder":
        """Snapshot the registry and start capturing spans."""
        self._before = _flatten_counters(self.registry.snapshot())
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        _trace.add_sink(self._ring)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop capturing and assemble the :class:`RunReport`."""
        _trace.remove_sink(self._ring)
        duration = time.perf_counter() - self._start_perf
        snapshot = self.registry.snapshot()
        after = _flatten_counters(snapshot)
        delta = {
            key: value - self._before.get(key, 0.0)
            for key, value in after.items()
            if value != self._before.get(key, 0.0)
        }
        self.report = RunReport(
            label=self.label,
            started_at=self._start_wall,
            duration_s=duration,
            environment=environment_fingerprint(),
            spans=self._ring.spans(),
            metrics=snapshot,
            metrics_delta=delta,
        )
