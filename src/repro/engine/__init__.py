"""Parallel design-space exploration engine.

Public surface:

* :class:`ExplorationEngine` — job-list execution with memoization and
  pluggable parallelism (``jobs=1`` serial, ``jobs=N`` process pool);
* :class:`EvaluationJob` / :class:`SimulationJob` / :class:`JobResult` —
  the two design-space job kinds (mapping search, campaign measurement)
  and their shared outcome record;
* :class:`EvaluationCache` — shared content-keyed result cache;
* :class:`MemoryBackend` / :class:`SQLiteBackend` /
  :class:`DirectoryBackend` — pluggable cache storage
  (:func:`make_backend` builds one from a spec string); the persistent
  backends carry warm results across processes and CI runs;
* :func:`make_executor`, :class:`SerialExecutor`,
  :class:`ProcessExecutor` — the executor plugins.
"""

from repro.engine.backends import (
    CacheBackend,
    DirectoryBackend,
    MemoryBackend,
    SQLiteBackend,
    make_backend,
)
from repro.engine.cache import CacheStats, EvaluationCache
from repro.engine.engine import ExplorationEngine
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.jobs import (
    EvaluationJob,
    JobResult,
    SimulationJob,
    execute_job,
    execute_simulation_job,
    run_job,
)

__all__ = [
    "CacheBackend",
    "CacheStats",
    "DirectoryBackend",
    "EvaluationCache",
    "EvaluationJob",
    "ExplorationEngine",
    "JobResult",
    "MemoryBackend",
    "ProcessExecutor",
    "SQLiteBackend",
    "SerialExecutor",
    "SimulationJob",
    "execute_job",
    "execute_simulation_job",
    "make_backend",
    "make_executor",
    "run_job",
]
