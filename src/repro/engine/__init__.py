"""Parallel design-space exploration engine.

Public surface:

* :class:`ExplorationEngine` — job-list execution with memoization and
  pluggable parallelism (``jobs=1`` serial, ``jobs=N`` process pool);
* :class:`EvaluationJob` / :class:`SimulationJob` / :class:`JobResult` —
  the two design-space job kinds (mapping search, campaign measurement)
  and their shared outcome record;
* :class:`EvaluationCache` — shared content-keyed result cache;
* :class:`MemoryBackend` / :class:`SQLiteBackend` /
  :class:`DirectoryBackend` — pluggable cache storage
  (:func:`make_backend` builds one from a spec string); the persistent
  backends carry warm results across processes and CI runs;
* :func:`make_executor`, :class:`SerialExecutor`,
  :class:`ProcessExecutor` — the executor plugins;
* :class:`RetryPolicy` / :class:`JobFailure` / :func:`classify_failure`
  — the crash-tolerance layer (retries with deterministic backoff,
  typed terminal failures);
* :class:`RunJournal` — append-only run journal for resumable sweeps.
"""

from repro.engine.backends import (
    CacheBackend,
    DirectoryBackend,
    MemoryBackend,
    SQLiteBackend,
    key_fingerprint,
    make_backend,
)
from repro.engine.cache import CacheStats, EvaluationCache
from repro.engine.engine import ExplorationEngine
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.jobs import (
    EvaluationJob,
    JobResult,
    SimulationJob,
    execute_job,
    execute_simulation_job,
    run_job,
)
from repro.engine.journal import JournalStats, RunJournal, open_journal
from repro.engine.resilience import (
    DEFAULT_RETRY_POLICY,
    JobFailure,
    RetryPolicy,
    classify_failure,
)

__all__ = [
    "CacheBackend",
    "CacheStats",
    "DEFAULT_RETRY_POLICY",
    "DirectoryBackend",
    "EvaluationCache",
    "EvaluationJob",
    "ExplorationEngine",
    "JobFailure",
    "JobResult",
    "JournalStats",
    "MemoryBackend",
    "ProcessExecutor",
    "RetryPolicy",
    "RunJournal",
    "SQLiteBackend",
    "SerialExecutor",
    "SimulationJob",
    "classify_failure",
    "execute_job",
    "execute_simulation_job",
    "key_fingerprint",
    "make_backend",
    "make_executor",
    "open_journal",
    "run_job",
]
