"""Pluggable job executors: serial in-process and multi-process.

An executor receives ``(index, job)`` pairs and yields ``(index, result)``
pairs in *any* order — the engine reduces them back into submission order,
so correctness never depends on completion order. The process executor
fans jobs out over :class:`concurrent.futures.ProcessPoolExecutor`; jobs
carry deterministic seeds (:meth:`EvaluationJob.resolved_seed`), so both
executors produce bit-identical results.

Both executors run under a :class:`~repro.engine.resilience.RetryPolicy`
(crash-tolerant execution): transient failures — a worker killed
mid-job, a per-job wall-clock timeout, an ``OSError`` — are retried with
deterministic backoff, a broken pool is rebuilt and only the lost jobs
resubmitted, and a job that exhausts its budget yields a typed
:class:`~repro.engine.resilience.JobFailure` result instead of tearing
down the sweep. Retries re-run the same seeded job, so success after a
retry is bit-identical to first-try success.
"""

from __future__ import annotations

import os
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Protocol

from repro.engine.jobs import EvaluationJob, JobResult, job_kind
from repro.engine.resilience import (
    DEFAULT_RETRY_POLICY,
    RETRIES,
    RetryPolicy,
    _failure_kind,
    classify_failure,
    failure_from,
    run_with_retries,
)
from repro.errors import JobTimeoutError, ReproError, WorkerCrashError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

_JOB_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_job_seconds", "Per-job execution latency by job kind", ("kind",)
)
_QUEUE_WAIT = obs_metrics.REGISTRY.histogram(
    "repro_job_queue_wait_seconds",
    "Time pool jobs spent queued before a worker slot opened",
)
_REBUILDS = obs_metrics.REGISTRY.counter(
    "repro_engine_pool_rebuilds_total",
    "Process pools rebuilt after a crash or timeout kill",
)
_QUARANTINED = obs_metrics.REGISTRY.counter(
    "repro_engine_quarantined_total",
    "Jobs routed to the one-worker quarantine pool",
)

IndexedJobs = Iterable[tuple[int, EvaluationJob]]
JobFn = Callable[[EvaluationJob], JobResult]

#: Destination queues for a retried job (see ``_Pending.dest``): ``MAIN``
#: is the shared pool, ``QUARANTINE`` the one-worker isolation pool for
#: crash/timeout suspects.
_MAIN, _QUARANTINE = "main", "quarantine"


def _run_inline(fn, job, policy: RetryPolicy, executor_name: str) -> JobResult:
    """Run one job in-process, observing its latency and a job span."""
    start = time.perf_counter()
    result = run_with_retries(fn, job, policy)
    duration = time.perf_counter() - start
    kind = job_kind(job)
    _JOB_SECONDS.observe(duration, kind=kind)
    obs_trace.emit(
        "engine.job",
        duration,
        kind=kind,
        tag=str(getattr(job, "tag", "")),
        executor=executor_name,
        attempts=getattr(result, "attempts", 1),
        ok=bool(getattr(result, "ok", True)),
    )
    return result


class Executor(Protocol):
    """Anything that can run evaluation jobs for the engine."""

    name: str

    def run(
        self, fn: JobFn, indexed_jobs: IndexedJobs
    ) -> Iterator[tuple[int, JobResult]]:
        """Yield ``(submission_index, result)`` pairs in any order."""
        ...


class SerialExecutor:
    """Run every job inline, in submission order (the reference path).

    Shares the process executor's retry semantics for transient in-job
    failures; per-job timeouts cannot be preempted in-process and are
    ignored (documented on :class:`RetryPolicy`).
    """

    name = "serial"

    def __init__(self, policy: RetryPolicy | None = None):
        """Create the executor under ``policy`` (``None`` = defaults)."""
        self.policy = policy or DEFAULT_RETRY_POLICY

    def run(
        self, fn: JobFn, indexed_jobs: IndexedJobs
    ) -> Iterator[tuple[int, JobResult]]:
        """Execute each job inline and yield its result immediately."""
        for index, job in indexed_jobs:
            yield index, _run_inline(fn, job, self.policy, self.name)


class _Inflight:
    """Bookkeeping for one submitted future."""

    __slots__ = ("index", "attempt", "deadline", "submitted")

    def __init__(self, index: int, attempt: int, deadline: float | None):
        self.index = index
        self.attempt = attempt
        self.deadline = deadline
        #: ``perf_counter`` at submission (observability: execute time).
        self.submitted = time.perf_counter()


class ProcessExecutor:
    """Fan jobs out over a process pool; yields results as they finish.

    Worker count defaults to the machine's CPU count. Each ``run`` call
    opens and drains its own pool, so the executor object itself stays
    picklable and reusable.

    Dispatch is a bounded scheduler rather than a fire-and-forget
    ``submit`` loop: at most ``max_workers`` jobs are in flight at once,
    the rest wait in the executor's own queue. The bound is what makes
    failure attribution possible — when a worker dies and the pool
    breaks, only the in-flight jobs are suspects; queued jobs are
    resubmitted to the rebuilt pool without being charged an attempt.
    A lone suspect is charged directly; suspects from a multi-job
    breakage are re-run through a one-worker *quarantine* pool, one at
    a time, so the next crash identifies the culprit exactly and
    innocent neighbours never burn their own retry budget on someone
    else's bomb.

    Per-job timeouts (``policy.timeout_s``) are enforced through the
    pool future's deadline: an expired job's worker is killed (the only
    way to reclaim the slot), the job is charged a
    :class:`~repro.errors.JobTimeoutError` attempt and quarantined for
    its retry, and the other in-flight jobs are resubmitted uncharged.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        policy: RetryPolicy | None = None,
    ):
        """Create the executor (``None`` = one worker per CPU)."""
        if max_workers is not None and max_workers < 1:
            raise ReproError("process executor needs at least one worker")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.policy = policy or DEFAULT_RETRY_POLICY
        #: Pools rebuilt after a crash or timeout kill (observability;
        #: cumulative across ``run`` calls).
        self.pool_rebuilds = 0

    def run(
        self, fn: JobFn, indexed_jobs: IndexedJobs
    ) -> Iterator[tuple[int, JobResult]]:
        """Yield results as workers finish them (completion order)."""
        indexed = list(indexed_jobs)
        if not indexed:
            return
        if len(indexed) == 1 and self.policy.timeout_s is None:
            # A pool for one job is pure overhead — but the job still
            # runs under the same retry/failure-capture wrapper, so
            # behaviour does not depend on sweep size. (With a timeout
            # configured, the pool path runs even for one job: a wall
            # clock needs a killable worker.)
            index, job = indexed[0]
            yield index, _run_inline(fn, job, self.policy, self.name)
            return
        yield from self._run_pool(fn, indexed)

    # ------------------------------------------------------------------
    # pool scheduler
    # ------------------------------------------------------------------
    def _run_pool(
        self, fn: JobFn, indexed: list[tuple[int, EvaluationJob]]
    ) -> Iterator[tuple[int, JobResult]]:
        """Crash-tolerant bounded dispatch over rebuildable pools."""
        policy = self.policy
        jobs = dict(indexed)
        # Enqueue timestamps (observability): queue wait is measured from
        # the first time a job entered the dispatch queue to its final
        # submission, so backoff and rebuild requeues count as waiting.
        enqueued = {index: time.perf_counter() for index, _ in indexed}
        waiting: deque[tuple[int, int]] = deque(
            (index, 1) for index, _ in indexed
        )
        quarantine: deque[tuple[int, int]] = deque()
        delayed: list[tuple[float, int, int, str]] = []
        inflight: dict[object, _Inflight] = {}
        solo_inflight: dict[object, _Inflight] = {}
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        solo: ProcessPoolExecutor | None = None
        completed = False
        try:
            while (
                waiting or quarantine or delayed
                or inflight or solo_inflight
            ):
                now = time.monotonic()
                delayed.sort()
                while delayed and delayed[0][0] <= now:
                    _, index, attempt, dest = delayed.pop(0)
                    target = quarantine if dest == _QUARANTINE else waiting
                    target.append((index, attempt))
                while waiting and len(inflight) < self.max_workers:
                    index, attempt = waiting.popleft()
                    try:
                        self._submit(
                            pool, fn, jobs[index], index, attempt, inflight
                        )
                    except BrokenProcessPool:
                        # Broke while idle; rebuild and resubmit.
                        waiting.appendleft((index, attempt))
                        pool = self._rebuild(pool, inflight, waiting)
                if quarantine and not solo_inflight:
                    if solo is None:
                        solo = ProcessPoolExecutor(max_workers=1)
                    index, attempt = quarantine.popleft()
                    try:
                        self._submit(
                            solo, fn, jobs[index], index, attempt,
                            solo_inflight,
                        )
                    except BrokenProcessPool:
                        quarantine.appendleft((index, attempt))
                        self._shutdown(solo, kill=True)
                        solo = None
                if not inflight and not solo_inflight:
                    if delayed:
                        time.sleep(max(0.0, delayed[0][0] - now))
                    continue
                done, _ = wait(
                    list(inflight) + list(solo_inflight),
                    timeout=self._wait_timeout(
                        inflight, solo_inflight, delayed, now
                    ),
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                main_crashed: list[_Inflight] = []
                solo_crashed: list[_Inflight] = []
                for future in done:
                    if future in inflight:
                        entry, from_solo = inflight.pop(future), False
                    else:
                        entry, from_solo = solo_inflight.pop(future), True
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        (solo_crashed if from_solo else main_crashed).append(
                            entry
                        )
                    except Exception as exc:  # noqa: BLE001 - classified
                        outcome = self._retry_or_fail(
                            jobs, entry, exc, delayed, now, dest=_MAIN
                        )
                        if outcome is not None:
                            self._observe_done(jobs, entry, enqueued, ok=False)
                            yield entry.index, outcome
                    else:
                        self._observe_done(jobs, entry, enqueued, ok=True)
                        yield entry.index, result

                if main_crashed:
                    # Every in-flight main-pool job died with the pool:
                    # the ones wait() had not reported yet are equally
                    # lost. A lone suspect is charged; several suspects
                    # go to quarantine uncharged for exact attribution.
                    main_crashed.extend(inflight.values())
                    inflight.clear()
                    yield from self._crashed(
                        jobs, main_crashed, quarantine, delayed, now
                    )
                    pool = self._rebuild(pool, inflight, waiting)
                if solo_crashed:
                    # The quarantine pool runs one job: culprit known.
                    yield from self._crashed(
                        jobs, solo_crashed, quarantine, delayed, now
                    )
                    self._shutdown(solo, kill=True)
                    solo = None
                    self._count_rebuild()

                expired = [
                    (future, entry)
                    for future, entry in inflight.items()
                    if entry.deadline is not None
                    and entry.deadline <= now
                    and not future.done()
                ]
                if expired:
                    for future, entry in expired:
                        del inflight[future]
                        outcome = self._timed_out(jobs, entry, delayed, now)
                        if outcome is not None:
                            yield entry.index, outcome
                    # Killing the stuck worker breaks the whole pool;
                    # the other in-flight jobs are innocent — resubmit
                    # them uncharged.
                    pool = self._rebuild(pool, inflight, waiting)
                solo_expired = [
                    (future, entry)
                    for future, entry in solo_inflight.items()
                    if entry.deadline is not None
                    and entry.deadline <= now
                    and not future.done()
                ]
                if solo_expired:
                    for future, entry in solo_expired:
                        del solo_inflight[future]
                        outcome = self._timed_out(jobs, entry, delayed, now)
                        if outcome is not None:
                            yield entry.index, outcome
                    self._shutdown(solo, kill=True)
                    solo = None
                    self._count_rebuild()
            completed = True
        finally:
            self._shutdown(pool, kill=not completed)
            if solo is not None:
                self._shutdown(solo, kill=not completed)

    # -- helpers -----------------------------------------------------------
    def _observe_done(
        self, jobs: dict, entry: _Inflight, enqueued: dict, ok: bool
    ) -> None:
        """Record latency metrics and a retrospective span for one job."""
        now = time.perf_counter()
        duration = now - entry.submitted
        queue_wait = max(
            0.0, entry.submitted - enqueued.get(entry.index, entry.submitted)
        )
        kind = job_kind(jobs[entry.index])
        _JOB_SECONDS.observe(duration, kind=kind)
        _QUEUE_WAIT.observe(queue_wait)
        obs_trace.emit(
            "engine.job",
            duration,
            kind=kind,
            tag=str(getattr(jobs[entry.index], "tag", "")),
            executor=self.name,
            attempts=entry.attempt,
            queue_wait_s=round(queue_wait, 6),
            ok=ok,
        )

    def _count_rebuild(self) -> None:
        """Bump both the legacy attribute and the registry counter."""
        self.pool_rebuilds += 1
        _REBUILDS.inc()

    def _submit(
        self, pool, fn, job, index: int, attempt: int, table: dict
    ) -> None:
        """Submit one job and record its in-flight bookkeeping."""
        future = pool.submit(fn, job)
        deadline = (
            None
            if self.policy.timeout_s is None
            else time.monotonic() + self.policy.timeout_s
        )
        table[future] = _Inflight(index, attempt, deadline)

    def _rebuild(self, pool, inflight: dict, waiting: deque):
        """Kill a broken pool; recover its lost jobs uncharged."""
        for entry in inflight.values():
            waiting.append((entry.index, entry.attempt))
        inflight.clear()
        self._shutdown(pool, kill=True)
        self._count_rebuild()
        return ProcessPoolExecutor(max_workers=self.max_workers)

    @staticmethod
    def _shutdown(pool, kill: bool) -> None:
        """Shut a pool down; ``kill=True`` terminates worker processes.

        Termination is the only way to reclaim workers running wedged
        or abandoned jobs; ``_processes`` is stdlib-internal but stable,
        and guarded so a refactor degrades to a plain shutdown.
        """
        if kill:
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except Exception:  # noqa: BLE001 - already exiting
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - shutdown is best-effort
            pass

    @staticmethod
    def _wait_timeout(
        inflight: dict, solo_inflight: dict, delayed: list, now: float
    ) -> float | None:
        """How long ``wait`` may block before a deadline needs service."""
        horizon: float | None = None
        for table in (inflight, solo_inflight):
            for entry in table.values():
                if entry.deadline is not None and (
                    horizon is None or entry.deadline < horizon
                ):
                    horizon = entry.deadline
        if delayed and (horizon is None or delayed[0][0] < horizon):
            horizon = delayed[0][0]
        return None if horizon is None else max(0.0, horizon - now)

    def _retry_or_fail(
        self,
        jobs: dict,
        entry: _Inflight,
        exc: BaseException,
        delayed: list,
        now: float,
        dest: str,
    ):
        """Schedule a retry under the policy, or return a failure."""
        job = jobs[entry.index]
        if classify_failure(exc) and entry.attempt < self.policy.max_attempts:
            RETRIES.inc(kind=job_kind(job))
            if dest == _QUARANTINE:
                _QUARANTINED.inc()
            seed = getattr(job, "resolved_seed", lambda: 0)()
            ready = now + self.policy.delay_s(entry.attempt, seed)
            delayed.append((ready, entry.index, entry.attempt + 1, dest))
            return None
        return failure_from(job, exc, entry.attempt, _failure_kind(exc))

    def _crashed(self, jobs, crashed, quarantine, delayed, now):
        """Account for jobs lost to a dead worker.

        A single suspect is the proven culprit: charge the attempt (and
        retry it in quarantine, where its next crash cannot take
        neighbours down). Multiple suspects are indistinguishable: all
        go to quarantine *uncharged*, where crashes are attributable.
        """
        if len(crashed) == 1:
            entry = crashed[0]
            exc = WorkerCrashError(
                "worker process died while running job "
                f"{getattr(jobs[entry.index], 'tag', '') or entry.index!r}"
            )
            outcome = self._retry_or_fail(
                jobs, entry, exc, delayed, now, dest=_QUARANTINE
            )
            if outcome is not None:
                yield entry.index, outcome
            return
        for entry in crashed:
            _QUARANTINED.inc()
            quarantine.append((entry.index, entry.attempt))

    def _timed_out(self, jobs, entry: _Inflight, delayed: list, now: float):
        """Charge a job that exceeded its wall-clock budget."""
        exc = JobTimeoutError(
            f"job {getattr(jobs[entry.index], 'tag', '') or entry.index!r} "
            f"exceeded its {self.policy.timeout_s:g}s wall-clock budget"
        )
        return self._retry_or_fail(
            jobs, entry, exc, delayed, now, dest=_QUARANTINE
        )


def make_executor(
    jobs: int | None = None,
    name: str | None = None,
    policy: RetryPolicy | None = None,
) -> Executor:
    """Build an executor from a ``--jobs``-style count or an explicit name.

    ``jobs=1`` (or ``None``) → serial; ``jobs>1`` → process pool with
    that many workers; ``jobs=0`` → process pool sized to the machine.
    ``policy`` configures retry/timeout resilience (``None`` =
    :data:`~repro.engine.resilience.DEFAULT_RETRY_POLICY`).
    """
    if name is not None:
        if name == "serial":
            return SerialExecutor(policy=policy)
        if name == "process":
            return ProcessExecutor(max_workers=jobs or None, policy=policy)
        raise ReproError(
            f"unknown executor {name!r}; choose from ['serial', 'process']"
        )
    if jobs is None or jobs == 1:
        return SerialExecutor(policy=policy)
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    return ProcessExecutor(max_workers=jobs or None, policy=policy)
