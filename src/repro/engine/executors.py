"""Pluggable job executors: serial in-process and multi-process.

An executor receives ``(index, job)`` pairs and yields ``(index, result)``
pairs in *any* order — the engine reduces them back into submission order,
so correctness never depends on completion order. The process executor
fans jobs out over :class:`concurrent.futures.ProcessPoolExecutor`; jobs
carry deterministic seeds (:meth:`EvaluationJob.resolved_seed`), so both
executors produce bit-identical results.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Protocol

from repro.engine.jobs import EvaluationJob, JobResult
from repro.errors import ReproError

IndexedJobs = Iterable[tuple[int, EvaluationJob]]
JobFn = Callable[[EvaluationJob], JobResult]


class Executor(Protocol):
    """Anything that can run evaluation jobs for the engine."""

    name: str

    def run(
        self, fn: JobFn, indexed_jobs: IndexedJobs
    ) -> Iterator[tuple[int, JobResult]]:
        """Yield ``(submission_index, result)`` pairs in any order."""
        ...


class SerialExecutor:
    """Run every job inline, in submission order (the reference path)."""

    name = "serial"

    def run(
        self, fn: JobFn, indexed_jobs: IndexedJobs
    ) -> Iterator[tuple[int, JobResult]]:
        """Execute each job inline and yield its result immediately."""
        for index, job in indexed_jobs:
            yield index, fn(job)


class ProcessExecutor:
    """Fan jobs out over a process pool; yields results as they finish.

    Worker count defaults to the machine's CPU count. Each ``run`` call
    opens and drains its own pool, so the executor object itself stays
    picklable and reusable.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None):
        """Create the executor (``None`` = one worker per CPU)."""
        if max_workers is not None and max_workers < 1:
            raise ReproError("process executor needs at least one worker")
        self.max_workers = max_workers or os.cpu_count() or 1

    def run(
        self, fn: JobFn, indexed_jobs: IndexedJobs
    ) -> Iterator[tuple[int, JobResult]]:
        """Yield results as workers finish them (completion order)."""
        indexed = list(indexed_jobs)
        if not indexed:
            return
        if len(indexed) == 1:
            # A pool for one job is pure overhead.
            index, job = indexed[0]
            yield index, fn(job)
            return
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {
                pool.submit(fn, job): index for index, job in indexed
            }
            for future in as_completed(futures):
                yield futures[future], future.result()


def make_executor(jobs: int | None = None, name: str | None = None) -> Executor:
    """Build an executor from a ``--jobs``-style count or an explicit name.

    ``jobs=1`` (or ``None``) → serial; ``jobs>1`` → process pool with
    that many workers; ``jobs=0`` → process pool sized to the machine.
    """
    if name is not None:
        if name == "serial":
            return SerialExecutor()
        if name == "process":
            return ProcessExecutor(max_workers=jobs or None)
        raise ReproError(
            f"unknown executor {name!r}; choose from ['serial', 'process']"
        )
    if jobs is None or jobs == 1:
        return SerialExecutor()
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    return ProcessExecutor(max_workers=jobs or None)
