"""Job and result records for the exploration engine.

Three job kinds share the engine's memoize-dedupe-execute pipeline:

* :class:`EvaluationJob` — one candidate of the design space: a
  (core graph, topology, routing function, objective) tuple plus the
  mapper knobs. Executing it runs the full Figure-5 mapping search.
* :class:`SimulationJob` — one point of a simulation campaign: a
  (topology, traffic pattern, injection rate, seed) tuple plus the
  simulator protocol. Executing it runs one warmup/measure/drain
  flit-level measurement.
* :class:`SynthesisJob` — one synthesized-fabric candidate of a
  topology-synthesis sweep: a (core graph, candidate spec) pair plus
  the mapping knobs. Executing it rebuilds the fabric from its spec
  (a cheap pure function) and runs the full mapping search on it.

Jobs carry everything a worker process needs, so they must stay
picklable end to end; :func:`run_job` is the executor-side dispatcher
that routes each kind to its executor function.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import astuple, dataclass, field, replace

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation
from repro.core.mapper import MapperConfig, map_onto
from repro.core.objectives import Objective
from repro.engine.fingerprint import (
    config_fingerprint,
    constraints_fingerprint,
    core_graph_fingerprint,
    estimator_fingerprint,
    objective_fingerprint,
    sim_config_fingerprint,
    topology_fingerprint,
)
from repro.errors import (
    MappingInfeasibleError,
    ReproError,
    SimulationError,
    TopologyError,
    UnsupportedRoutingError,
)
from repro.physical.estimate import NetworkEstimator
from repro.topology.base import Topology

#: Exceptions the serial flow treats as "this candidate is out", not as a
#: crash; workers capture them into :attr:`JobResult.error`.
CAPTURED_ERRORS = (
    MappingInfeasibleError,
    UnsupportedRoutingError,
    SimulationError,
)


@dataclass(frozen=True)
class EvaluationJob:
    """One topology × routing × objective candidate to evaluate.

    Attributes:
        tag: caller-chosen label used to route the result back (the
            selector tags by topology name, the routing sweep by code).
        collect: also return every mapping the swap search evaluated
            (the Pareto exploration of Figure 9(b) needs the full cloud).
        seed: deterministic per-job RNG seed; derived from the job's
            cache key when not given, so results never depend on which
            executor ran the job or in which order.
    """

    core_graph: CoreGraph
    topology: Topology
    routing: str = "MP"
    objective: Objective | str = "hops"
    constraints: Constraints | None = None
    config: MapperConfig | None = None
    estimator: NetworkEstimator | None = None
    tag: str = ""
    collect: bool = False
    seed: int | None = None

    def cache_key(self) -> tuple:
        """Content key identifying the work (independent of ``tag``).

        Includes the explicit ``seed`` so two jobs that differ only in
        seed never share a cache entry (a future stochastic search must
        not be served results computed under another seed).
        """
        return (
            core_graph_fingerprint(self.core_graph),
            topology_fingerprint(self.topology),
            self.routing,
            objective_fingerprint(self.objective),
            constraints_fingerprint(self.constraints),
            config_fingerprint(self.config),
            estimator_fingerprint(self.estimator),
            self.collect,
            self.seed,
        )

    def resolved_seed(self) -> int:
        """The job's effective RNG seed (stable across runs/executors)."""
        if self.seed is not None:
            return self.seed
        return hash_seed(self.cache_key())

    def pinned(self, key: tuple) -> "EvaluationJob":
        """Copy with the content-derived seed made explicit.

        The engine pins pending jobs before handing them to an executor
        so workers take the explicit-seed fast path instead of
        re-fingerprinting the core graph and topology; ``key`` is the
        job's already-computed :meth:`cache_key`.
        """
        if self.seed is not None:
            return self
        return replace(self, seed=hash_seed(key))


def _error_class_by_name(name: str) -> type:
    """Resolve a captured exception class name back to the class."""
    for base in CAPTURED_ERRORS:
        stack = [base]
        while stack:
            cls = stack.pop()
            if cls.__name__ == name:
                return cls
            stack.extend(cls.__subclasses__())
    return ReproError


def hash_seed(key: tuple) -> int:
    """Derive a 32-bit seed from a cache key.

    Uses SHA-256 rather than Python's randomized ``hash`` (seeds must
    match across worker processes).
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return int(digest[:8], 16)


@dataclass
class JobResult:
    """Outcome of one executed (or cache-served) job.

    Exactly one payload (``evaluation`` for mapping jobs, ``value`` for
    simulation jobs) or ``error`` is set: ``error`` holds the message of
    a captured :data:`CAPTURED_ERRORS` exception (the paper's "skip this
    combination" outcomes); any other exception propagates.
    """

    tag: str
    evaluation: MappingEvaluation | None = None
    #: Payload of non-mapping jobs (a :class:`~repro.simulation.stats.
    #: SimReport` for :class:`SimulationJob`); treat as read-only, it is
    #: shared with the cache entry.
    value: object | None = None
    error: str | None = None
    error_type: str | None = None
    collected: list[MappingEvaluation] = field(default_factory=list)
    seed: int = 0
    cached: bool = False

    @property
    def ok(self) -> bool:
        """Whether the job produced a result (no captured error)."""
        return self.error is None

    @property
    def error_class(self) -> type | None:
        """The captured exception's class (``None`` when the job ran ok).

        Resolved by name against :data:`CAPTURED_ERRORS` and their
        subclasses, so a routing implementation raising a subclass is
        still recognized; unknown names resolve to :class:`ReproError`.
        """
        if self.error is None:
            return None
        return _error_class_by_name(self.error_type or "")

    def is_unsupported_routing(self) -> bool:
        """Whether the captured error means "routing undefined here"."""
        cls = self.error_class
        return cls is not None and issubclass(cls, UnsupportedRoutingError)

    def raise_if_error(self) -> None:
        """Re-raise the captured exception with its original type."""
        if self.error is None:
            return
        raise self.error_class(self.error)

    def retagged(self, tag: str, cached: bool) -> "JobResult":
        """Copy with a caller-facing tag/cached flag.

        The ``collected`` list is copied so callers that sort or append
        cannot poison the cached entry; the evaluations themselves are
        shared (treat them as read-only).
        """
        return replace(
            self, tag=tag, cached=cached, collected=list(self.collected)
        )


@dataclass(frozen=True)
class SimulationJob:
    """One (pattern, rate, seed) point of a simulation campaign.

    Executing the job runs one warmup/measure/drain flit-level
    measurement (:func:`repro.simulation.stats.run_measurement`) and
    returns its :class:`~repro.simulation.stats.SimReport` in
    :attr:`JobResult.value`. All randomness is derived from the job's
    *content* (``sim.seed`` and ``traffic_seed``), so results are
    bit-identical across executors, worker counts and completion orders.

    Attributes:
        pattern: synthetic pattern name from
            :data:`~repro.simulation.patterns.PATTERNS`, or ``"app"``
            for trace-driven traffic (requires ``core_graph`` and
            ``assignment``).
        rate: offered load in flits/cycle/node (see
            :func:`~repro.simulation.traffic.build_traffic` for the
            trace-traffic rescaling semantics).
        traffic_seed: seed of the traffic generator's RNG; campaign
            points that differ only in rate share it, so rate sweeps run
            under common random numbers.
        assignment: core index -> terminal slot as a sorted tuple of
            pairs (tuples keep the job hashable and picklable).
        sim: simulator parameters; its ``seed`` is mixed with
            ``traffic_seed`` to seed the network RNG.
    """

    topology: Topology
    pattern: str
    rate: float
    traffic_seed: int = 1
    sim: "object | None" = None  # SimConfig; None = defaults
    warmup: int = 500
    measure: int = 2000
    drain: int = 1500
    active_slots: tuple[int, ...] | None = None
    core_graph: CoreGraph | None = None
    assignment: tuple[tuple[int, int], ...] | None = None
    flit_width_bits: int = 32
    clock_mhz: float = 500.0
    tag: str = ""

    def cache_key(self) -> tuple:
        """Content key identifying the work (independent of ``tag``)."""
        return (
            "sim",
            topology_fingerprint(self.topology),
            self.pattern,
            self.rate,
            self.traffic_seed,
            sim_config_fingerprint(self.sim),
            self.warmup,
            self.measure,
            self.drain,
            self.active_slots,
            (
                None
                if self.core_graph is None
                else core_graph_fingerprint(self.core_graph)
            ),
            self.assignment,
            self.flit_width_bits,
            self.clock_mhz,
        )

    def resolved_seed(self) -> int:
        """Content-derived seed (reported in :attr:`JobResult.seed`)."""
        return hash_seed(self.cache_key())

    def pinned(self, key: tuple) -> "SimulationJob":
        """No-op for simulation jobs.

        Every seed the measurement uses is already explicit in the
        job's content, so there is nothing to pin before handing the
        job to an executor.
        """
        return self


def execute_simulation_job(job: SimulationJob) -> JobResult:
    """Run one campaign point's measurement; the executor-side entry.

    Module-level so :class:`ProcessExecutor` can pickle it. The network
    RNG seed is derived from ``(sim.seed, traffic_seed)`` content, never
    from executor or ordering state.
    """
    from repro.simulation.network import SimConfig
    from repro.simulation.stats import run_measurement
    from repro.simulation.traffic import build_traffic

    sim = job.sim or SimConfig()
    try:
        traffic = build_traffic(
            job.pattern,
            job.rate,
            seed=job.traffic_seed,
            core_graph=job.core_graph,
            assignment=(
                None if job.assignment is None else dict(job.assignment)
            ),
            flit_width_bits=job.flit_width_bits,
            clock_mhz=job.clock_mhz,
        )
        report = run_measurement(
            job.topology,
            traffic,
            config=replace(
                sim, seed=hash_seed(("net", sim.seed, job.traffic_seed))
            ),
            warmup=job.warmup,
            measure=job.measure,
            drain=job.drain,
            active_slots=(
                None if job.active_slots is None else list(job.active_slots)
            ),
            offered_rate=job.rate,
        )
    except CAPTURED_ERRORS as exc:
        return JobResult(
            tag=job.tag,
            error=str(exc),
            error_type=type(exc).__name__,
            seed=job.resolved_seed(),
        )
    return JobResult(tag=job.tag, value=report, seed=job.resolved_seed())


@dataclass(frozen=True)
class BatchSimulationJob:
    """A topology-group of campaign points run as one vectorized batch.

    The batch fast lane (:mod:`repro.simulation.batch`) advances every
    point that shares a fabric in lockstep, so a campaign submits one
    of these per fault variant instead of one :class:`SimulationJob`
    per point. The engine treats the group as *content-keyed per
    point*: each point caches, journals and resumes under its own
    ``("bsim", …)`` key — the exact kernel's ``("sim", …)`` entries are
    never served for batch points (the payloads are statistically, not
    bit-wise, equivalent) and vice versa. Batch results are independent
    of group composition (see the batch module's determinism
    contract), which is what makes per-point keys sound.

    Attributes:
        points: the grouped :class:`SimulationJob` records, all sharing
            one topology object, simulator config and active-slot set.
        tag: caller-chosen group label (per-point results keep their
            own point tags).
    """

    points: tuple[SimulationJob, ...]
    tag: str = ""

    def point_keys(self) -> list[tuple]:
        """Per-point content keys (the unit of caching and resume)."""
        return [("bsim",) + p.cache_key()[1:] for p in self.points]

    def cache_key(self) -> tuple:
        """Group key — the ordered tuple of per-point keys."""
        return ("bsim-group",) + tuple(self.point_keys())

    def subset(self, indices) -> "BatchSimulationJob":
        """The sub-batch holding only the given point indices."""
        return BatchSimulationJob(
            points=tuple(self.points[i] for i in indices), tag=self.tag
        )

    def resolved_seed(self) -> int:
        """Content-derived seed (batch lanes derive their own streams)."""
        return hash_seed(self.cache_key())

    def pinned(self, key: tuple) -> "BatchSimulationJob":
        """No-op: every batch lane's randomness is already content-keyed."""
        return self


def execute_batch_simulation_job(job: BatchSimulationJob) -> JobResult:
    """Run one topology-group of campaign points as an array batch.

    Module-level so :class:`ProcessExecutor` can pickle it; the batch
    simulator is imported lazily so the engine keeps no hard numpy
    dependency at import time. Returns a group :class:`JobResult`
    whose ``value`` is the ordered tuple of per-point results — a lane
    that failed on a captured error (unvectorizable pattern, no route)
    becomes an error entry while the rest of the group completes; a
    batch-level captured error fails every point.
    """
    from repro.simulation.batch import simulate_batch

    # Per-point results carry no seed: batch lanes derive their own
    # content-keyed random streams (and hashing a per-point seed here
    # would re-fingerprint the topology for every lane).
    try:
        payloads = simulate_batch(job.points)
    except CAPTURED_ERRORS as exc:
        point_results = tuple(
            JobResult(
                tag=p.tag,
                error=str(exc),
                error_type=type(exc).__name__,
            )
            for p in job.points
        )
        return JobResult(tag=job.tag, value=point_results)
    point_results = tuple(
        JobResult(
            tag=p.tag,
            error=str(payload),
            error_type=type(payload).__name__,
        )
        if isinstance(payload, Exception)
        else JobResult(tag=p.tag, value=payload)
        for p, payload in zip(job.points, payloads)
    )
    return JobResult(tag=job.tag, value=point_results)


@dataclass(frozen=True)
class SynthesisJob:
    """One synthesized-fabric candidate to build and evaluate.

    ``spec`` is a :class:`~repro.synthesis.fabric.CandidateSpec` — a
    frozen dataclass of simple values, so the job stays hashable and
    picklable and the fabric is rebuilt deterministically wherever the
    job executes (the topology itself never ships to workers). The
    executed result is a :attr:`JobResult.evaluation` whose
    ``.topology`` is the synthesized
    :class:`~repro.topology.custom.CustomTopology`.

    Attributes mirror :class:`EvaluationJob` (the evaluation half is
    the same Figure-5 mapping search), with ``spec`` replacing the
    explicit topology.
    """

    core_graph: CoreGraph
    spec: object
    routing: str = "MP"
    objective: Objective | str = "hops"
    constraints: Constraints | None = None
    config: MapperConfig | None = None
    estimator: NetworkEstimator | None = None
    tag: str = ""
    collect: bool = False
    seed: int | None = None

    def cache_key(self) -> tuple:
        """Content key identifying the work (independent of ``tag``)."""
        return (
            "synth",
            core_graph_fingerprint(self.core_graph),
            type(self.spec).__name__,
            astuple(self.spec),
            self.routing,
            objective_fingerprint(self.objective),
            constraints_fingerprint(self.constraints),
            config_fingerprint(self.config),
            estimator_fingerprint(self.estimator),
            self.collect,
            self.seed,
        )

    def resolved_seed(self) -> int:
        """The job's effective RNG seed (stable across runs/executors)."""
        if self.seed is not None:
            return self.seed
        return hash_seed(self.cache_key())

    def pinned(self, key: tuple) -> "SynthesisJob":
        """Copy with the content-derived seed made explicit.

        See :meth:`EvaluationJob.pinned`.
        """
        if self.seed is not None:
            return self
        return replace(self, seed=hash_seed(key))


def execute_synthesis_job(job: SynthesisJob) -> JobResult:
    """Build one candidate fabric and run its mapping search.

    Module-level so :class:`ProcessExecutor` can pickle it; the fabric
    builder is imported lazily so the engine package keeps no hard
    dependency on the synthesis package (which imports this module).
    An unbuildable spec (degree bound cannot connect the clusters) is
    captured as an error result, not a crash — the sweep simply loses
    that candidate, like an infeasible mapping.
    """
    from repro.synthesis.fabric import build_candidate

    seed = job.resolved_seed()
    collector: list[MappingEvaluation] | None = [] if job.collect else None
    rng_state = random.getstate()
    random.seed(seed)
    try:
        topology = build_candidate(job.core_graph, job.spec)
        evaluation = map_onto(
            job.core_graph,
            topology,
            routing=job.routing,
            objective=job.objective,
            constraints=job.constraints,
            estimator=job.estimator,
            config=job.config,
            collector=collector,
        )
    except CAPTURED_ERRORS + (TopologyError,) as exc:
        return JobResult(
            tag=job.tag,
            error=str(exc),
            error_type=type(exc).__name__,
            seed=seed,
        )
    finally:
        random.setstate(rng_state)
    return JobResult(
        tag=job.tag,
        evaluation=evaluation,
        collected=collector or [],
        seed=seed,
    )


#: Metric/trace label for each job class (``repro_engine_jobs_total{kind=…}``).
_KIND_NAMES = {
    "EvaluationJob": "evaluation",
    "SimulationJob": "simulation",
    "BatchSimulationJob": "batch_sim",
    "SynthesisJob": "synthesis",
}


def job_kind(job) -> str:
    """Short observability label for ``job``'s kind.

    Foreign job types (tests plug plain callables and stub classes into
    the executors) fall back to their lowercased class name.
    """
    return _KIND_NAMES.get(type(job).__name__, type(job).__name__.lower())


def run_job(job) -> JobResult:
    """Executor-side dispatcher across job kinds (must stay picklable)."""
    if isinstance(job, SimulationJob):
        return execute_simulation_job(job)
    if isinstance(job, BatchSimulationJob):
        return execute_batch_simulation_job(job)
    if isinstance(job, SynthesisJob):
        return execute_synthesis_job(job)
    return execute_job(job)


def execute_job(job: EvaluationJob) -> JobResult:
    """Run one candidate's mapping search; the executor-side entry point.

    Must be a module-level function so :class:`ProcessExecutor` can pickle
    it. The global RNG is seeded deterministically for the duration of the
    job and restored afterwards: the current mapper is fully
    deterministic, but this guarantees any future stochastic search
    (annealing restarts, randomized tie-breaks) stays reproducible and
    executor-independent — without clobbering the caller's own
    ``random`` state when the job runs in-process.
    """
    seed = job.resolved_seed()
    collector: list[MappingEvaluation] | None = [] if job.collect else None
    rng_state = random.getstate()
    random.seed(seed)
    try:
        evaluation = map_onto(
            job.core_graph,
            job.topology,
            routing=job.routing,
            objective=job.objective,
            constraints=job.constraints,
            estimator=job.estimator,
            config=job.config,
            collector=collector,
        )
    except CAPTURED_ERRORS as exc:
        return JobResult(
            tag=job.tag,
            error=str(exc),
            error_type=type(exc).__name__,
            seed=seed,
        )
    finally:
        random.setstate(rng_state)
    return JobResult(
        tag=job.tag,
        evaluation=evaluation,
        collected=collector or [],
        seed=seed,
    )
