"""Job and result records for the exploration engine.

One :class:`EvaluationJob` is one candidate of the design space — a
(core graph, topology, routing function, objective) tuple plus the mapper
knobs — and executing it means running the full Figure-5 mapping search
for that candidate. Jobs carry everything a worker process needs, so they
must stay picklable end to end.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation
from repro.core.mapper import MapperConfig, map_onto
from repro.core.objectives import Objective
from repro.engine.fingerprint import (
    config_fingerprint,
    constraints_fingerprint,
    core_graph_fingerprint,
    estimator_fingerprint,
    objective_fingerprint,
    topology_fingerprint,
)
from repro.errors import (
    MappingInfeasibleError,
    ReproError,
    UnsupportedRoutingError,
)
from repro.physical.estimate import NetworkEstimator
from repro.topology.base import Topology

#: Exceptions the serial flow treats as "this candidate is out", not as a
#: crash; workers capture them into :attr:`JobResult.error`.
CAPTURED_ERRORS = (MappingInfeasibleError, UnsupportedRoutingError)


@dataclass(frozen=True)
class EvaluationJob:
    """One topology × routing × objective candidate to evaluate.

    Attributes:
        tag: caller-chosen label used to route the result back (the
            selector tags by topology name, the routing sweep by code).
        collect: also return every mapping the swap search evaluated
            (the Pareto exploration of Figure 9(b) needs the full cloud).
        seed: deterministic per-job RNG seed; derived from the job's
            cache key when not given, so results never depend on which
            executor ran the job or in which order.
    """

    core_graph: CoreGraph
    topology: Topology
    routing: str = "MP"
    objective: Objective | str = "hops"
    constraints: Constraints | None = None
    config: MapperConfig | None = None
    estimator: NetworkEstimator | None = None
    tag: str = ""
    collect: bool = False
    seed: int | None = None

    def cache_key(self) -> tuple:
        """Content key identifying the work (independent of ``tag``).

        Includes the explicit ``seed`` so two jobs that differ only in
        seed never share a cache entry (a future stochastic search must
        not be served results computed under another seed).
        """
        return (
            core_graph_fingerprint(self.core_graph),
            topology_fingerprint(self.topology),
            self.routing,
            objective_fingerprint(self.objective),
            constraints_fingerprint(self.constraints),
            config_fingerprint(self.config),
            estimator_fingerprint(self.estimator),
            self.collect,
            self.seed,
        )

    def resolved_seed(self) -> int:
        """The job's effective RNG seed (stable across runs/executors)."""
        if self.seed is not None:
            return self.seed
        return hash_seed(self.cache_key())

    def pinned(self, key: tuple) -> "EvaluationJob":
        """Copy with the content-derived seed made explicit.

        The engine pins pending jobs before handing them to an executor
        so workers take the explicit-seed fast path instead of
        re-fingerprinting the core graph and topology; ``key`` is the
        job's already-computed :meth:`cache_key`.
        """
        if self.seed is not None:
            return self
        return replace(self, seed=hash_seed(key))


def _error_class_by_name(name: str) -> type:
    """Resolve a captured exception class name back to the class."""
    for base in CAPTURED_ERRORS:
        stack = [base]
        while stack:
            cls = stack.pop()
            if cls.__name__ == name:
                return cls
            stack.extend(cls.__subclasses__())
    return ReproError


def hash_seed(key: tuple) -> int:
    """Derive a 32-bit seed from a cache key, without Python's randomized
    ``hash`` (must match across worker processes)."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return int(digest[:8], 16)


@dataclass
class JobResult:
    """Outcome of one executed (or cache-served) job.

    Exactly one of ``evaluation`` / ``error`` is set: ``error`` holds the
    message of a captured :data:`CAPTURED_ERRORS` exception (the paper's
    "skip this combination" outcomes); any other exception propagates.
    """

    tag: str
    evaluation: MappingEvaluation | None = None
    error: str | None = None
    error_type: str | None = None
    collected: list[MappingEvaluation] = field(default_factory=list)
    seed: int = 0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def error_class(self) -> type | None:
        """The captured exception's class (``None`` when the job ran ok).

        Resolved by name against :data:`CAPTURED_ERRORS` and their
        subclasses, so a routing implementation raising a subclass is
        still recognized; unknown names resolve to :class:`ReproError`.
        """
        if self.error is None:
            return None
        return _error_class_by_name(self.error_type or "")

    def is_unsupported_routing(self) -> bool:
        """Whether the captured error means "routing undefined here"."""
        cls = self.error_class
        return cls is not None and issubclass(cls, UnsupportedRoutingError)

    def raise_if_error(self) -> None:
        """Re-raise the captured exception with its original type."""
        if self.error is None:
            return
        raise self.error_class(self.error)

    def retagged(self, tag: str, cached: bool) -> "JobResult":
        """Copy with a caller-facing tag/cached flag.

        The ``collected`` list is copied so callers that sort or append
        cannot poison the cached entry; the evaluations themselves are
        shared (treat them as read-only).
        """
        return replace(
            self, tag=tag, cached=cached, collected=list(self.collected)
        )


def execute_job(job: EvaluationJob) -> JobResult:
    """Run one candidate's mapping search; the executor-side entry point.

    Must be a module-level function so :class:`ProcessExecutor` can pickle
    it. The global RNG is seeded deterministically for the duration of the
    job and restored afterwards: the current mapper is fully
    deterministic, but this guarantees any future stochastic search
    (annealing restarts, randomized tie-breaks) stays reproducible and
    executor-independent — without clobbering the caller's own
    ``random`` state when the job runs in-process.
    """
    seed = job.resolved_seed()
    collector: list[MappingEvaluation] | None = [] if job.collect else None
    rng_state = random.getstate()
    random.seed(seed)
    try:
        evaluation = map_onto(
            job.core_graph,
            job.topology,
            routing=job.routing,
            objective=job.objective,
            constraints=job.constraints,
            estimator=job.estimator,
            config=job.config,
            collector=collector,
        )
    except CAPTURED_ERRORS as exc:
        return JobResult(
            tag=job.tag,
            error=str(exc),
            error_type=type(exc).__name__,
            seed=seed,
        )
    finally:
        random.setstate(rng_state)
    return JobResult(
        tag=job.tag,
        evaluation=evaluation,
        collected=collector or [],
        seed=seed,
    )
