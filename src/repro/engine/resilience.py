"""Crash-tolerant job execution: retry policies and typed job failures.

The executors used to assume a perfect machine: one crashed worker
(``BrokenProcessPool``), one wedged job, or one transient ``OSError``
destroyed an entire sweep's progress. This module gives the runtime a
failure model instead:

* :class:`RetryPolicy` — how hard to try: attempt budget, exponential
  backoff with *deterministic* jitter (derived from the job's seed, so
  two runs of the same sweep back off identically), and an optional
  per-job wall-clock timeout.
* :func:`classify_failure` — the taxonomy split: worker crashes,
  timeouts and ``OSError`` are transient (``retryable``); domain
  errors from :mod:`repro.errors` are deterministic facts about the
  design space and are final.
* :class:`JobFailure` — the typed terminal outcome. A job that
  exhausts its retries (or fails fatally) yields a failure *result*
  instead of raising, so one poisoned point degrades a sweep instead
  of killing it; ``ExplorationEngine.run(on_failure=...)`` decides
  whether that failure re-raises or flows to the caller.

Determinism invariant: a retry re-runs the *same* seeded job, so a
success after N transient failures is bit-identical to a first-try
success (asserted in ``tests/engine/test_resilience.py``).
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.engine.jobs import JobResult, hash_seed, job_kind
from repro.obs import metrics as obs_metrics
from repro.errors import (
    JobFailedError,
    JobTimeoutError,
    ReproError,
    RetryableError,
    WorkerCrashError,
)

#: Exception types the resilience layer treats as transient. Note the
#: precedence in :func:`classify_failure`: a :class:`RetryableError` is
#: retryable even though it subclasses :class:`ReproError`, while every
#: other domain error is final.
RETRYABLE_EXCEPTIONS = (
    RetryableError,
    BrokenProcessPool,
    TimeoutError,
    OSError,
)


def classify_failure(exc: BaseException) -> bool:
    """Whether ``exc`` is transient (worth retrying) or final.

    Retryable: :class:`~repro.errors.RetryableError` and subclasses,
    ``BrokenProcessPool`` (a worker died), ``TimeoutError`` (including
    ``concurrent.futures`` timeouts) and ``OSError`` (flaky pipes,
    filesystems, resource exhaustion). Final: every other
    :class:`~repro.errors.ReproError` — domain errors are deterministic
    answers, not infrastructure weather — and any unexpected exception
    (a bug does not get better by re-running it).
    """
    if isinstance(exc, RetryableError):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, RETRYABLE_EXCEPTIONS)


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently to run one job.

    Attributes:
        max_attempts: total tries per job (1 = no retries).
        backoff_base_s: delay before the first retry.
        backoff_factor: multiplier per further retry (exponential).
        max_backoff_s: ceiling on any single delay.
        jitter: fraction of the delay randomized *deterministically*
            from the job seed and attempt number — retries of a herd of
            jobs spread out, yet two runs of the same sweep sleep the
            same amounts.
        timeout_s: per-job wall-clock budget, enforced through the pool
            future (the stuck worker is killed and the slot reclaimed);
            ``None`` disables the timeout. In-process execution (the
            serial executor) cannot preempt a running job and ignores
            it.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.5
    timeout_s: float | None = None

    def __post_init__(self):
        """Validate the knobs."""
        if self.max_attempts < 1:
            raise ReproError("retry policy needs at least one attempt")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ReproError("retry backoff delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ReproError("retry jitter must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ReproError("per-job timeout must be positive")

    def delay_s(self, attempt: int, seed: int) -> float:
        """Backoff before retrying after failed attempt ``attempt``.

        Exponential in the attempt number, capped at ``max_backoff_s``,
        with a deterministic jitter in ``[1 - jitter, 1]`` of the base
        delay derived from ``(seed, attempt)`` — no wall-clock or
        global-RNG dependence.
        """
        base = min(
            self.max_backoff_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        frac = hash_seed(("retry", seed, attempt)) / 0xFFFFFFFF
        return base * (1.0 - self.jitter * frac)


#: Policy used when an executor is built without an explicit one.
DEFAULT_RETRY_POLICY = RetryPolicy()

RETRIES = obs_metrics.REGISTRY.counter(
    "repro_engine_retries_total",
    "Transient job failures charged a retry attempt",
    ("kind",),
)


@dataclass
class JobFailure(JobResult):
    """Terminal outcome of a job the runtime could not complete.

    A :class:`~repro.engine.jobs.JobResult` subclass (``ok`` is False,
    ``error``/``error_type`` describe the last failure) extended with
    the resilience story: how many attempts ran, what kind of failure
    ended it, and — when available — the original exception object so
    ``on_failure="raise"`` can re-raise it faithfully. Failures are
    never cached or journaled: a transient infrastructure problem must
    not be served as a warm result.
    """

    #: Attempts actually executed (including the failing one).
    attempts: int = 1
    #: ``"crash"`` (worker died), ``"timeout"`` (wall clock exceeded)
    #: or ``"error"`` (the job raised).
    failure_kind: str = "error"
    #: The final exception object, when it survived transport back to
    #: the parent process (not serialized anywhere).
    exception: BaseException | None = field(default=None, repr=False)

    def raise_if_error(self) -> None:
        """Re-raise the failure (the original exception when captured)."""
        raise self.to_exception()

    def to_exception(self) -> BaseException:
        """The exception this failure stands for."""
        if self.exception is not None:
            return self.exception
        return JobFailedError(
            f"job {self.tag or '<untagged>'} failed after "
            f"{self.attempts} attempt(s): {self.error}"
        )


def failure_from(
    job, exc: BaseException, attempts: int, kind: str
) -> JobFailure:
    """Build a :class:`JobFailure` for ``job`` ended by ``exc``."""
    return JobFailure(
        tag=getattr(job, "tag", ""),
        error=str(exc) or type(exc).__name__,
        error_type=type(exc).__name__,
        seed=_job_seed(job),
        attempts=attempts,
        failure_kind=kind,
        exception=exc,
    )


def _job_seed(job) -> int:
    """The job's deterministic seed (0 for foreign job types)."""
    resolved = getattr(job, "resolved_seed", None)
    if resolved is None:
        return 0
    try:
        return resolved()
    except Exception:
        return 0


def run_with_retries(fn, job, policy: RetryPolicy) -> JobResult:
    """Execute ``fn(job)`` in-process under ``policy``.

    The shared resilience wrapper for in-process execution (the serial
    executor, and the process executor's single-job fast path when no
    timeout is configured): transient failures are retried with the
    policy's deterministic backoff; a fatal failure — or an exhausted
    budget — returns a :class:`JobFailure` instead of raising.
    ``timeout_s`` cannot be enforced without a worker process and is
    ignored here (route through a pool to get it).
    """
    attempt = 1
    while True:
        try:
            return fn(job)
        except Exception as exc:  # noqa: BLE001 - classified below
            kind = _failure_kind(exc)
            if classify_failure(exc) and attempt < policy.max_attempts:
                RETRIES.inc(kind=job_kind(job))
                time.sleep(policy.delay_s(attempt, _job_seed(job)))
                attempt += 1
                continue
            return failure_from(job, exc, attempt, kind)


def _failure_kind(exc: BaseException) -> str:
    """Coarse failure bucket for reporting."""
    if isinstance(exc, (BrokenProcessPool, WorkerCrashError)):
        return "crash"
    if isinstance(exc, (TimeoutError, JobTimeoutError)):
        return "timeout"
    return "error"
