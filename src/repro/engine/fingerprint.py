"""Stable fingerprints for design-space candidates.

The evaluation cache (:mod:`repro.engine.cache`) must recognise "the same
work" across engine runs, executors and processes, so cache keys are built
from *content*, not object identity: a core graph is fingerprinted by its
cores and flows, a topology by its node/edge structure, and the mapper
knobs by their field values. Fingerprints are short hex digests, cheap to
compare and safe to ship across process boundaries.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.mapper import MapperConfig
from repro.topology.base import Topology


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def core_graph_fingerprint(core_graph: CoreGraph) -> str:
    """Content hash of a core graph (cores + flows, order-independent)."""
    cores = [
        (
            c.name,
            c.index,
            round(c.area_mm2, 9),
            c.is_soft,
            round(c.aspect_min, 9),
            round(c.aspect_max, 9),
            round(c.power_mw, 9),
        )
        for c in core_graph.cores
    ]
    flows = sorted(
        (s, d, round(v, 9)) for (s, d), v in core_graph.flows().items()
    )
    return _digest(repr((core_graph.name, cores, flows)))


def topology_fingerprint(topology: Topology) -> str:
    """Content hash of a topology: typed name, graph structure, geometry.

    Node positions are part of the key: placement variants with
    identical connectivity (and even identical per-edge lengths) still
    floorplan differently, because the floorplanner groups blocks into
    columns by x coordinate.

    Fault overlays are covered twice over: dead elements change the
    node/edge lists themselves, and degraded channels append their
    ``(cap_factor, extra_latency)`` to the edge tuple — only when
    non-default, so every pristine fingerprint is byte-stable across
    this change.

    The digest is memoized on the instance: topologies are content-
    immutable once built (the whole cache layer already relies on
    that), and a batched campaign keys hundreds of points against one
    topology object, so walking the graph per point would dominate the
    keying cost. Equal-content *distinct* objects still hash equal —
    each just computes its digest once.
    """
    cached = getattr(topology, "_topology_fingerprint", None)
    if cached is not None:
        return cached
    g = topology.graph
    nodes = sorted(
        (repr(n), tuple(round(c, 9) for c in topology.position(n)))
        for n in g.nodes
    )

    def _edge_key(u, v, data) -> tuple:
        key = (
            repr(u),
            repr(v),
            data.get("kind", ""),
            round(data.get("length", 0.0), 9),
            data.get("mult", 1),
        )
        degradation = (
            round(data.get("cap_factor", 1.0), 9),
            data.get("extra_latency", 0),
        )
        if degradation != (1.0, 0):
            key += (degradation,)
        return key

    edges = sorted(
        _edge_key(u, v, data) for u, v, data in g.edges(data=True)
    )
    payload = repr(
        (type(topology).__name__, topology.name, topology.num_slots, nodes,
         edges)
    )
    fingerprint = _digest(payload)
    try:
        topology._topology_fingerprint = fingerprint
    except AttributeError:
        pass  # slotted/frozen subclass: just recompute next time
    return fingerprint


def _dataclass_key(value) -> tuple:
    return tuple(
        (f.name, getattr(value, f.name)) for f in fields(value)
    )


def sim_config_fingerprint(sim_config) -> str:
    """Content hash of a simulator :class:`~repro.simulation.network.SimConfig`.

    Imported lazily by the job layer so the engine package keeps no
    hard dependency on the simulator; any frozen dataclass of simple
    values keys correctly here.
    """
    if sim_config is None:
        from repro.simulation.network import SimConfig

        sim_config = SimConfig()
    return _digest(repr(_dataclass_key(sim_config)))


def constraints_fingerprint(constraints: Constraints | None) -> str:
    """Fingerprint of a constraints set (``None`` = the defaults)."""
    if constraints is None:
        constraints = Constraints()
    return _digest(repr(_dataclass_key(constraints)))


def config_fingerprint(config: MapperConfig | None) -> str:
    """Fingerprint of a mapper config (``None`` = the defaults)."""
    if config is None:
        config = MapperConfig()
    return _digest(repr(_dataclass_key(config)))


#: Hashable-by-repr value types allowed into an instance-state key.
_SIMPLE_TYPES = (str, int, float, bool, type(None))


def _simple_state(obj) -> list:
    """Stable, simple-valued instance attributes of ``obj``.

    Complex attributes (the estimator's warm ``AreaPowerLibrary``, the
    already-keyed ``tech``) are excluded: they are either derived state
    whose repr changes as internal caches fill, or covered elsewhere.
    Works for ``__slots__`` classes too.
    """
    names = getattr(obj, "__dict__", None)
    if names is None:
        names = {
            slot: getattr(obj, slot)
            for slot in getattr(type(obj), "__slots__", ())
            if hasattr(obj, slot)
        }
    return sorted(
        (k, v)
        for k, v in names.items()
        if not k.startswith("_")
        and k != "tech"
        and isinstance(v, _SIMPLE_TYPES)
    )


def estimator_fingerprint(estimator) -> str:
    """Key an estimator by type, technology point and simple knobs.

    The type guards against estimator subclasses that override the
    models while keeping the default technology; simple instance
    attributes (e.g. a subclass's ``self.derate = 0.8``) are included so
    differently-parameterized instances never share cache entries.
    """
    from repro.physical.estimate import NetworkEstimator

    if estimator is None:
        estimator = NetworkEstimator()
    return _digest(
        repr(
            (
                type(estimator).__name__,
                _dataclass_key(estimator.tech),
                _simple_state(estimator),
            )
        )
    )


def objective_fingerprint(objective) -> str:
    """Key an objective by name; parametric objectives add their state.

    Works for objective names (``"hops"``), the singleton objective
    classes, and :class:`~repro.core.objectives.WeightedObjective`-style
    instances whose behaviour lives in instance attributes.
    """
    if isinstance(objective, str):
        return _digest(repr(("name", objective.lower())))
    if is_dataclass(objective):
        state = list(_dataclass_key(objective))
    else:
        state = [
            (k, v)
            for k, v in sorted(vars(objective).items())
            if not k.startswith("_")
        ] if hasattr(objective, "__dict__") else _simple_state(objective)
    return _digest(repr((type(objective).__name__, objective.name, state)))
