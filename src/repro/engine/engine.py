"""The parallel design-space exploration engine.

SUNMAP's selection flow is embarrassingly parallel: every candidate
(topology × routing function × objective) is an independent mapping
search, and every simulation-campaign point (topology × pattern × rate ×
seed) is an independent measurement. :class:`ExplorationEngine` makes
that explicit — callers build a job list (mixing
:class:`~repro.engine.jobs.EvaluationJob` and
:class:`~repro.engine.jobs.SimulationJob` freely), the engine memoizes
repeated work through a shared
:class:`~repro.engine.cache.EvaluationCache`, executes the remainder
through a pluggable executor (serial or process pool), and reduces
results back into submission order so the outcome is independent of
completion order and worker count.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from itertools import product

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.mapper import MapperConfig
from repro.engine.backends import key_fingerprint, make_backend
from repro.engine.cache import EvaluationCache
from repro.engine.executors import Executor, make_executor
from repro.engine.jobs import (
    BatchSimulationJob,
    EvaluationJob,
    JobResult,
    SimulationJob,
    job_kind,
    run_job,
)
from repro.engine.journal import RunJournal
from repro.engine.resilience import JobFailure, RetryPolicy
from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.topology.base import Topology
from repro.topology.library import standard_library

_JOBS = obs_metrics.REGISTRY.counter(
    "repro_engine_jobs_total",
    "Jobs the engine resolved, by kind and how they were served",
    ("kind", "status"),
)
_FAILURES = obs_metrics.REGISTRY.counter(
    "repro_engine_failures_total",
    "Terminal job failures surfaced by the engine",
    ("failure",),
)


class ExplorationEngine:
    """Executes evaluation jobs with memoization and pluggable parallelism.

    Args:
        jobs: worker count — ``1`` runs serially in-process, ``N > 1``
            uses a process pool of ``N`` workers, ``0`` sizes the pool to
            the machine.
        executor: explicit executor instance (overrides ``jobs``).
        cache: shared evaluation cache; a private one is created when not
            given. Pass one engine (or one cache) around to reuse results
            across selection runs, sweeps and fallback escalations.
        cache_backend: storage behind the private cache when ``cache`` is
            not given — a :class:`~repro.engine.backends.CacheBackend`
            instance or a :func:`~repro.engine.backends.make_backend`
            spec string (``"sqlite:results.db"``, ``"dir:.cache"``).
            Persistent backends make warm results survive the process:
            a second run of the same sweep performs zero evaluations.
        journal: optional :class:`~repro.engine.journal.RunJournal`.
            Completed results are appended to it and replayed (by
            fingerprint, bit-identically) on later runs — a killed
            sweep resumes where it died. Failures are never journaled.
        retry_policy: :class:`~repro.engine.resilience.RetryPolicy` for
            the executor built from ``jobs`` (ignored when an explicit
            ``executor`` is passed — configure that executor directly).
    """

    def __init__(
        self,
        jobs: int = 1,
        executor: Executor | None = None,
        cache: EvaluationCache | None = None,
        cache_backend=None,
        journal: RunJournal | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        """Build the engine (see the class docstring for the knobs)."""
        self.executor = executor or make_executor(jobs, policy=retry_policy)
        if cache is None:
            # Not `cache or ...`: an empty cache is falsy (it has __len__).
            cache = (
                EvaluationCache()
                if cache_backend is None
                else EvaluationCache(backend=make_backend(cache_backend))
            )
        self.cache = cache
        self.journal = journal
        #: Cumulative failure counts by kind (``crash``/``timeout``/
        #: ``error``) across every ``run`` on this engine.
        self.failure_stats: Counter = Counter()
        #: Failures surfaced by the most recent ``run`` call (empty when
        #: it completed cleanly or raised).
        self.last_failures: list[JobFailure] = []

    # ------------------------------------------------------------------
    # core execution
    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[EvaluationJob | SimulationJob],
        on_failure: str = "raise",
    ) -> list[JobResult]:
        """Execute a batch; results come back in submission order.

        Batches may mix job kinds (mapping searches and simulation
        points share one queue, cache and executor). Cache hits are
        served without executing; duplicate keys within the batch are
        executed once and fanned out to every submitter. A
        :class:`~repro.engine.jobs.BatchSimulationJob` executes as one
        unit but is content-keyed *per point*: cached/journaled points
        are served individually, only the missing subset runs, and
        completed points land in cache and journal one by one — so a
        killed batch campaign resumes point-exactly, like the exact
        lane. Results are
        bit-identical across executors: the reduction is by submission
        index, and per-job seeds are content-derived.

        ``on_failure`` decides what a terminal
        :class:`~repro.engine.resilience.JobFailure` (a job the
        resilience layer could not complete — retries exhausted or a
        fatal error) does: ``"raise"`` (default) re-raises the original
        exception, matching pre-resilience behaviour; ``"skip"``
        returns the failure in the result list (``ok`` is False) so one
        poisoned point degrades a sweep instead of killing it.
        Failures are never cached or journaled. Per-run stats land in
        :attr:`last_failures` / :attr:`failure_stats`.
        """
        with obs_trace.span(
            "engine.run", jobs=len(jobs), executor=self.executor.name
        ) as sp:
            return self._run(jobs, on_failure, sp)

    def _run(
        self,
        jobs: Sequence[EvaluationJob | SimulationJob],
        on_failure: str,
        sp,
    ) -> list[JobResult]:
        """Body of :meth:`run`, wrapped in the ``engine.run`` span."""
        if on_failure not in ("raise", "skip"):
            raise ReproError(
                f"on_failure must be 'raise' or 'skip', got {on_failure!r}"
            )
        results: list[JobResult | None] = [None] * len(jobs)
        pending: list[tuple[int, EvaluationJob | SimulationJob]] = []
        keys: dict[int, tuple] = {}
        first_index_for_key: dict[tuple, int] = {}
        duplicates: dict[int, list[int]] = {}
        failures: list[JobFailure] = []
        # Grouped jobs (batched simulation): the group executes as one
        # unit but caches/journals per point, so a group shrinks to its
        # cache-missing points before execution and the stored entries
        # are interchangeable with a later run's differently-composed
        # groups. index -> (job, per-point results, missing idx, keys).
        groups: dict[
            int,
            tuple[
                BatchSimulationJob,
                list[JobResult | None],
                list[int],
                list[tuple],
            ],
        ] = {}

        for index, job in enumerate(jobs):
            if isinstance(job, BatchSimulationJob):
                point_keys = job.point_keys()
                point_results: list[JobResult | None] = []
                missing: list[int] = []
                for pi, pkey in enumerate(point_keys):
                    hit = self.cache.get(pkey)
                    if hit is None and self.journal is not None:
                        hit = self.journal.get(key_fingerprint(pkey))
                        if hit is not None:
                            self.cache.put(pkey, hit)
                    if hit is None:
                        point_results.append(None)
                        missing.append(pi)
                    else:
                        point_results.append(
                            hit.retagged(job.points[pi].tag, cached=True)
                        )
                cached_points = len(point_keys) - len(missing)
                if cached_points:
                    _JOBS.inc(cached_points, kind="batch_sim", status="cached")
                if not missing:
                    results[index] = JobResult(
                        tag=job.tag,
                        value=tuple(point_results),
                        cached=True,
                    )
                    continue
                groups[index] = (job, point_results, missing, point_keys)
                pending.append((index, job.subset(missing)))
                continue
            key = job.cache_key()
            hit = self.cache.get(key)
            if hit is None and self.journal is not None:
                hit = self.journal.get(key_fingerprint(key))
                if hit is not None:
                    # Promote the replayed result so in-run cache hits
                    # and the persistent backend see it too.
                    self.cache.put(key, hit)
            if hit is not None:
                _JOBS.inc(kind=job_kind(job), status="cached")
                results[index] = hit.retagged(job.tag, cached=True)
                continue
            if key in first_index_for_key:
                # Same work already queued in this batch: piggyback.
                owner = first_index_for_key[key]
                duplicates.setdefault(owner, []).append(index)
                self.cache.note_deduped()
                _JOBS.inc(kind=job_kind(job), status="deduped")
                continue
            first_index_for_key[key] = index
            keys[index] = key
            pending.append((index, job.pinned(key)))

        for index, result in self.executor.run(run_job, pending):
            if isinstance(result, JobFailure):
                # Terminal infrastructure failure: never cached, never
                # journaled — a flaky worker must not poison warm state.
                self.failure_stats[result.failure_kind] += 1
                _FAILURES.inc(failure=result.failure_kind)
                _JOBS.inc(kind=job_kind(jobs[index]), status="failed")
                if on_failure == "raise":
                    self.last_failures = []
                    raise result.to_exception()
                failures.append(result)
                results[index] = result.retagged(
                    jobs[index].tag, cached=False
                )
                for dup_index in duplicates.get(index, ()):
                    results[dup_index] = result.retagged(
                        jobs[dup_index].tag, cached=False
                    )
                continue
            if index in groups:
                job, point_results, missing, point_keys = groups[index]
                for pi, point_result in zip(missing, result.value):
                    self.cache.put(point_keys[pi], point_result)
                    if self.journal is not None:
                        self.journal.record(
                            key_fingerprint(point_keys[pi]), point_result
                        )
                    point_results[pi] = point_result.retagged(
                        job.points[pi].tag, cached=False
                    )
                results[index] = JobResult(
                    tag=job.tag, value=tuple(point_results)
                )
                _JOBS.inc(len(missing), kind="batch_sim", status="computed")
                continue
            # The cache keeps the pristine result; every caller-facing
            # copy goes through retagged() so its collected list is
            # detached from the cached entry.
            self.cache.put(keys[index], result)
            _JOBS.inc(kind=job_kind(jobs[index]), status="computed")
            if self.journal is not None:
                self.journal.record(key_fingerprint(keys[index]), result)
            results[index] = result.retagged(jobs[index].tag, cached=False)
            for dup_index in duplicates.get(index, ()):
                results[dup_index] = result.retagged(
                    jobs[dup_index].tag, cached=True
                )
        self.last_failures = failures
        sp.set("failures", len(failures))
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_one(self, job: EvaluationJob | SimulationJob) -> JobResult:
        """Convenience wrapper for a single candidate."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    # job-list builders
    # ------------------------------------------------------------------
    def selection_jobs(
        self,
        core_graph: CoreGraph,
        topologies: Sequence[Topology] | None = None,
        routing: str = "MP",
        objective="hops",
        constraints: Constraints | None = None,
        config: MapperConfig | None = None,
        estimator=None,
    ) -> list[EvaluationJob]:
        """One job per library topology (the phase-1/2 selection flow)."""
        if topologies is None:
            topologies = standard_library(core_graph.num_cores)
        return [
            EvaluationJob(
                core_graph=core_graph,
                topology=topology,
                routing=routing,
                objective=objective,
                constraints=constraints,
                config=config,
                estimator=estimator,
                tag=topology.name,
            )
            for topology in topologies
        ]

    def sweep(
        self,
        core_graph: CoreGraph,
        topologies: Sequence[Topology] | None = None,
        routings: Sequence[str] = ("MP",),
        objectives: Sequence = ("hops",),
        constraints: Constraints | None = None,
        config: MapperConfig | None = None,
        estimator=None,
    ) -> dict[tuple[str, str, str], JobResult]:
        """Full grid sweep: one job per topology × routing × objective.

        Returns ``{(topology_name, routing_code, objective_name): result}``
        with captured infeasible/unsupported outcomes inline (check
        :attr:`JobResult.ok`).
        """
        if topologies is None:
            topologies = standard_library(core_graph.num_cores)
        grid = list(product(topologies, routings, objectives))
        jobs = [
            EvaluationJob(
                core_graph=core_graph,
                topology=topology,
                routing=routing,
                objective=objective,
                constraints=constraints,
                config=config,
                estimator=estimator,
                tag=f"{topology.name}/{routing}/{_objective_name(objective)}",
            )
            for topology, routing, objective in grid
        ]
        results = self.run(jobs)
        return {
            (topology.name, routing, _objective_name(objective)): result
            for (topology, routing, objective), result in zip(grid, results)
        }


def _objective_name(objective) -> str:
    return objective if isinstance(objective, str) else objective.name
