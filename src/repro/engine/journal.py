"""Append-only run journal: resumable sweeps without a cache server.

A :class:`RunJournal` records every *completed* job result of a run as
one JSONL line — fingerprint-keyed like the persistent cache backends,
appended atomically (single ``write`` + flush per record) so a SIGKILL
mid-run loses at most the line being written. Re-running the same
command with ``resume=True`` (CLI: ``--journal PATH --resume``) replays
the completed fingerprints bit-identically and recomputes only the
remainder: a killed 2000-point campaign resumes where it died.

The journal differs from a cache backend on purpose:

* it is scoped to one run artifact (a file you can ship, inspect and
  delete), not a shared store;
* it is loaded eagerly so resume works even when the engine's cache is
  in-memory and empty;
* a corrupt tail (the torn last line of a killed run) is detected and
  truncated, never trusted — everything before it replays.

Failures (:class:`~repro.engine.resilience.JobFailure`) are never
journaled: a transient infrastructure problem must not be replayed as
a result on resume.
"""

from __future__ import annotations

import base64
import json
import logging
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.engine.jobs import JobResult
from repro.errors import ReproError
from repro.obs import metrics as obs_metrics

logger = logging.getLogger(__name__)

_RECORDS = obs_metrics.REGISTRY.counter(
    "repro_journal_records_total", "Completed results appended to run journals"
)
_REPLAYED = obs_metrics.REGISTRY.counter(
    "repro_journal_replayed_total", "Journaled results served on resume"
)
_TRUNCATED = obs_metrics.REGISTRY.counter(
    "repro_journal_truncated_total", "Corrupt/torn journal tail lines discarded"
)

_FORMAT = "repro-journal-v1"


@dataclass(frozen=True)
class JournalStats:
    """Counters describing one journal's lifetime."""

    #: Results loaded from an existing journal on resume.
    loaded: int = 0
    #: Loaded results actually served to the engine this run.
    replayed: int = 0
    #: New results appended this run.
    recorded: int = 0
    #: Corrupt/torn tail lines discarded (and truncated) on resume.
    truncated: int = 0

    def __str__(self):
        """Human-readable one-liner for logs and CLI summaries."""
        return (
            f"journal: {self.loaded} loaded, {self.replayed} replayed, "
            f"{self.recorded} recorded, {self.truncated} truncated"
        )


class RunJournal:
    """Fingerprint-keyed JSONL journal of completed job results.

    Args:
        path: journal file; parent directories are created.
        resume: load existing records and append to them. ``False`` (a
            fresh run) truncates any prior file so stale results from an
            unrelated run can never replay.
    """

    def __init__(self, path, resume: bool = False):
        """Open (and on resume, load) the journal at ``path``."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._results: dict[str, JobResult] = {}
        self._lock = threading.Lock()
        self._loaded = 0
        self._replayed = 0
        self._recorded = 0
        self._truncated = 0
        if resume and self.path.exists():
            self._load()
        self._fh = open(  # noqa: SIM115 - lifetime spans the run
            self.path, "ab" if resume else "wb"
        )

    # ------------------------------------------------------------------
    # replay / record
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> JobResult | None:
        """The journaled result for ``fingerprint``, or ``None``.

        Served results are pristine (no tag), exactly as the executor
        produced them — callers retag per submission like cache hits,
        so a resumed run is bit-identical to an uninterrupted one.
        """
        with self._lock:
            result = self._results.get(fingerprint)
            if result is not None:
                self._replayed += 1
                _REPLAYED.inc()
            return result

    def record(self, fingerprint: str, result: JobResult) -> None:
        """Append one completed result (atomic single-line write)."""
        blob = base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        line = json.dumps(
            {
                "format": _FORMAT,
                "fingerprint": fingerprint,
                "tag": result.tag,
                "result": blob,
            },
            separators=(",", ":"),
        )
        with self._lock:
            self._results[fingerprint] = result
            self._fh.write(line.encode("utf-8") + b"\n")
            self._fh.flush()
            self._recorded += 1
            _RECORDS.inc()

    def __contains__(self, fingerprint: str) -> bool:
        """Whether ``fingerprint`` has a journaled result."""
        with self._lock:
            return fingerprint in self._results

    def __len__(self) -> int:
        """Number of distinct journaled results."""
        with self._lock:
            return len(self._results)

    @property
    def stats(self) -> JournalStats:
        """Current :class:`JournalStats` snapshot."""
        with self._lock:
            return JournalStats(
                loaded=self._loaded,
                replayed=self._replayed,
                recorded=self._recorded,
                truncated=self._truncated,
            )

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __enter__(self):
        """Context-manager entry (returns the journal)."""
        return self

    def __exit__(self, *exc_info):
        """Close on context-manager exit."""
        self.close()
        return False

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Load the valid record prefix; truncate a torn tail in place."""
        valid_end = 0
        data = self.path.read_bytes()
        offset = 0
        for raw in data.splitlines(keepends=True):
            end = offset + len(raw)
            record = self._parse(raw)
            if record is None or not raw.endswith(b"\n"):
                # Torn or corrupt: everything from here on is untrusted.
                break
            fingerprint, result = record
            self._results[fingerprint] = result
            self._loaded += 1
            valid_end = end
            offset = end
        tail = data[valid_end:]
        if tail:
            self._truncated = tail.count(b"\n") + (
                0 if tail.endswith(b"\n") else 1
            )
            _TRUNCATED.inc(self._truncated)
            logger.warning(
                "journal %s: discarding %d corrupt trailing record(s) "
                "(%d bytes)",
                self.path,
                self._truncated,
                len(tail),
            )
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)

    @staticmethod
    def _parse(raw: bytes):
        """Decode one journal line, or ``None`` when it is corrupt."""
        try:
            record = json.loads(raw.decode("utf-8"))
            if record.get("format") != _FORMAT:
                return None
            fingerprint = record["fingerprint"]
            result = pickle.loads(base64.b64decode(record["result"]))
        except Exception:  # noqa: BLE001 - any damage means "stop here"
            return None
        if not isinstance(fingerprint, str) or not isinstance(
            result, JobResult
        ):
            return None
        return fingerprint, result


def open_journal(
    path, resume: bool = False
) -> RunJournal | None:
    """CLI helper: build a journal from ``--journal``/``--resume`` flags.

    Returns ``None`` when ``path`` is falsy so callers can pass the
    result straight through as ``journal=``. ``resume`` without a path
    is a usage error.
    """
    if not path:
        if resume:
            raise ReproError("--resume requires --journal PATH")
        return None
    return RunJournal(path, resume=resume)
