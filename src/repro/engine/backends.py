"""Pluggable storage backends for the evaluation cache.

The :class:`~repro.engine.cache.EvaluationCache` used to be a plain
in-process dict: warm results died with the process, so every CLI
invocation, CI run and service worker started cold. This module promotes
the store behind the cache to a :class:`CacheBackend` plugin:

* :class:`MemoryBackend` — the original dict, upgraded to true LRU
  eviction with an eviction counter (long-running servers must not grow
  without bound);
* :class:`SQLiteBackend` — one WAL-mode SQLite file holding pickled
  results keyed by content fingerprint; safe for concurrent writers
  from several processes, so repeated selection/synthesis/campaign
  requests across processes hit warm results;
* :class:`DirectoryBackend` — one file per fingerprint under a
  schema-versioned directory; trivially rsync/CI-cacheable, which is
  how the CI docs job proves cross-run warm hits.

Durability contract shared by the persistent backends: a corrupted,
truncated or unreadable entry is **logged, dropped and recomputed** —
never served and never allowed to crash the caller — and a schema
version mismatch discards the store (cold start) instead of guessing at
old payloads. Values are pickled with the highest protocol; keys are the
engine's content-derived cache-key tuples, fingerprinted with SHA-256 so
they are stable across processes and Python hash randomization.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import sqlite3
from pathlib import Path
from threading import RLock
from typing import Protocol, runtime_checkable

from repro.obs import metrics as obs_metrics

log = logging.getLogger(__name__)

_WRITE_ERRORS = obs_metrics.REGISTRY.counter(
    "repro_cache_write_errors_total",
    "Cache writes the backend had to drop (store locked, full, read-only)",
    ("backend",),
)

#: Version of the on-disk payload schema. Bump when the pickled result
#: types or the cache-key composition change incompatibly; stores written
#: under another version are discarded on open (cold start, never a
#: crash and never stale payloads).
SCHEMA_VERSION = 1


def key_fingerprint(key: tuple) -> str:
    """Stable hex fingerprint of a cache-key tuple.

    Cache keys are built from content fingerprints and simple values
    (see :mod:`repro.engine.fingerprint`), so their ``repr`` is
    deterministic across processes — the same property
    :func:`repro.engine.jobs.hash_seed` relies on for executor-
    independent seeds.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def _log_write_error(backend: str, count: int, message: str, *args) -> None:
    """Log and count a dropped cache write: loudly once, quietly afterwards.

    Silent write failures used to be invisible beyond per-event log
    noise; now the first one per backend warns through the unified
    ``repro.engine.backends`` logger (an operator signal — the store may
    be read-only, full, or locked) and later ones drop to debug. Every
    occurrence increments ``repro_cache_write_errors_total{backend=…}``
    in the metrics registry, alongside the backend's own
    ``write_errors`` counter that feeds
    :attr:`repro.engine.cache.CacheStats.write_errors`.
    """
    _WRITE_ERRORS.inc(backend=backend)
    if count == 1:
        log.warning(message + " (first write failure on this store)", *args)
    else:
        log.debug(message, *args)


@runtime_checkable
class CacheBackend(Protocol):
    """Anything that can store evaluation results for the cache.

    Implementations map cache-key tuples to arbitrary picklable result
    objects (:class:`~repro.engine.jobs.JobResult` from the engine,
    :class:`~repro.core.evaluate.MappingEvaluation` from the mapping
    memo). ``get`` returns ``None`` for a miss — including any entry
    that cannot be read back faithfully; ``put`` returns the number of
    entries evicted to make room (0 for unbounded stores).
    """

    name: str

    def get(self, key: tuple) -> object | None:
        """Return the stored value for ``key``, or ``None`` on a miss."""
        ...

    def put(self, key: tuple, value: object) -> int:
        """Store ``value`` under ``key``; return how many entries were evicted."""
        ...

    def __len__(self) -> int:
        """Number of entries currently stored."""
        ...

    def clear(self) -> None:
        """Drop every entry."""
        ...


class MemoryBackend:
    """In-process dict store with optional LRU eviction (the default).

    This is the seed behaviour of :class:`EvaluationCache` made explicit
    as a backend, with one upgrade: a bounded store now evicts the
    *least recently used* entry instead of the oldest inserted one
    (``get`` refreshes recency), and counts its evictions so a
    long-running server can report cache pressure.

    Not persistent and not process-shared. Thread-safe on its own (the
    service's ``refresh`` cache-control shares one backend between two
    :class:`~repro.engine.cache.EvaluationCache` instances with
    independent locks, so the backend cannot rely on its owner's lock).
    """

    name = "memory"

    def __init__(self, max_entries: int | None = None):
        """Create the store; ``max_entries=None`` disables the bound."""
        self.max_entries = max_entries
        self.evictions = 0
        self._lock = RLock()
        self._store: dict = {}  # insertion order doubles as recency order

    def get(self, key: tuple) -> object | None:
        """Return the value for ``key`` and mark it most recently used."""
        with self._lock:
            value = self._store.get(key)
            if value is not None:
                # LRU touch: re-insert at the end of the order.
                del self._store[key]
                self._store[key] = value
            return value

    def put(self, key: tuple, value: object) -> int:
        """Store ``value``; evict the LRU entry beyond ``max_entries``."""
        if self.max_entries == 0:
            return 0
        with self._lock:
            evicted = 0
            if key in self._store:
                del self._store[key]
            elif (
                self.max_entries is not None
                and len(self._store) >= self.max_entries
            ):
                # First key in insertion order = least recently used.
                self._store.pop(next(iter(self._store)))
                evicted = 1
            self._store[key] = value
            self.evictions += evicted
            return evicted

    def __len__(self) -> int:
        """Number of entries currently stored."""
        return len(self._store)

    def clear(self) -> None:
        """Drop every entry (eviction counter is preserved)."""
        self._store.clear()


class SQLiteBackend:
    """Persistent store in one WAL-mode SQLite file.

    Layout: an ``entries(fp TEXT PRIMARY KEY, payload BLOB)`` table of
    pickled results keyed by :func:`key_fingerprint`, plus a ``meta``
    table recording :data:`SCHEMA_VERSION`. WAL journaling and a busy
    timeout make concurrent writers from several processes safe (last
    writer wins on the same fingerprint — both wrote bit-identical
    content, so either is correct).

    Failure modes (all logged, none fatal):

    * an unreadable/corrupt database file is rotated aside to
      ``<path>.corrupt`` and a fresh store is created;
    * a schema-version mismatch drops the entries (cold start);
    * an entry whose blob fails to unpickle is deleted and reported as a
      miss, so the caller recomputes (``corrupt_entries`` counts these);
    * operational errors on ``put`` (e.g. a locked database past the
      timeout) drop the write — the cache is an accelerator, losing a
      write is always safe.
    """

    name = "sqlite"

    def __init__(self, path: str | Path, timeout_s: float = 30.0):
        """Open (or create) the store at ``path``."""
        self.path = str(path)
        self.timeout_s = timeout_s
        self.corrupt_entries = 0
        self.write_errors = 0
        self._lock = RLock()
        self._conn: sqlite3.Connection | None = None
        self._connect()

    # -- connection management --------------------------------------------
    def _connect(self) -> None:
        """Open the database, surviving a corrupt file on disk."""
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError as exc:
            log.warning(
                "cache store %s is unreadable (%s); starting cold",
                self.path, exc,
            )
            self._rotate_corrupt()
            self._conn = self._open()

    def _open(self) -> sqlite3.Connection:
        """Connect and ensure the schema, dropping mismatched versions."""
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        # Autocommit (isolation_level=None): every put is its own WAL
        # transaction, so concurrent writers never deadlock on a held
        # transaction. check_same_thread=False because the owning cache
        # serializes access with its own lock (plus self._lock here).
        conn = sqlite3.connect(
            self.path,
            timeout=self.timeout_s,
            isolation_level=None,
            check_same_thread=False,
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT)"
        )
        row = conn.execute(
            "SELECT v FROM meta WHERE k = 'schema_version'"
        ).fetchone()
        if row is not None and row[0] != str(SCHEMA_VERSION):
            log.warning(
                "cache store %s has schema version %s, expected %s; "
                "discarding entries (cold start)",
                self.path, row[0], SCHEMA_VERSION,
            )
            conn.execute("DROP TABLE IF EXISTS entries")
        conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries "
            "(fp TEXT PRIMARY KEY, payload BLOB)"
        )
        return conn

    def _rotate_corrupt(self) -> None:
        """Move an unreadable database file out of the way."""
        try:
            os.replace(self.path, self.path + ".corrupt")
        except OSError:
            # Rotation is best-effort; unlink as the fallback.
            try:
                os.unlink(self.path)
            except OSError:
                pass

    # -- store operations -------------------------------------------------
    def get(self, key: tuple) -> object | None:
        """Return the stored value, or ``None`` (miss / unreadable entry)."""
        fp = key_fingerprint(key)
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT payload FROM entries WHERE fp = ?", (fp,)
                ).fetchone()
            except sqlite3.DatabaseError as exc:
                log.warning(
                    "cache read failed on %s (%s); reopening store",
                    self.path, exc,
                )
                self._connect()
                return None
            if row is None:
                return None
            try:
                return pickle.loads(row[0])
            except Exception as exc:
                self.corrupt_entries += 1
                log.warning(
                    "dropping corrupt cache entry %s in %s (%s); "
                    "the result will be recomputed",
                    fp[:12], self.path, exc,
                )
                self._delete(fp)
                return None

    def put(self, key: tuple, value: object) -> int:
        """Persist ``value``; a failed write is dropped, never raised."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO entries VALUES (?, ?)",
                    (key_fingerprint(key), blob),
                )
            except sqlite3.DatabaseError as exc:
                self.write_errors += 1
                _log_write_error(
                    self.name,
                    self.write_errors,
                    "cache write failed on %s (%s); entry dropped",
                    self.path, exc,
                )
        return 0

    def _delete(self, fp: str) -> None:
        """Best-effort removal of one entry by fingerprint."""
        try:
            self._conn.execute("DELETE FROM entries WHERE fp = ?", (fp,))
        except sqlite3.DatabaseError:
            pass

    def __len__(self) -> int:
        """Number of entries currently stored (0 if unreadable)."""
        with self._lock:
            try:
                return self._conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()[0]
            except sqlite3.DatabaseError:
                return 0

    def clear(self) -> None:
        """Drop every entry (the schema and file are kept)."""
        with self._lock:
            try:
                self._conn.execute("DELETE FROM entries")
            except sqlite3.DatabaseError:
                pass

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None


class DirectoryBackend:
    """Persistent store as one file per fingerprint under a directory.

    Entries live at ``<root>/v<SCHEMA_VERSION>/<fp[:2]>/<fp>.pkl``; the
    schema version is part of the path, so opening a store written under
    another version simply sees an empty directory — a cold start with
    zero migration logic. Writes go through a temporary file and
    ``os.replace``, so concurrent writers from any number of processes
    either publish a complete entry or nothing.

    The layout is deliberately artifact-friendly: CI caches the root
    directory between runs to prove cross-run warm hits, and a store can
    be merged or pruned with plain file tools.
    """

    name = "directory"

    def __init__(self, root: str | Path):
        """Open (or create) the store rooted at ``root``."""
        self.root = Path(root)
        self.dir = self.root / f"v{SCHEMA_VERSION}"
        self.dir.mkdir(parents=True, exist_ok=True)
        self.corrupt_entries = 0
        self.write_errors = 0

    def _path(self, fp: str) -> Path:
        """Entry path for a fingerprint (2-hex-char fan-out subdirs)."""
        return self.dir / fp[:2] / f"{fp}.pkl"

    def get(self, key: tuple) -> object | None:
        """Return the stored value, or ``None`` (miss / unreadable entry)."""
        path = self._path(key_fingerprint(key))
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            log.warning("cache read failed on %s (%s)", path, exc)
            return None
        try:
            return pickle.loads(blob)
        except Exception as exc:
            self.corrupt_entries += 1
            log.warning(
                "dropping corrupt cache entry %s (%s); the result will "
                "be recomputed",
                path, exc,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: tuple, value: object) -> int:
        """Persist ``value`` atomically; a failed write is dropped."""
        path = self._path(key_fingerprint(key))
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            )
            os.replace(tmp, path)
        except OSError as exc:
            self.write_errors += 1
            _log_write_error(
                self.name,
                self.write_errors,
                "cache write failed on %s (%s); entry dropped", path, exc,
            )
            try:
                tmp.unlink()
            except OSError:
                pass
        return 0

    def __len__(self) -> int:
        """Number of entries currently stored."""
        return sum(1 for _ in self.dir.glob("??/*.pkl"))

    def clear(self) -> None:
        """Drop every entry of the current schema version."""
        for entry in self.dir.glob("??/*.pkl"):
            try:
                entry.unlink()
            except OSError:
                pass


def make_backend(spec) -> CacheBackend:
    """Build a backend from a CLI/config spec string (or pass one through).

    Accepted forms:

    * an existing :class:`CacheBackend` instance — returned as is;
    * ``None`` or ``"memory"`` — a fresh unbounded :class:`MemoryBackend`;
    * ``"sqlite:PATH"`` — :class:`SQLiteBackend` at PATH;
    * ``"dir:PATH"`` (or ``"directory:PATH"``) — :class:`DirectoryBackend`;
    * a bare path — SQLite when it ends in ``.db``/``.sqlite``/
      ``.sqlite3``, a directory store otherwise.
    """
    if spec is None or spec == "memory":
        return MemoryBackend()
    if isinstance(spec, (MemoryBackend, SQLiteBackend, DirectoryBackend)):
        return spec
    if not isinstance(spec, (str, Path)):
        if isinstance(spec, CacheBackend):
            return spec
        raise TypeError(f"cannot build a cache backend from {spec!r}")
    text = str(spec)
    if text.startswith("sqlite:"):
        return SQLiteBackend(text[len("sqlite:"):])
    if text.startswith("dir:"):
        return DirectoryBackend(text[len("dir:"):])
    if text.startswith("directory:"):
        return DirectoryBackend(text[len("directory:"):])
    if text.endswith((".db", ".sqlite", ".sqlite3")):
        return SQLiteBackend(text)
    return DirectoryBackend(text)
