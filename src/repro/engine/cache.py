"""Shared memoization of evaluated candidates.

Selection, routing sweeps and the fallback escalation of ``run_sunmap``
revisit the same (core graph, topology, routing, objective) candidates —
e.g. a ``select`` after an ``explore`` on the same application, or the
unchanged topologies when only one library entry was edited. The cache
keys on content fingerprints (:mod:`repro.engine.fingerprint`), so a hit
means "bit-identical work", never "same object".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # break the jobs -> core -> memo -> cache cycle
    from repro.engine.jobs import JobResult


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (reported by benchmarks/CLI)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits "
            f"({self.hit_rate * 100:.0f}%)"
        )


#: Default cache bound: generous for any realistic sweep (a full
#: topology × routing × objective grid is tens of entries) while keeping
#: a long-lived shared engine from growing without bound — collect=True
#: entries carry the whole evaluated mapping cloud.
DEFAULT_MAX_ENTRIES = 1024


@dataclass
class EvaluationCache:
    """In-memory result store keyed by :meth:`EvaluationJob.cache_key`.

    Thread-safe; shared by every run of the engine that owns it. Workers
    return results to the parent process, which stores them here, so the
    process executor populates the same cache the serial one does.
    Oldest entries are evicted beyond ``max_entries`` (``None`` disables
    the bound, ``0`` disables caching).

    The store is payload-agnostic: the engine keeps
    :class:`~repro.engine.jobs.JobResult` records in it, while the
    mapping search (:mod:`repro.core.memo`) memoizes raw
    :class:`~repro.core.evaluate.MappingEvaluation` objects keyed by
    assignment fingerprint.
    """

    max_entries: int | None = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    _store: dict = field(default_factory=dict)
    _lock: Lock = field(default_factory=Lock, repr=False)

    def get(self, key: tuple) -> JobResult | None:
        with self._lock:
            result = self._store.get(key)
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return result

    def note_deduped(self) -> None:
        """Reclassify the last lookup of a key as a hit: the engine found
        the same key already queued in the current batch (``get`` had
        counted it as a miss)."""
        with self._lock:
            self.stats.hits += 1
            self.stats.misses -= 1

    def put(self, key: tuple, result: JobResult) -> None:
        if self.max_entries == 0:
            return  # caching disabled
        with self._lock:
            if (
                self.max_entries is not None
                and key not in self._store
                and len(self._store) >= self.max_entries
            ):
                # Drop the oldest entry (dict preserves insertion order).
                self._store.pop(next(iter(self._store)))
            self._store[key] = result

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
