"""Shared memoization of evaluated candidates.

Selection, routing sweeps and the fallback escalation of ``run_sunmap``
revisit the same (core graph, topology, routing, objective) candidates —
e.g. a ``select`` after an ``explore`` on the same application, or the
unchanged topologies when only one library entry was edited. The cache
keys on content fingerprints (:mod:`repro.engine.fingerprint`), so a hit
means "bit-identical work", never "same object".

Storage is pluggable (:mod:`repro.engine.backends`): the default is the
original in-process dict (:class:`~repro.engine.backends.MemoryBackend`,
now with LRU eviction), while the SQLite and directory backends persist
results across processes and CI runs — the substrate of the design
service's warm starts (:mod:`repro.service`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock
from typing import TYPE_CHECKING

from repro.engine.backends import CacheBackend, MemoryBackend
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # break the jobs -> core -> memo -> cache cycle
    from repro.engine.jobs import JobResult

_HITS = obs_metrics.REGISTRY.counter(
    "repro_cache_hits_total", "Cache lookups served from the store", ("backend",)
)
_MISSES = obs_metrics.REGISTRY.counter(
    "repro_cache_misses_total", "Cache lookups that missed", ("backend",)
)
_DEDUP = obs_metrics.REGISTRY.counter(
    "repro_cache_dedup_total",
    "In-batch duplicate jobs served from the first submitter",
    ("backend",),
)
_EVICTIONS = obs_metrics.REGISTRY.counter(
    "repro_cache_evictions_total", "LRU entries evicted by bounded stores", ("backend",)
)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache (reported by CLI/benchmarks)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Writes the backend dropped (disk full, locked store, read-only
    #: filesystem). The cache stays correct — a lost write only costs a
    #: recompute — but sustained write errors mean the warm store is
    #: not actually warming, so they are surfaced here.
    write_errors: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        """Compact ``hits/lookups`` summary line."""
        text = (
            f"{self.hits}/{self.lookups} hits "
            f"({self.hit_rate * 100:.0f}%)"
        )
        if self.evictions:
            text += f", {self.evictions} evicted"
        if self.write_errors:
            text += f", {self.write_errors} write errors"
        return text


#: Default cache bound: generous for any realistic sweep (a full
#: topology × routing × objective grid is tens of entries) while keeping
#: a long-lived shared engine from growing without bound — collect=True
#: entries carry the whole evaluated mapping cloud.
DEFAULT_MAX_ENTRIES = 1024


@dataclass
class EvaluationCache:
    """Result store keyed by :meth:`EvaluationJob.cache_key`.

    Thread-safe; shared by every run of the engine that owns it. Workers
    return results to the parent process, which stores them here, so the
    process executor populates the same cache the serial one does.

    Storage is delegated to a :class:`~repro.engine.backends.CacheBackend`.
    When none is given, a :class:`~repro.engine.backends.MemoryBackend`
    bounded to ``max_entries`` is created (``None`` disables the bound,
    ``0`` disables caching entirely); least-recently-used entries are
    evicted beyond the bound and counted in :attr:`CacheStats.evictions`.
    An explicit backend (e.g. a persistent SQLite or directory store)
    manages its own capacity — ``max_entries`` then only retains its
    ``0``-disables-caching meaning.

    The store is payload-agnostic: the engine keeps
    :class:`~repro.engine.jobs.JobResult` records in it, while the
    mapping search (:mod:`repro.core.memo`) memoizes raw
    :class:`~repro.core.evaluate.MappingEvaluation` objects keyed by
    assignment fingerprint.

    ``write_only=True`` turns every lookup into a miss while still
    persisting results — the design service's ``cache: "refresh"``
    control, which recomputes and overwrites warm entries in place.
    """

    max_entries: int | None = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    backend: CacheBackend | None = None
    write_only: bool = False
    _lock: Lock = field(default_factory=Lock, repr=False)

    def __post_init__(self):
        """Create the default LRU memory backend when none was given."""
        if self.backend is None:
            self.backend = MemoryBackend(max_entries=self.max_entries)

    def get(self, key: tuple) -> JobResult | None:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        with self._lock:
            result = (
                None if self.write_only else self.backend.get(key)
            )
            if result is None:
                self.stats.misses += 1
                _MISSES.inc(backend=self.backend.name)
            else:
                self.stats.hits += 1
                _HITS.inc(backend=self.backend.name)
            return result

    def note_deduped(self) -> None:
        """Reclassify the last lookup of a key as a hit.

        The engine found the same key already queued in the current
        batch (``get`` had counted it as a miss).
        """
        with self._lock:
            self.stats.hits += 1
            self.stats.misses -= 1
            _DEDUP.inc(backend=self.backend.name)

    def put(self, key: tuple, result: JobResult) -> None:
        """Store ``result`` under ``key`` (a no-op when caching is off)."""
        if self.max_entries == 0:
            return  # caching disabled
        with self._lock:
            evicted = self.backend.put(key, result)
            self.stats.evictions += evicted
            if evicted:
                _EVICTIONS.inc(evicted, backend=self.backend.name)
            # Persistent backends count writes they had to drop; mirror
            # the running total so one CacheStats line tells the story.
            self.stats.write_errors = getattr(
                self.backend, "write_errors", 0
            )

    def __len__(self) -> int:
        """Number of entries in the underlying store."""
        return len(self.backend)

    def clear(self) -> None:
        """Drop every stored entry (counters are preserved)."""
        with self._lock:
            self.backend.clear()
