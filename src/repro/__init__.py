"""Reproduction of SUNMAP (Murali & De Micheli, DAC 2004).

A tool for automatic NoC topology selection and generation: core-graph
mapping onto a topology library (mesh, torus, hypercube, Clos, butterfly
and extensions) under four routing functions, with floorplan-backed area
and power models, bandwidth/area feasibility checks, a cycle-accurate
wormhole simulator, and xpipes-style SystemC generation.

Quick start::

    from repro import vopd, run_sunmap
    report = run_sunmap(vopd(), routing="MP", objective="hops")
    print(report.summary())
"""

from repro.apps import (
    APPLICATIONS,
    dsp_filter,
    load_application,
    mpeg4,
    network_processor,
    vopd,
)
from repro.core import (
    Constraints,
    CoreGraph,
    MapperConfig,
    MappingEvaluation,
    SelectionResult,
    evaluate_mapping,
    map_onto,
    select_topology,
)
from repro.engine import (
    EvaluationCache,
    EvaluationJob,
    ExplorationEngine,
    JobResult,
)
from repro.errors import (
    FloorplanError,
    GenerationError,
    MappingInfeasibleError,
    ReproError,
    SimulationError,
    TopologyError,
    UnsupportedRoutingError,
)
from repro.io import (
    core_graph_from_dict,
    core_graph_to_dict,
    custom_topology_from_dict,
    custom_topology_to_dict,
    load_core_graph,
    load_topology,
    save_core_graph,
    save_selection,
    save_topology,
    selection_to_dict,
)
from repro.report import (
    campaign_to_markdown,
    render_floorplan,
    render_mapping,
    selection_to_markdown,
)
from repro.simulation import (
    CampaignConfig,
    CampaignResult,
    SimConfig,
    SimReport,
    run_campaign,
)
from repro.sunmap import SunmapReport, run_sunmap
from repro.synthesis import (
    SynthesisConfig,
    SynthesisResult,
    synthesize_topologies,
)
from repro.topology import (
    CustomTopology,
    Topology,
    extended_library,
    make_topology,
    standard_library,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "CoreGraph",
    "Constraints",
    "MapperConfig",
    "MappingEvaluation",
    "SelectionResult",
    "map_onto",
    "evaluate_mapping",
    "select_topology",
    "ExplorationEngine",
    "EvaluationJob",
    "EvaluationCache",
    "JobResult",
    "run_sunmap",
    "SunmapReport",
    "CampaignConfig",
    "CampaignResult",
    "SimConfig",
    "SimReport",
    "run_campaign",
    "campaign_to_markdown",
    "Topology",
    "CustomTopology",
    "make_topology",
    "standard_library",
    "extended_library",
    "core_graph_to_dict",
    "core_graph_from_dict",
    "custom_topology_to_dict",
    "custom_topology_from_dict",
    "save_core_graph",
    "load_core_graph",
    "save_topology",
    "load_topology",
    "selection_to_dict",
    "save_selection",
    "SynthesisConfig",
    "SynthesisResult",
    "synthesize_topologies",
    "render_floorplan",
    "render_mapping",
    "selection_to_markdown",
    "vopd",
    "mpeg4",
    "dsp_filter",
    "network_processor",
    "load_application",
    "APPLICATIONS",
    "ReproError",
    "TopologyError",
    "UnsupportedRoutingError",
    "MappingInfeasibleError",
    "FloorplanError",
    "SimulationError",
    "GenerationError",
]
