"""Exception hierarchy for the SUNMAP reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CoreGraphError(ReproError):
    """Raised for malformed application core graphs."""


class TopologyError(ReproError):
    """Raised for invalid topology parameters or queries."""


class UnsupportedRoutingError(ReproError):
    """Raised when a routing function does not apply to a topology.

    Example: dimension-ordered routing is undefined for a 3-stage Clos
    network; the selector treats this as "skip this combination".
    """


class UnroutableError(UnsupportedRoutingError):
    """Raised when a fault set partitions a commodity's endpoints.

    Subclasses :class:`UnsupportedRoutingError` so every existing "skip
    this combination" handler (selector, engine job capture) treats a
    partitioned fabric like any other unroutable pairing — but callers
    that care can distinguish "routing function undefined here" from
    "this fabric is physically severed".
    """


class MappingInfeasibleError(ReproError):
    """Raised when no feasible mapping exists for a topology.

    A mapping is infeasible when the core count exceeds the slot count, or
    when every evaluated assignment violates the bandwidth or area
    constraints (e.g. MPEG4 on a butterfly, Section 6.1 of the paper).
    """


class FloorplanError(ReproError):
    """Raised when the LP floorplanner cannot produce a legal placement."""


class SimulationError(ReproError):
    """Raised for invalid simulator configuration or broken invariants."""


class GenerationError(ReproError):
    """Raised when SystemC generation is asked for an incomplete design."""


class ServiceError(ReproError):
    """Raised for design-service failures (server setup, transport)."""


class ContractError(ServiceError):
    """Raised when a design request violates the JSON contract.

    The message names the offending field path and constraint, so
    clients can fix the request without reading server logs; the server
    maps this to an ``invalid-request`` error envelope instead of
    crashing the connection.
    """
