"""Exception hierarchy for the SUNMAP reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CoreGraphError(ReproError):
    """Raised for malformed application core graphs."""


class TopologyError(ReproError):
    """Raised for invalid topology parameters or queries."""


class UnsupportedRoutingError(ReproError):
    """Raised when a routing function does not apply to a topology.

    Example: dimension-ordered routing is undefined for a 3-stage Clos
    network; the selector treats this as "skip this combination".
    """


class UnroutableError(UnsupportedRoutingError):
    """Raised when a fault set partitions a commodity's endpoints.

    Subclasses :class:`UnsupportedRoutingError` so every existing "skip
    this combination" handler (selector, engine job capture) treats a
    partitioned fabric like any other unroutable pairing — but callers
    that care can distinguish "routing function undefined here" from
    "this fabric is physically severed".
    """


class MappingInfeasibleError(ReproError):
    """Raised when no feasible mapping exists for a topology.

    A mapping is infeasible when the core count exceeds the slot count, or
    when every evaluated assignment violates the bandwidth or area
    constraints (e.g. MPEG4 on a butterfly, Section 6.1 of the paper).
    """


class FloorplanError(ReproError):
    """Raised when the LP floorplanner cannot produce a legal placement."""


class SimulationError(ReproError):
    """Raised for invalid simulator configuration or broken invariants."""


class GenerationError(ReproError):
    """Raised when SystemC generation is asked for an incomplete design."""


class RetryableError(ReproError):
    """Base class for transient infrastructure failures worth retrying.

    The resilience layer (:mod:`repro.engine.resilience`) re-runs a job
    whose failure is retryable — a crashed worker, an exceeded
    wall-clock budget, a flaky filesystem — because the job itself is
    deterministic: success after a retry is bit-identical to first-try
    success. Domain errors (an infeasible mapping, an unroutable
    fabric) are *not* retryable: re-running deterministic work cannot
    change a deterministic answer.
    """


class WorkerCrashError(RetryableError):
    """Raised when a worker process died mid-job (broken process pool).

    The pool is rebuilt and the lost jobs resubmitted; a job that keeps
    crashing its worker exhausts its retry budget and surfaces as a
    :class:`~repro.engine.resilience.JobFailure`.
    """


class JobTimeoutError(RetryableError):
    """Raised when a job exceeded its per-job wall-clock budget.

    The stuck worker is killed (reclaiming the pool slot) and the job
    is retried under the policy like any other transient failure.
    """


class JobFailedError(ReproError):
    """Raised when a job failed permanently (retries exhausted or fatal).

    ``ExplorationEngine.run(on_failure="raise")`` — the default — maps a
    :class:`~repro.engine.resilience.JobFailure` result back to the
    original exception when one was captured, and to this class
    otherwise; ``on_failure="skip"`` returns the failure in the result
    list instead.
    """


class ServiceError(ReproError):
    """Raised for design-service failures (server setup, transport)."""


class ServiceBusyError(ServiceError, RetryableError):
    """Raised when the service's in-flight job budget is exhausted.

    Maps to the wire contract's typed ``busy`` error: the request was
    *not* admitted (nothing was computed), so the client should retry
    after :attr:`retry_after_s` seconds. Subclasses
    :class:`RetryableError` because retrying is exactly the remedy.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        """Create the error with a client backoff hint in seconds."""
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ContractError(ServiceError):
    """Raised when a design request violates the JSON contract.

    The message names the offending field path and constraint, so
    clients can fix the request without reading server logs; the server
    maps this to an ``invalid-request`` error envelope instead of
    crashing the connection.
    """
