"""2-D torus topology (Figure 1(b) of the paper).

A torus is a mesh with additional wrap-around channels between opposite
edge nodes, so *every* switch has four neighbours (5x5 with the core port).
The extra links buy shorter average distance at the price of larger
switches and long wrap wires — exactly the trade-off the paper's VOPD
example quantifies (torus: 10% lower delay, mesh: 20% lower power).

Wrap-around links are given a physical length of ``dimension - 1`` tile
pitches in the floorplan-free estimate (non-folded layout); when the LP
floorplanner runs, lengths are measured from actual block positions.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.base import switch, term
from repro.topology.mesh import MeshTopology


def cyclic_arc(a: int, b: int, size: int, wraps: bool) -> list[int]:
    """Coordinates walking from ``a`` to ``b`` along the shorter arc.

    The returned list starts at ``a``, ends at ``b`` and is ordered in
    travel direction. When both arcs tie, or when ``wraps`` is False (the
    dimension has no wrap channel), the direct non-wrapping arc is used.
    """
    if a == b:
        return [a]
    if not wraps:
        step = 1 if b > a else -1
        return list(range(a, b + step, step))
    forward = (b - a) % size
    backward = (a - b) % size
    if forward < backward or (forward == backward and b > a):
        return [(a + s) % size for s in range(forward + 1)]
    return [(a - s) % size for s in range(backward + 1)]


class TorusTopology(MeshTopology):
    """``rows x cols`` 2-D torus (mesh plus wrap-around channels)."""

    def __init__(self, rows: int, cols: int, name: str | None = None):
        super().__init__(rows, cols, name=name or f"torus-{rows}x{cols}")

    @property
    def _row_wraps(self) -> bool:
        # A wrap channel on a dimension of size <= 2 would duplicate an
        # existing mesh link, so it is omitted.
        return self.rows > 2

    @property
    def _col_wraps(self) -> bool:
        return self.cols > 2

    def _build(self) -> nx.DiGraph:
        g = super()._build()
        if self._row_wraps:
            for c in range(self.cols):
                i = self.cell_slot(0, c)
                j = self.cell_slot(self.rows - 1, c)
                length = float(self.rows - 1)
                g.add_edge(
                    switch(i), switch(j), kind="net", length=length, wrap=True
                )
                g.add_edge(
                    switch(j), switch(i), kind="net", length=length, wrap=True
                )
        if self._col_wraps:
            for r in range(self.rows):
                i = self.cell_slot(r, 0)
                j = self.cell_slot(r, self.cols - 1)
                length = float(self.cols - 1)
                g.add_edge(
                    switch(i), switch(j), kind="net", length=length, wrap=True
                )
                g.add_edge(
                    switch(j), switch(i), kind="net", length=length, wrap=True
                )
        return g

    # ------------------------------------------------------------------
    def quadrant_nodes(self, src_slot: int, dst_slot: int) -> set:
        """Smallest bounding box considering wrap-around channels.

        Per dimension the quadrant keeps the coordinates on the shorter
        cyclic arc between source and destination (Section 4.3's torus
        refinement of the mesh bounding box, Figure 3(c) shading).
        """
        r0, c0 = self.slot_cell(src_slot)
        r1, c1 = self.slot_cell(dst_slot)
        rows = cyclic_arc(r0, r1, self.rows, self._row_wraps)
        cols = cyclic_arc(c0, c1, self.cols, self._col_wraps)
        nodes = {switch(self.cell_slot(r, c)) for r in rows for c in cols}
        nodes.add(term(src_slot))
        nodes.add(term(dst_slot))
        return nodes

    def dor_path(self, src_slot: int, dst_slot: int) -> list:
        """XY routing taking the shorter cyclic direction per dimension."""
        r0, c0 = self.slot_cell(src_slot)
        r1, c1 = self.slot_cell(dst_slot)
        path = [term(src_slot), switch(src_slot)]
        r = r0
        for c in cyclic_arc(c0, c1, self.cols, self._col_wraps)[1:]:
            path.append(switch(self.cell_slot(r, c)))
        c = c1
        for r in cyclic_arc(r0, r1, self.rows, self._row_wraps)[1:]:
            path.append(switch(self.cell_slot(r, c)))
        path.append(term(dst_slot))
        return path
