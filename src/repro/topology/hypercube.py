"""Hypercube topology — 2-ary n-cube (Figure 1(c) of the paper).

A node is identified by the n-tuple of bits of its index; two nodes are
adjacent iff their tuples differ in exactly one position. The quadrant
graph of a commodity is the subcube spanned by the dimensions on which the
source and destination disagree (Section 4.3): every node matching the
agreed bits lies on some minimum path.

For floorplanning, the cube is embedded in a 2-D grid by splitting the
address bits between x (low half) and y (high half).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term


class HypercubeTopology(Topology):
    """2-ary ``n``-cube with ``2**n`` slots, one core slot per switch."""

    kind = "direct"

    def __init__(self, dimensions: int, name: str | None = None):
        if dimensions < 1:
            raise TopologyError("hypercube needs at least 1 dimension")
        self.dimensions = dimensions
        self._xbits = (dimensions + 1) // 2
        super().__init__(name or f"hypercube-{dimensions}d")

    @classmethod
    def for_cores(cls, n_cores: int, **kwargs) -> "HypercubeTopology":
        """Smallest cube with at least ``n_cores`` nodes."""
        if n_cores < 2:
            raise TopologyError("need at least 2 cores")
        return cls(max(1, math.ceil(math.log2(n_cores))), **kwargs)

    @property
    def num_slots(self) -> int:
        return 1 << self.dimensions

    # ------------------------------------------------------------------
    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for i in range(self.num_slots):
            g.add_edge(term(i), switch(i), kind="core")
            g.add_edge(switch(i), term(i), kind="core")
        for i in range(self.num_slots):
            for bit in range(self.dimensions):
                j = i ^ (1 << bit)
                if j > i:
                    g.add_edge(switch(i), switch(j), kind="net")
                    g.add_edge(switch(j), switch(i), kind="net")
        return g

    def position(self, node) -> tuple[float, float]:
        i = node[1]
        x = i & ((1 << self._xbits) - 1)
        y = i >> self._xbits
        return (float(x), float(y))

    # ------------------------------------------------------------------
    def quadrant_nodes(self, src_slot: int, dst_slot: int) -> set:
        """Subcube fixing the bits on which source and destination agree.

        Example (paper, Section 4.3): source 0 = (0,0,0), destination
        3 = (0,1,1) → all nodes of the form (0,*,*), i.e. {0, 1, 2, 3}.
        """
        same_mask = ~(src_slot ^ dst_slot) & (self.num_slots - 1)
        anchor = src_slot & same_mask
        nodes = {
            switch(j)
            for j in range(self.num_slots)
            if (j & same_mask) == anchor
        }
        nodes.add(term(src_slot))
        nodes.add(term(dst_slot))
        return nodes

    def dor_path(self, src_slot: int, dst_slot: int) -> list:
        """E-cube routing: correct differing bits lowest-first."""
        path = [term(src_slot), switch(src_slot)]
        cur = src_slot
        for bit in range(self.dimensions):
            if (cur ^ dst_slot) & (1 << bit):
                cur ^= 1 << bit
                path.append(switch(cur))
        path.append(term(dst_slot))
        return path
