"""Topology library and registry (the paper's "Topo Lib", Figure 4).

The registry maps topology names to factory functions accepting a core
count. ``standard_library`` instantiates the five topologies evaluated in
the paper; ``extended_library`` adds the "easily added" extensions
(octagon, star, ring) the paper mentions in Section 1.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.topology.butterfly import ButterflyTopology
from repro.topology.clos import ClosTopology
from repro.topology.hypercube import HypercubeTopology
from repro.topology.mesh import MeshTopology
from repro.topology.octagon import OctagonTopology
from repro.topology.ring import RingTopology
from repro.topology.star import StarTopology
from repro.topology.torus import TorusTopology

#: The five topologies the paper evaluates (Sections 1 and 6).
STANDARD_NAMES = ("mesh", "torus", "hypercube", "clos", "butterfly")

#: Extensions demonstrating Section 1's "other topologies can be easily
#: added to the topology library".
EXTENSION_NAMES = ("octagon", "star", "ring")

_REGISTRY: dict[str, Callable[..., Topology]] = {
    "mesh": MeshTopology.for_cores,
    "torus": TorusTopology.for_cores,
    "hypercube": HypercubeTopology.for_cores,
    "clos": ClosTopology.for_cores,
    "butterfly": ButterflyTopology.for_cores,
    "octagon": OctagonTopology.for_cores,
    "star": StarTopology.for_cores,
    "ring": RingTopology.for_cores,
}


def register_topology(name: str, factory: Callable[..., Topology]) -> None:
    """Add a custom topology factory to the registry.

    The factory must accept ``(n_cores, **kwargs)`` and return a
    :class:`Topology` with at least ``n_cores`` slots.
    """
    if name in _REGISTRY:
        raise TopologyError(f"topology {name!r} is already registered")
    _REGISTRY[name] = factory


def available_topologies() -> list[str]:
    return sorted(_REGISTRY)


def make_topology(name: str, n_cores: int, **kwargs) -> Topology:
    """Instantiate a registered topology sized for ``n_cores`` cores."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise TopologyError(
            f"unknown topology {name!r}; available: {available_topologies()}"
        ) from None
    return factory(n_cores, **kwargs)


def standard_library(n_cores: int) -> list[Topology]:
    """The paper's five-entry topology library, sized for the application."""
    return [make_topology(name, n_cores) for name in STANDARD_NAMES]


def extended_library(n_cores: int) -> list[Topology]:
    """Standard library plus every extension that fits ``n_cores``."""
    topos = standard_library(n_cores)
    for name in EXTENSION_NAMES:
        try:
            topos.append(make_topology(name, n_cores))
        except TopologyError:
            continue  # e.g. octagon with more than 8 cores
    return topos
