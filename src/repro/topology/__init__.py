"""NoC topology library: graphs, quadrants, geometry (paper Sections 4.2/4.3)."""

from repro.topology.base import (
    ResourceSummary,
    Topology,
    is_switch,
    is_term,
    switch,
    term,
)
from repro.topology.butterfly import ButterflyTopology
from repro.topology.clos import ClosTopology
from repro.topology.custom import CustomTopology
from repro.topology.hypercube import HypercubeTopology
from repro.topology.library import (
    EXTENSION_NAMES,
    STANDARD_NAMES,
    available_topologies,
    extended_library,
    make_topology,
    register_topology,
    standard_library,
)
from repro.topology.mesh import MeshTopology
from repro.topology.octagon import OctagonTopology
from repro.topology.ring import RingTopology
from repro.topology.star import StarTopology
from repro.topology.torus import TorusTopology

__all__ = [
    "ResourceSummary",
    "Topology",
    "term",
    "switch",
    "is_term",
    "is_switch",
    "CustomTopology",
    "MeshTopology",
    "TorusTopology",
    "HypercubeTopology",
    "ClosTopology",
    "ButterflyTopology",
    "OctagonTopology",
    "StarTopology",
    "RingTopology",
    "STANDARD_NAMES",
    "EXTENSION_NAMES",
    "make_topology",
    "register_topology",
    "available_topologies",
    "standard_library",
    "extended_library",
]
