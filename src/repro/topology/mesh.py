"""2-D mesh topology (Figure 1(a) of the paper).

Every terminal slot has its own switch; switches connect to their north,
south, east and west neighbours. Port counts therefore vary with position:
a corner switch is 3x3 (two neighbours + the core), an edge switch 4x4 and
an interior switch 5x5 — this asymmetry is what makes the mesh cheaper than
the torus in area and power (Section 1, Figure 3(d) discussion).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term


class MeshTopology(Topology):
    """``rows x cols`` 2-D mesh of switches, one core slot per switch."""

    kind = "direct"

    def __init__(self, rows: int, cols: int, name: str | None = None):
        if rows < 1 or cols < 1:
            raise TopologyError("mesh dimensions must be positive")
        if rows * cols < 2:
            raise TopologyError("mesh must have at least 2 nodes")
        self.rows = rows
        self.cols = cols
        super().__init__(name or f"mesh-{rows}x{cols}")

    # ------------------------------------------------------------------
    @classmethod
    def for_cores(cls, n_cores: int, **kwargs) -> "MeshTopology":
        """Smallest near-square mesh with at least ``n_cores`` slots."""
        if n_cores < 2:
            raise TopologyError("need at least 2 cores")
        rows = max(1, int(math.floor(math.sqrt(n_cores))))
        cols = int(math.ceil(n_cores / rows))
        return cls(rows, cols, **kwargs)

    @property
    def num_slots(self) -> int:
        return self.rows * self.cols

    def slot_cell(self, slot: int) -> tuple[int, int]:
        """(row, col) grid cell of a terminal slot."""
        if not 0 <= slot < self.num_slots:
            raise TopologyError(f"slot out of range: {slot}")
        return divmod(slot, self.cols)[0], slot % self.cols

    def cell_slot(self, row: int, col: int) -> int:
        return row * self.cols + col

    # ------------------------------------------------------------------
    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for i in range(self.num_slots):
            g.add_edge(term(i), switch(i), kind="core")
            g.add_edge(switch(i), term(i), kind="core")
        for i in range(self.num_slots):
            r, c = self.slot_cell(i)
            for rr, cc in ((r, c + 1), (r + 1, c)):
                if rr < self.rows and cc < self.cols:
                    j = self.cell_slot(rr, cc)
                    g.add_edge(switch(i), switch(j), kind="net")
                    g.add_edge(switch(j), switch(i), kind="net")
        return g

    def position(self, node) -> tuple[float, float]:
        i = node[1]
        r, c = self.slot_cell(i)
        return (float(c), float(r))

    # ------------------------------------------------------------------
    def quadrant_nodes(self, src_slot: int, dst_slot: int) -> set:
        """Switches in the bounding box of source and destination.

        All monotone paths inside the box are minimum paths, so restricting
        Dijkstra to the box preserves optimality while shrinking the search
        (Section 4.3, Figure 3(b) shading).
        """
        r0, c0 = self.slot_cell(src_slot)
        r1, c1 = self.slot_cell(dst_slot)
        rows = range(min(r0, r1), max(r0, r1) + 1)
        cols = range(min(c0, c1), max(c0, c1) + 1)
        nodes = {switch(self.cell_slot(r, c)) for r in rows for c in cols}
        nodes.add(term(src_slot))
        nodes.add(term(dst_slot))
        return nodes

    def dor_path(self, src_slot: int, dst_slot: int) -> list:
        """XY dimension-ordered route: resolve columns first, then rows."""
        r0, c0 = self.slot_cell(src_slot)
        r1, c1 = self.slot_cell(dst_slot)
        path = [term(src_slot), switch(src_slot)]
        r, c = r0, c0
        while c != c1:
            c += 1 if c1 > c else -1
            path.append(switch(self.cell_slot(r, c)))
        while r != r1:
            r += 1 if r1 > r else -1
            path.append(switch(self.cell_slot(r, c)))
        path.append(term(dst_slot))
        return path
