"""Star topology (extension; [10] S.J. Lee et al., ISSCC 2003).

A single central switch connects every core directly: one switch hop for
all pairs, at the cost of an N x N crossbar whose area and power grow
quadratically — the selection engine therefore only ever prefers a star
for small designs or pure-latency objectives, which is the realistic
behaviour of the ISSCC'03 star-connected network.

Because a star has no switch-to-switch links, its terminal links *are* the
network channels, so (unlike the other topologies) bandwidth constraints
are applied to them (``constrain_core_links = True``).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term


class StarTopology(Topology):
    """Single-hub star with ``num_leaves`` terminal slots."""

    kind = "direct"
    constrain_core_links = True

    def __init__(self, num_leaves: int, name: str | None = None):
        if num_leaves < 2:
            raise TopologyError("star needs at least 2 leaves")
        self.num_leaves = num_leaves
        super().__init__(name or f"star-{num_leaves}")

    @classmethod
    def for_cores(cls, n_cores: int, **kwargs) -> "StarTopology":
        if n_cores < 2:
            raise TopologyError("need at least 2 cores")
        return cls(n_cores, **kwargs)

    @property
    def num_slots(self) -> int:
        return self.num_leaves

    @property
    def hub(self):
        return switch("hub")

    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for i in range(self.num_leaves):
            g.add_edge(term(i), self.hub, kind="core")
            g.add_edge(self.hub, term(i), kind="core")
        return g

    def dor_path(self, src_slot: int, dst_slot: int) -> list:
        """The only route: through the hub."""
        return [term(src_slot), self.hub, term(dst_slot)]

    def position(self, node) -> tuple[float, float]:
        side = max(1, math.ceil(math.sqrt(self.num_leaves + 1)))
        if node[0] == "sw":
            return (side / 2.0, side / 2.0)
        i = node[1]
        return (float(i % side), float(i // side))
