"""User-defined heterogeneous/irregular topologies.

The paper's conclusions name "automatic heterogeneous topology modeling"
as future work; this module supplies the modeling half: an arbitrary
switch fabric — any switch sizes, any connectivity, several cores
concentrated on one switch — described explicitly and dropped into the
same mapping/selection/generation machinery as the library topologies.
(:mod:`repro.synthesis` supplies the *generation* half: it produces
these fabrics automatically from a core graph.)

Example — two 5-port hub switches bridged by a double link::

    topo = CustomTopology(
        name="dual-hub",
        slot_switch=[0, 0, 0, 0, 1, 1, 1, 1],   # slots 0-3 on hub 0
        links=[(0, 1), (0, 1)],                  # parallel bridge links
    )

Repeated link pairs model *parallel physical channels*: the pair above
becomes one graph edge carrying an explicit channel multiplicity of 2
(the ``mult`` edge attribute). Multiplicity is a capacity multiplier —
bandwidth feasibility divides the edge load by it, the physical models
instantiate that many channels (wiring area, repeater leakage, switch
ports), and generation emits that many pipelined links. One known gap:
the flit-level simulator still models a fat link as a *single* channel
(one flit per cycle per VC), a conservative under-approximation of its
throughput — campaign latency curves on fat-link fabrics saturate
earlier than the physical design would.

Quadrant graphs degenerate to the whole fabric (Section 4.3's
constructions are topology-specific), so minimum-path search stays
correct, just unpruned. Dimension-ordered routing is undefined.
"""

from __future__ import annotations

import math
from collections import Counter

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term


class CustomTopology(Topology):
    """An explicit, possibly heterogeneous, switch fabric.

    Args:
        name: topology name (also used in selection tables).
        slot_switch: for each terminal slot, the integer id of the
            switch its core attaches to (bidirectionally). Several slots
            may share a switch (concentration).
        links: switch-id pairs; each entry creates one bidirectional
            channel. Repeated pairs create parallel channels, modeled as
            one graph edge with an explicit channel multiplicity (the
            ``mult`` edge attribute) acting as a capacity multiplier.
            Self-loop pairs ``(s, s)`` raise :class:`TopologyError`.
        positions: optional ``{switch_id: (x, y)}`` placement in tile
            pitches; defaults to a near-square grid in id order.
    """

    kind = "direct"

    def __init__(
        self,
        name: str,
        slot_switch: list[int],
        links: list[tuple[int, int]],
        positions: dict[int, tuple[float, float]] | None = None,
    ):
        if not slot_switch:
            raise TopologyError("custom topology needs at least one slot")
        if len(slot_switch) < 2:
            raise TopologyError("custom topology needs at least two slots")
        self._slot_switch = list(slot_switch)
        self._switch_ids = sorted(set(slot_switch) | {
            s for pair in links for s in pair
        })
        for a, b in links:
            if a == b:
                raise TopologyError(f"self-link on switch {a}")
        #: Channel multiplicity per undirected switch pair.
        self._link_mult: dict[tuple[int, int], int] = dict(
            Counter(tuple(sorted(pair)) for pair in links)
        )
        self._positions = dict(positions or {})
        if not self._positions:
            side = max(1, math.ceil(math.sqrt(len(self._switch_ids))))
            for idx, sid in enumerate(self._switch_ids):
                self._positions[sid] = (float(idx % side), float(idx // side))
        missing = [s for s in self._switch_ids if s not in self._positions]
        if missing:
            raise TopologyError(f"switches without positions: {missing}")
        super().__init__(name)
        self.validate_connectivity()

    @property
    def num_slots(self) -> int:
        return len(self._slot_switch)

    @property
    def slot_switch(self) -> list[int]:
        """Per-slot attached switch id (a copy; serialization uses it)."""
        return list(self._slot_switch)

    def concentration(self) -> dict[int, int]:
        """Cores per switch (heterogeneity summary)."""
        return dict(Counter(self._slot_switch))

    def link_multiplicity(self) -> dict[tuple[int, int], int]:
        """Channel count per undirected switch pair (a copy)."""
        return dict(self._link_mult)

    def switch_positions(self) -> dict[int, tuple[float, float]]:
        """Switch placements in tile pitches (a copy)."""
        return dict(self._positions)

    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for slot, sid in enumerate(self._slot_switch):
            g.add_edge(term(slot), switch(sid), kind="core")
            g.add_edge(switch(sid), term(slot), kind="core")
        for (a, b), mult in sorted(self._link_mult.items()):
            g.add_edge(switch(a), switch(b), kind="net", mult=mult)
            g.add_edge(switch(b), switch(a), kind="net", mult=mult)
        return g

    def position(self, node) -> tuple[float, float]:
        if node[0] == "term":
            return self._positions[self._slot_switch[node[1]]]
        return self._positions[node[1]]

    def validate_connectivity(self) -> None:
        """Every slot must reach every other slot."""
        g = self.graph
        reach = nx.descendants(g, term(0))
        for slot in range(1, self.num_slots):
            if term(slot) not in reach:
                raise TopologyError(
                    f"{self.name}: slot {slot} unreachable from slot 0"
                )
