"""User-defined heterogeneous/irregular topologies.

The paper's conclusions name "automatic heterogeneous topology modeling"
as future work; this module supplies the modeling half: an arbitrary
switch fabric — any switch sizes, any connectivity, several cores
concentrated on one switch — described explicitly and dropped into the
same mapping/selection/generation machinery as the library topologies.

Example — two 5-port hub switches bridged by a double link::

    topo = CustomTopology(
        name="dual-hub",
        slot_switch=[0, 0, 0, 0, 1, 1, 1, 1],   # slots 0-3 on hub 0
        links=[(0, 1), (0, 1)],                  # parallel bridge links
    )

Quadrant graphs degenerate to the whole fabric (Section 4.3's
constructions are topology-specific), so minimum-path search stays
correct, just unpruned. Dimension-ordered routing is undefined.
"""

from __future__ import annotations

import math
from collections import Counter

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term


class CustomTopology(Topology):
    """An explicit, possibly heterogeneous, switch fabric.

    Args:
        name: topology name (also used in selection tables).
        slot_switch: for each terminal slot, the integer id of the
            switch its core attaches to (bidirectionally). Several slots
            may share a switch (concentration).
        links: switch-id pairs; each entry creates one bidirectional
            channel. Repeated pairs create parallel channels — modeled
            as a single fatter link (loads merge), so they are collapsed
            with a warning-free union here.
        positions: optional ``{switch_id: (x, y)}`` placement in tile
            pitches; defaults to a near-square grid in id order.
    """

    kind = "direct"

    def __init__(
        self,
        name: str,
        slot_switch: list[int],
        links: list[tuple[int, int]],
        positions: dict[int, tuple[float, float]] | None = None,
    ):
        if not slot_switch:
            raise TopologyError("custom topology needs at least one slot")
        if len(slot_switch) < 2:
            raise TopologyError("custom topology needs at least two slots")
        self._slot_switch = list(slot_switch)
        self._switch_ids = sorted(set(slot_switch) | {
            s for pair in links for s in pair
        })
        for a, b in links:
            if a == b:
                raise TopologyError(f"self-link on switch {a}")
        self._links = [tuple(sorted(pair)) for pair in links]
        self._positions = dict(positions or {})
        if not self._positions:
            side = max(1, math.ceil(math.sqrt(len(self._switch_ids))))
            for idx, sid in enumerate(self._switch_ids):
                self._positions[sid] = (float(idx % side), float(idx // side))
        missing = [s for s in self._switch_ids if s not in self._positions]
        if missing:
            raise TopologyError(f"switches without positions: {missing}")
        super().__init__(name)
        self.validate_connectivity()

    @property
    def num_slots(self) -> int:
        return len(self._slot_switch)

    def concentration(self) -> dict[int, int]:
        """Cores per switch (heterogeneity summary)."""
        return dict(Counter(self._slot_switch))

    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for slot, sid in enumerate(self._slot_switch):
            g.add_edge(term(slot), switch(sid), kind="core")
            g.add_edge(switch(sid), term(slot), kind="core")
        for a, b in set(self._links):
            g.add_edge(switch(a), switch(b), kind="net")
            g.add_edge(switch(b), switch(a), kind="net")
        return g

    def position(self, node) -> tuple[float, float]:
        if node[0] == "term":
            return self._positions[self._slot_switch[node[1]]]
        return self._positions[node[1]]

    def validate_connectivity(self) -> None:
        """Every slot must reach every other slot."""
        g = self.graph
        reach = nx.descendants(g, term(0))
        for slot in range(1, self.num_slots):
            if term(slot) not in reach:
                raise TopologyError(
                    f"{self.name}: slot {slot} unreachable from slot 0"
                )
