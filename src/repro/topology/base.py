"""NoC topology graphs (Definition 2 of the paper).

A topology is modeled as a directed :class:`networkx.DiGraph` with two node
kinds:

* ``("term", i)`` — *terminal slot* ``i``; cores are mapped onto terminal
  slots (the vertices ``U`` of the paper's topology graph ``P(U, F)``).
* ``("sw", key)`` — a switch; ``key`` is topology-specific (an integer for
  direct topologies, a ``(stage, index)`` pair for multistage ones).

Edges carry two attributes:

* ``kind`` — ``"core"`` for terminal<->switch links, ``"net"`` for
  switch<->switch links;
* ``length`` — nominal physical length in units of one tile pitch, used by
  the floorplan-free estimators (the LP floorplanner supersedes it when
  exact positions are available).

Hop-delay convention (matches the paper): the delay of a route is the
**number of switches it traverses**. Two adjacent mesh cores communicate in
2 hops (their two switches); every pair on a k-ary 2-fly butterfly is 2
hops; every pair on a 3-stage Clos is 3 hops.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import islice

import networkx as nx

from repro.errors import TopologyError, UnsupportedRoutingError

TERM = "term"
SW = "sw"

#: Nominal length (tile pitches) of a core-to-switch link.
CORE_LINK_LENGTH = 0.5

#: Cap used when counting distinct shortest paths (path diversity).
MAX_DIVERSITY = 64


_TERM_CACHE: dict[int, tuple[str, int]] = {}


def term(i: int) -> tuple[str, int]:
    """Graph node id for terminal slot ``i``.

    Memoized so the hot routing loops always see the *same* tuple
    object per slot — tuple allocation disappears and dict lookups hit
    the cached string hash.
    """
    node = _TERM_CACHE.get(i)
    if node is None:
        node = _TERM_CACHE[i] = (TERM, i)
    return node


def switch(key) -> tuple[str, object]:
    """Graph node id for a switch identified by ``key``."""
    return (SW, key)


def is_term(node) -> bool:
    return node[0] == TERM


def is_switch(node) -> bool:
    return node[0] == SW


@dataclass(frozen=True)
class ResourceSummary:
    """Switch/link counts for a topology instance (Figure 6(b) metric).

    Link counting convention (documented in DESIGN.md): bidirectional
    channel pairs of direct topologies count once; the inherently
    unidirectional channels of multistage topologies count individually.
    Core (terminal) links are included.
    """

    num_switches: int
    num_links: int
    switch_ports: dict


class Topology(ABC):
    """Abstract NoC topology.

    Subclasses implement :meth:`_build` (the graph), :attr:`num_slots`, and
    override :meth:`quadrant_nodes` / :meth:`dor_path` where the paper
    defines topology-specific behaviour (Sections 4.2 and 4.3).
    """

    #: "direct" (one core per switch) or "indirect" (multistage).
    kind = "direct"

    #: Whether bandwidth constraints also apply to terminal<->switch links.
    #: Off by default (see DESIGN.md: the paper's MPEG4 results require NI
    #: links to be unconstrained); topologies whose core links *are* the
    #: network (e.g. star) turn it on.
    constrain_core_links = False

    def __init__(self, name: str):
        self.name = name
        self._graph: nx.DiGraph | None = None
        self._dist_cache: dict | None = None
        # Structure caches: the graph is built once and never mutated
        # afterwards, so edge lists, port counts, quadrant views and the
        # direct-topology resource summary are all computed lazily and
        # reused (they sit on the mapping search's per-evaluation path).
        self._net_edges_cache: list | None = None
        self._core_edges_cache: list | None = None
        self._switch_ports_cache: dict | None = None
        self._quadrant_cache: dict = {}
        self._direct_resource_cache: tuple | None = None
        self._switches_cache: list | None = None
        self._switch_of_cache: dict | None = None
        self._channel_mult_cache: dict | None | str = "unset"

    def __getstate__(self) -> dict:
        """Drop derived caches when pickling (engine jobs ship
        topologies to worker processes): subgraph views hold closures
        that cannot pickle, and every cache rebuilds deterministically
        on the other side."""
        state = self.__dict__.copy()
        state["_net_edges_cache"] = None
        state["_core_edges_cache"] = None
        state["_switch_ports_cache"] = None
        state["_quadrant_cache"] = {}
        state["_direct_resource_cache"] = None
        state["_switches_cache"] = None
        state["_switch_of_cache"] = None
        state["_channel_mult_cache"] = "unset"
        # Caches attached by the simulator / estimator / routing layers.
        state.pop("_sim_layout_cache", None)
        state.pop("_phys_tables_cache", None)
        state.pop("_static_power_cache", None)
        state.pop("_mp_search_cache", None)
        state.pop("_routing_view_cache", None)
        state.pop("_search_edges_cache", None)
        return state

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        """The (lazily built) topology graph."""
        if self._graph is None:
            self._graph = self._build()
            self._annotate_lengths(self._graph)
        return self._graph

    @abstractmethod
    def _build(self) -> nx.DiGraph:
        """Construct the topology graph."""

    @property
    @abstractmethod
    def num_slots(self) -> int:
        """Number of terminal slots (``|U|``)."""

    def fits(self, n_cores: int) -> bool:
        """Whether a core graph with ``n_cores`` cores is mappable."""
        return n_cores <= self.num_slots

    @property
    def terminals(self) -> list:
        return [term(i) for i in range(self.num_slots)]

    @property
    def switches(self) -> list:
        if self._switches_cache is None:
            self._switches_cache = [
                n for n in self.graph.nodes if is_switch(n)
            ]
        return self._switches_cache

    def net_edges(self) -> list:
        """All switch-to-switch directed edges (cached; do not mutate)."""
        if self._net_edges_cache is None:
            self._net_edges_cache = [
                (u, v)
                for u, v, d in self.graph.edges(data=True)
                if d["kind"] == "net"
            ]
        return self._net_edges_cache

    def core_edges(self) -> list:
        """All terminal<->switch directed edges (cached; do not mutate)."""
        if self._core_edges_cache is None:
            self._core_edges_cache = [
                (u, v)
                for u, v, d in self.graph.edges(data=True)
                if d["kind"] == "core"
            ]
        return self._core_edges_cache

    def switch_ports(self, sw) -> tuple[int, int]:
        """(input ports, output ports) of a switch, core ports included.

        Parallel physical channels (the ``mult`` edge attribute of
        custom fabrics) each occupy a port, so a double link contributes
        two ports on each side; ordinary topologies carry no ``mult``
        attribute and count one port per edge as before.
        """
        cache = self._switch_ports_cache
        if cache is None:
            g = self.graph
            cache = self._switch_ports_cache = {
                node: (
                    int(g.in_degree(node, weight="mult")),
                    int(g.out_degree(node, weight="mult")),
                )
                for node in g.nodes
                if is_switch(node)
            }
        return cache[sw]

    def channel_multiplicity(self, u, v) -> int:
        """Parallel physical channels on edge ``u -> v`` (default 1)."""
        return int(self.graph.edges[u, v].get("mult", 1))

    def channel_multiplicities(self) -> dict | None:
        """``{directed net edge: channels}`` for fat links, else ``None``.

        ``None`` — the common case, every channel single — lets the
        bandwidth checks keep their original fast path; custom fabrics
        with parallel links get a dict restricted to the edges whose
        multiplicity exceeds one (cached; do not mutate).
        """
        if self._channel_mult_cache == "unset":
            mults = {
                (u, v): int(d["mult"])
                for u, v, d in self.graph.edges(data=True)
                if d.get("mult", 1) != 1
            }
            self._channel_mult_cache = mults or None
        return self._channel_mult_cache

    def channel_degradations(self) -> dict | None:
        """``{directed net edge: (cap_factor, extra_latency)}`` or ``None``.

        ``None`` — the pristine default — keeps the simulator on its
        exact fast path; fault overlays
        (:class:`repro.faults.FaultedTopology`) override this with the
        surviving channels their fault set degrades.
        """
        return None

    def switch_of(self, slot: int):
        """The switch a terminal injects into (first hop)."""
        cache = self._switch_of_cache
        if cache is None:
            cache = self._switch_of_cache = {}
        try:
            return cache[slot]
        except KeyError:
            pass
        for _, v in self.graph.out_edges(term(slot)):
            if is_switch(v):
                cache[slot] = v
                return v
        raise TopologyError(f"terminal {slot} has no attached switch")

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @abstractmethod
    def position(self, node) -> tuple[float, float]:
        """Abstract (x, y) placement of a node in tile-pitch units."""

    def _annotate_lengths(self, g: nx.DiGraph) -> None:
        """Set the ``length`` attribute of every edge from node positions."""
        for u, v, d in g.edges(data=True):
            if "length" in d:
                continue
            if d["kind"] == "core":
                d["length"] = CORE_LINK_LENGTH
            else:
                xu, yu = self.position(u)
                xv, yv = self.position(v)
                d["length"] = max(abs(xu - xv) + abs(yu - yv), CORE_LINK_LENGTH)

    # ------------------------------------------------------------------
    # distances and paths
    # ------------------------------------------------------------------
    def hop_distance(self, src_slot: int, dst_slot: int) -> int:
        """Minimum number of switches between two terminal slots."""
        if src_slot == dst_slot:
            return 0
        dist = self._slot_distances()
        try:
            return dist[src_slot][dst_slot]
        except KeyError:
            raise TopologyError(
                f"no path between slots {src_slot} and {dst_slot}"
            ) from None

    def _slot_distances(self) -> dict[int, dict[int, int]]:
        if self._dist_cache is None:
            self._dist_cache = {}
            for i in range(self.num_slots):
                lengths = nx.single_source_shortest_path_length(
                    self.graph, term(i)
                )
                # Edges on a term->term path exceed switch count by one.
                self._dist_cache[i] = {
                    j: lengths[term(j)] - 1
                    for j in range(self.num_slots)
                    if j != i and term(j) in lengths
                }
        return self._dist_cache

    def quadrant_nodes(self, src_slot: int, dst_slot: int) -> set | None:
        """Nodes of the quadrant graph for a commodity (Section 4.3).

        Returns a set of graph nodes guaranteed to contain at least one
        minimum path from ``term(src_slot)`` to ``term(dst_slot)``, or
        ``None`` to mean "the entire topology graph" (the trivial case,
        e.g. Clos networks).
        """
        return None

    def quadrant_subgraph(self, src_slot: int, dst_slot: int) -> nx.DiGraph:
        """The quadrant graph as a subgraph view (whole graph if trivial).

        Views are cached per (src, dst): the quadrant depends only on
        the slot pair, never on the mapping, and the swap search asks
        for the same pairs thousands of times per evaluation round.
        """
        key = (src_slot, dst_slot)
        view = self._quadrant_cache.get(key)
        if view is None:
            nodes = self.quadrant_nodes(src_slot, dst_slot)
            if nodes is None:
                view = self.graph
            else:
                nodes = set(nodes) | {term(src_slot), term(dst_slot)}
                view = self.graph.subgraph(nodes)
            self._quadrant_cache[key] = view
        return view

    def dor_path(self, src_slot: int, dst_slot: int) -> list:
        """Dimension-ordered route between two slots, as a node list.

        Only defined for topologies with dimensions (mesh, torus,
        hypercube); multistage and irregular topologies raise
        :class:`UnsupportedRoutingError`.
        """
        raise UnsupportedRoutingError(
            f"dimension-ordered routing is undefined for {self.name}"
        )

    def path_diversity(self, src_slot: int, dst_slot: int) -> int:
        """Number of distinct minimum paths (capped at MAX_DIVERSITY)."""
        if src_slot == dst_slot:
            return 0
        paths = nx.all_shortest_paths(self.graph, term(src_slot), term(dst_slot))
        return sum(1 for _ in islice(paths, MAX_DIVERSITY))

    # ------------------------------------------------------------------
    # resource accounting
    # ------------------------------------------------------------------
    def resource_summary(
        self, routes: list | None = None, mapped_slots: list | None = None
    ) -> ResourceSummary:
        """Count switches and links (Figure 6(b) resource metric).

        Args:
            routes: optional list of node paths in use; multistage
                topologies prune switches that appear on no route (the
                paper's DSP butterfly keeps 4 of 6 switches, Fig. 10(b)).
            mapped_slots: terminal slots actually occupied by cores; used
                to count core links. Defaults to all slots.
        """
        if mapped_slots is None:
            mapped_slots = list(range(self.num_slots))
        mapped = set(mapped_slots)

        if self.kind == "direct":
            # Everything except the core-link count is mapping-
            # independent for direct topologies; compute it once.
            if self._direct_resource_cache is None:
                used_switches = set(self.switches)
                seen = set()
                net_links = 0
                edge_data = self.graph.edges
                for u, v in self.net_edges():
                    if (v, u) in seen:
                        continue
                    seen.add((u, v))
                    net_links += int(edge_data[u, v].get("mult", 1))
                ports = {
                    sw: self.switch_ports(sw)
                    for sw in sorted(used_switches)
                }
                self._direct_resource_cache = (
                    len(used_switches), net_links, ports
                )
            num_switches, net_links, ports = self._direct_resource_cache
            return ResourceSummary(
                num_switches=num_switches,
                num_links=net_links + len(mapped),
                switch_ports=ports,
            )
        else:
            if routes:
                used_switches = {
                    n for path in routes for n in path if is_switch(n)
                }
                # Keep switches feeding/draining mapped terminals even if a
                # degenerate route list missed them.
                for s in mapped:
                    used_switches.add(self.switch_of(s))
            else:
                used_switches = set(self.switches)
            net_links = sum(
                1
                for u, v in self.net_edges()
                if u in used_switches and v in used_switches
            )
            core_links = 2 * len(mapped)  # one injection + one ejection link

        ports = {sw: self.switch_ports(sw) for sw in sorted(used_switches)}
        return ResourceSummary(
            num_switches=len(used_switches),
            num_links=net_links + core_links,
            switch_ports=ports,
        )

    def validate(self) -> None:
        """Structural sanity checks; raises :class:`TopologyError`."""
        g = self.graph
        for i in range(self.num_slots):
            if term(i) not in g:
                raise TopologyError(f"{self.name}: missing terminal {i}")
        for u, v, d in g.edges(data=True):
            if d.get("kind") not in ("core", "net"):
                raise TopologyError(f"{self.name}: edge {u}->{v} lacks kind")
            if is_term(u) and is_term(v):
                raise TopologyError(
                    f"{self.name}: terminals {u}->{v} directly connected"
                )
        # Every terminal must reach every other terminal.
        for i in range(min(self.num_slots, 4)):
            reach = nx.descendants(g, term(i))
            for j in range(self.num_slots):
                if j != i and term(j) not in reach:
                    raise TopologyError(
                        f"{self.name}: slot {j} unreachable from slot {i}"
                    )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, slots={self.num_slots})"
