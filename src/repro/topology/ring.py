"""Bidirectional ring topology (extension; Proteo-style [9]).

Each switch connects to its two ring neighbours and one core. The quadrant
graph of a commodity is the shorter arc between source and destination.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term
from repro.topology.torus import cyclic_arc


class RingTopology(Topology):
    """Bidirectional ring of ``size`` switches, one core slot each."""

    kind = "direct"

    def __init__(self, size: int, name: str | None = None):
        if size < 3:
            raise TopologyError("ring needs at least 3 nodes")
        self.size = size
        super().__init__(name or f"ring-{size}")

    @classmethod
    def for_cores(cls, n_cores: int, **kwargs) -> "RingTopology":
        if n_cores < 3:
            raise TopologyError("a ring needs at least 3 cores")
        return cls(n_cores, **kwargs)

    @property
    def num_slots(self) -> int:
        return self.size

    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for i in range(self.size):
            g.add_edge(term(i), switch(i), kind="core")
            g.add_edge(switch(i), term(i), kind="core")
        for i in range(self.size):
            j = (i + 1) % self.size
            wrap = j == 0  # dateline for deadlock-free VC assignment
            g.add_edge(switch(i), switch(j), kind="net", wrap=wrap)
            g.add_edge(switch(j), switch(i), kind="net", wrap=wrap)
        return g

    def position(self, node) -> tuple[float, float]:
        # Serpentine two-row layout keeps ring neighbours physically close.
        i = node[1]
        half = math.ceil(self.size / 2)
        if i < half:
            return (float(i), 0.0)
        return (float(self.size - 1 - i), 1.0)

    def quadrant_nodes(self, src_slot: int, dst_slot: int) -> set:
        arc = cyclic_arc(src_slot, dst_slot, self.size, wraps=True)
        nodes = {switch(i) for i in arc}
        nodes.add(term(src_slot))
        nodes.add(term(dst_slot))
        return nodes
