"""3-stage Clos topology (Figure 2(a) of the paper).

``Clos(m, n, r)``: *r* ingress switches each concentrating *n* cores,
*m* middle switches, *r* egress switches. Every switch of a stage connects
to every switch of the next stage, so any of the *m* middle switches can
carry any commodity — the "maximum path diversity" that makes Clos the
winner for the network-processor application (Section 6.2).

Every route traverses exactly three switches (ingress -> middle -> egress),
including core pairs sharing an ingress switch, matching the paper's
"average hop delay is three".

Default sizing for *N* cores mirrors Figure 2(a) (four switches per stage
for 8 cores): ``n = ceil(N/4)``, ``r = ceil(N/n)``, ``m = min(r, 2n)``.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term

#: x-coordinates (tile pitches) of the terminal / stage columns used for
#: the floorplan-free length estimates.
_STAGE_PITCH = 1.5


class ClosTopology(Topology):
    """Symmetric 3-stage Clos network ``Clos(m, n, r)``."""

    kind = "indirect"

    def __init__(self, m: int, n: int, r: int, name: str | None = None):
        if m < 1 or n < 1 or r < 1:
            raise TopologyError("Clos parameters must be positive")
        if n * r < 2:
            raise TopologyError("Clos must host at least 2 cores")
        self.m = m
        self.n = n
        self.r = r
        super().__init__(name or f"clos-m{m}n{n}r{r}")

    @classmethod
    def for_cores(cls, n_cores: int, **kwargs) -> "ClosTopology":
        """Paper-style sizing: about four edge switches per stage."""
        if n_cores < 2:
            raise TopologyError("need at least 2 cores")
        n = max(1, math.ceil(n_cores / 4))
        r = math.ceil(n_cores / n)
        m = max(2, min(r, 2 * n))
        return cls(m=m, n=n, r=r, **kwargs)

    @property
    def num_slots(self) -> int:
        return self.n * self.r

    # ------------------------------------------------------------------
    def ingress_of(self, slot: int):
        return switch(("in", slot // self.n))

    def egress_of(self, slot: int):
        return switch(("out", slot // self.n))

    def stages(self) -> list[list]:
        """Switch columns, left to right (used by the floorplanner)."""
        return [
            [switch(("in", i)) for i in range(self.r)],
            [switch(("mid", j)) for j in range(self.m)],
            [switch(("out", k)) for k in range(self.r)],
        ]

    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for t in range(self.num_slots):
            g.add_edge(term(t), self.ingress_of(t), kind="core")
            g.add_edge(self.egress_of(t), term(t), kind="core")
        for i in range(self.r):
            for j in range(self.m):
                g.add_edge(
                    switch(("in", i)), switch(("mid", j)), kind="net"
                )
        for j in range(self.m):
            for k in range(self.r):
                g.add_edge(
                    switch(("mid", j)), switch(("out", k)), kind="net"
                )
        return g

    def position(self, node) -> tuple[float, float]:
        height = float(self.num_slots)
        if node[0] == "term":
            return (0.0, float(node[1]))
        stage, idx = node[1]
        col = {"in": 1, "mid": 2, "out": 3}[stage]
        count = self.m if stage == "mid" else self.r
        y = (idx + 0.5) * height / count
        return (col * _STAGE_PITCH, y)

    # ------------------------------------------------------------------
    def quadrant_nodes(self, src_slot: int, dst_slot: int) -> set:
        """Trivial quadrant: ingress of source, all middles, egress of dest.

        Full inter-stage connectivity means every middle switch lies on a
        minimum path (Section 4.3: "quadrant graph formation for these
        networks is trivial").
        """
        nodes = {self.ingress_of(src_slot), self.egress_of(dst_slot)}
        nodes.update(switch(("mid", j)) for j in range(self.m))
        nodes.add(term(src_slot))
        nodes.add(term(dst_slot))
        return nodes
