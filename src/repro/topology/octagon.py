"""Octagon topology (extension; [6] F. Karim et al., DAC 2001).

Eight switches arranged in a ring with four cross links between opposite
nodes, giving a maximum of two network hops (three switches) between any
pair. The paper lists the octagon as an example of a topology that "can
be easily added to the topology library" — this module is that addition.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term

#: Placement of the eight octagon nodes on a 3x3 grid perimeter.
_RING_POSITIONS = [
    (0.0, 0.0),
    (1.0, 0.0),
    (2.0, 0.0),
    (2.0, 1.0),
    (2.0, 2.0),
    (1.0, 2.0),
    (0.0, 2.0),
    (0.0, 1.0),
]


class OctagonTopology(Topology):
    """Single octagon: 8 slots, ring + cross links."""

    kind = "direct"

    NUM_NODES = 8

    def __init__(self, name: str | None = None):
        super().__init__(name or "octagon")

    @classmethod
    def for_cores(cls, n_cores: int, **kwargs) -> "OctagonTopology":
        if n_cores < 2:
            raise TopologyError("need at least 2 cores")
        if n_cores > cls.NUM_NODES:
            raise TopologyError(
                f"a single octagon hosts at most {cls.NUM_NODES} cores"
            )
        return cls(**kwargs)

    @property
    def num_slots(self) -> int:
        return self.NUM_NODES

    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for i in range(self.NUM_NODES):
            g.add_edge(term(i), switch(i), kind="core")
            g.add_edge(switch(i), term(i), kind="core")
        pairs = [(i, (i + 1) % self.NUM_NODES) for i in range(self.NUM_NODES)]
        pairs += [(i, i + 4) for i in range(4)]  # cross links
        for i, j in pairs:
            g.add_edge(switch(i), switch(j), kind="net")
            g.add_edge(switch(j), switch(i), kind="net")
        return g

    def position(self, node) -> tuple[float, float]:
        return _RING_POSITIONS[node[1]]
