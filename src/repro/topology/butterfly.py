"""Butterfly topology — k-ary n-fly (Figure 2(b) of the paper).

A k-ary n-fly has ``k**n`` terminal slots served by *n* stages of
``k**(n-1)`` switches of radix *k*. Terminals inject on the left of stage
0 and eject on the right of stage n-1 (a unidirectional multistage
network), so every route traverses exactly *n* switches.

Wiring follows the classic distance-halving pattern: output port *p* of
switch *j* in stage *s* connects to the stage *s+1* switch whose base-k
label equals *j* with digit ``n-2-s`` replaced by *p*. Destination-tag
routing (choose digit ``n-1-s`` of the destination at stage *s*) then
yields the network's **unique** path between any terminal pair — the
absence of path diversity that disqualifies the butterfly for MPEG4
(Section 6.1).

Default sizing for *N* cores is a 2-stage fly with radix
``k = ceil(sqrt(N))``: the paper's 4-ary 2-fly for the 12-core VOPD and
the 3x3-switch network of the 6-core DSP filter (Figure 10(b)).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology, switch, term

_STAGE_PITCH = 1.5


class ButterflyTopology(Topology):
    """k-ary n-fly butterfly network."""

    kind = "indirect"

    def __init__(self, k: int, n: int, name: str | None = None):
        if k < 2:
            raise TopologyError("butterfly radix must be >= 2")
        if n < 1:
            raise TopologyError("butterfly needs at least one stage")
        self.k = k
        self.n = n
        super().__init__(name or f"butterfly-{k}ary{n}fly")

    @classmethod
    def for_cores(cls, n_cores: int, **kwargs) -> "ButterflyTopology":
        """Two-stage fly with the smallest radix covering ``n_cores``."""
        if n_cores < 2:
            raise TopologyError("need at least 2 cores")
        k = max(2, math.ceil(math.sqrt(n_cores)))
        return cls(k=k, n=2, **kwargs)

    @property
    def num_slots(self) -> int:
        return self.k**self.n

    @property
    def switches_per_stage(self) -> int:
        return self.k ** (self.n - 1)

    def stages(self) -> list[list]:
        """Switch columns, left to right (used by the floorplanner)."""
        return [
            [switch((s, j)) for j in range(self.switches_per_stage)]
            for s in range(self.n)
        ]

    # ------------------------------------------------------------------
    def _digit(self, x: int, i: int) -> int:
        return (x // self.k**i) % self.k

    def _replace_digit(self, x: int, i: int, p: int) -> int:
        return x + (p - self._digit(x, i)) * self.k**i

    def _next_switch(self, stage: int, label: int, port: int) -> int:
        """Stage ``stage+1`` switch reached from output ``port``."""
        return self._replace_digit(label, self.n - 2 - stage, port)

    def _build(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for t in range(self.num_slots):
            g.add_edge(term(t), switch((0, t // self.k)), kind="core")
            g.add_edge(switch((self.n - 1, t // self.k)), term(t), kind="core")
        for s in range(self.n - 1):
            for j in range(self.switches_per_stage):
                for p in range(self.k):
                    g.add_edge(
                        switch((s, j)),
                        switch((s + 1, self._next_switch(s, j, p))),
                        kind="net",
                    )
        return g

    def position(self, node) -> tuple[float, float]:
        if node[0] == "term":
            t = node[1]
            group = t // self.k
            left = group < (self.switches_per_stage + 1) // 2
            x = 0.0 if left else (self.n + 1) * _STAGE_PITCH
            return (x, float(t))
        s, j = node[1]
        return ((s + 1) * _STAGE_PITCH, (j + 0.5) * self.k)

    # ------------------------------------------------------------------
    def unique_path(self, src_slot: int, dst_slot: int) -> list:
        """The single route between two terminals (destination-tag)."""
        path = [term(src_slot), switch((0, src_slot // self.k))]
        label = src_slot // self.k
        for s in range(self.n - 1):
            port = self._digit(dst_slot, self.n - 1 - s)
            label = self._next_switch(s, label, port)
            path.append(switch((s + 1, label)))
        path.append(term(dst_slot))
        return path

    def quadrant_nodes(self, src_slot: int, dst_slot: int) -> set:
        """The unique path — a butterfly offers no path diversity."""
        return set(self.unique_path(src_slot, dst_slot))

    def dor_path(self, src_slot: int, dst_slot: int) -> list:
        """Destination-tag routing *is* dimension-ordered on a fly."""
        return self.unique_path(src_slot, dst_slot)
