"""The three-phase SUNMAP flow (Figure 4).

``run_sunmap`` drives the whole tool exactly as the paper describes:

1. **Mapping**: for a chosen routing function and objective, map the
   application onto every topology in the library, checking bandwidth
   and area constraints with floorplan-backed estimates;
2. **Selection**: compare the feasible mappings and choose the best
   topology. If no topology is feasible under the requested routing
   (MPEG4 under minimum-path, Section 6.1), the flow falls back to the
   next routing function in ``routing_fallbacks`` — "So we apply
   multi-path routing, splitting the traffic across many paths";
3. **Generation**: build the xpipes netlist of the winner and emit its
   SystemC description.

An optional fourth phase closes the loop the way the paper's Section 6
experiments do: pass ``simulate=`` a
:class:`~repro.simulation.campaign.CampaignConfig` (or ``True`` for the
defaults) and the winner is validated by a flit-level simulation
campaign — injection-rate sweeps across traffic patterns, with latency–
throughput curves and saturation points attached to the report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import MappingEvaluation
from repro.core.mapper import MapperConfig
from repro.core.selector import SelectionResult, select_topology
from repro.engine.engine import ExplorationEngine
from repro.errors import MappingInfeasibleError
from repro.obs import recorder as obs_recorder
from repro.physical.estimate import NetworkEstimator
from repro.simulation.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)
from repro.topology.base import Topology
from repro.xpipes.generator import generate_systemc
from repro.xpipes.netlist import Netlist, build_netlist

#: Routing escalation order: deterministic first, then splitting.
DEFAULT_ROUTING_FALLBACKS = ("SM", "SA")


@dataclass
class SunmapReport:
    """Everything the flow produced."""

    application: str
    selection: SelectionResult
    attempted_routings: list[str]
    netlist: Netlist | None = None
    systemc: str | None = None
    campaign: CampaignResult | None = None
    #: Flight-recorder report (spans + metric deltas) when the flow ran
    #: with ``observability=True``; never part of result fingerprints.
    observability: dict | None = None

    @property
    def best(self) -> MappingEvaluation | None:
        return self.selection.best

    @property
    def best_topology_name(self) -> str | None:
        return self.selection.best_name

    def summary(self) -> str:
        lines = [
            f"application: {self.application}",
            f"objective:   {self.selection.objective_name}",
            f"routing:     {self.selection.routing_code} "
            f"(attempted: {', '.join(self.attempted_routings)})",
            self.selection.format_table(),
        ]
        best = self.best
        if best is None:
            lines.append("result: NO FEASIBLE TOPOLOGY")
        else:
            lines.append(
                f"result: {self.best_topology_name} selected "
                f"(cost {best.cost:.3f})"
            )
            if self.netlist is not None:
                lines.append(
                    f"generated: {len(self.netlist.switches)} switches, "
                    f"{len(self.netlist.nis)} NIs, "
                    f"{len(self.netlist.links)} links"
                )
        if self.campaign is not None:
            lines.append(self.campaign.summary())
        return "\n".join(lines)


def run_sunmap(
    core_graph: CoreGraph,
    routing: str = "MP",
    objective: str = "hops",
    constraints: Constraints | None = None,
    topologies: list[Topology] | None = None,
    config: MapperConfig | None = None,
    estimator: NetworkEstimator | None = None,
    generate: bool = True,
    simulate: CampaignConfig | bool = False,
    routing_fallbacks: tuple[str, ...] = DEFAULT_ROUTING_FALLBACKS,
    jobs: int = 1,
    engine: ExplorationEngine | None = None,
    synthesize=None,
    cache_backend=None,
    journal=None,
    observability: bool = False,
) -> SunmapReport:
    """Run the full SUNMAP flow on an application.

    Args:
        routing: first routing function to try (paper code DO/MP/SM/SA).
        routing_fallbacks: escalation sequence when nothing is feasible.
        generate: emit the winner's netlist and SystemC (phase 3).
        synthesize: race automatically synthesized custom fabrics
            against the library (a
            :class:`~repro.synthesis.SynthesisConfig` or ``True`` for
            the defaults). Synthesized winners flow through generation
            and simulation exactly like library ones; each routing
            escalation step re-evaluates the candidates under its code.
        simulate: validate the winner with a flit-level simulation
            campaign (phase 4): pass a
            :class:`~repro.simulation.campaign.CampaignConfig`, or
            ``True`` for the default sweep. The campaign runs on the
            winner's topology and mapping under the application trace
            plus synthetic patterns, and lands in ``report.campaign``.
            Pass a config with ``sim_engine="batch"`` to route the
            sweep through the vectorized batch kernel (statistically
            equivalent curves, much faster).
        jobs: parallel worker processes for the selection and simulation
            phases (1 = serial); the report is identical regardless of
            ``jobs``.
        cache_backend: persistent evaluation-cache storage (a
            :func:`~repro.engine.backends.make_backend` spec such as
            ``"sqlite:evals.db"``) for the engine built when ``engine``
            is not given; warm results skip evaluation, bit-identically.
        engine: explicit exploration engine (overrides ``jobs``); its
            evaluation cache is reused by any further calls made with
            the same engine (each fallback attempt uses a different
            routing code, so escalation itself never hits the cache).
        journal: optional :class:`~repro.engine.journal.RunJournal`
            shared by every phase of the flow — completed evaluations
            and simulation points are appended as they finish and
            replay bit-identically when the same flow resumes.
        observability: record the flow with a
            :class:`~repro.obs.recorder.FlightRecorder` and attach the
            resulting report dict (spans, metric deltas, environment)
            as ``report.observability``. Purely passive: the selection,
            netlist, and campaign payloads are bit-identical either
            way.

    Raises:
        ValueError: when ``topologies`` is an empty list — an empty
            library can never produce a selection.
        MappingInfeasibleError: when no topology is feasible under any
            attempted routing function.
    """
    if observability:
        with obs_recorder.FlightRecorder(
            label=f"sunmap:{core_graph.name}"
        ) as recorder:
            report = _run_flow(
                core_graph, routing, objective, constraints, topologies,
                config, estimator, generate, simulate, routing_fallbacks,
                jobs, engine, synthesize, cache_backend, journal,
            )
        report.observability = recorder.report.to_dict()
        return report
    return _run_flow(
        core_graph, routing, objective, constraints, topologies, config,
        estimator, generate, simulate, routing_fallbacks, jobs, engine,
        synthesize, cache_backend, journal,
    )


def _run_flow(
    core_graph: CoreGraph,
    routing: str,
    objective: str,
    constraints: Constraints | None,
    topologies: list[Topology] | None,
    config: MapperConfig | None,
    estimator: NetworkEstimator | None,
    generate: bool,
    simulate: CampaignConfig | bool,
    routing_fallbacks: tuple[str, ...],
    jobs: int,
    engine: ExplorationEngine | None,
    synthesize,
    cache_backend,
    journal,
) -> SunmapReport:
    """Body of :func:`run_sunmap`, optionally under a flight recorder."""
    if topologies is not None:
        topologies = list(topologies)
        if not topologies:
            raise ValueError(
                "run_sunmap received an empty topologies list; pass None "
                "for the standard library or at least one topology "
                "instance"
            )
    estimator = estimator or NetworkEstimator()
    if engine is None:
        engine = ExplorationEngine(
            jobs=jobs, cache_backend=cache_backend, journal=journal
        )
    elif journal is not None and engine.journal is None:
        engine.journal = journal
    attempted: list[str] = []
    selection: SelectionResult | None = None
    for code in (routing, *[c for c in routing_fallbacks if c != routing]):
        attempted.append(code)
        selection = select_topology(
            core_graph,
            topologies=topologies,
            routing=code,
            objective=objective,
            constraints=constraints,
            estimator=estimator,
            config=config,
            engine=engine,
            synthesize=synthesize,
        )
        if selection.best is not None:
            break

    report = SunmapReport(
        application=core_graph.name,
        selection=selection,
        attempted_routings=attempted,
    )
    best = selection.best
    if best is None:
        if generate:
            raise MappingInfeasibleError(
                f"{core_graph.name}: no feasible topology under any of "
                f"{attempted}"
            )
        return report

    if generate:
        lengths = (
            best.floorplan.link_lengths(best.topology, best.assignment)
            if best.floorplan is not None
            else None
        )
        used = estimator.used_switches(best.topology, best.routing_result)
        report.netlist = build_netlist(
            core_graph,
            best.topology,
            best.assignment,
            lengths_mm=lengths,
            used_switches=used,
            tech=estimator.tech,
        )
        report.systemc = generate_systemc(report.netlist, best.topology)

    if simulate:
        campaign_config = (
            simulate if isinstance(simulate, CampaignConfig) else None
        )
        report.campaign = run_campaign(
            best.topology,
            core_graph=core_graph,
            assignment=best.assignment,
            config=campaign_config,
            engine=engine,
        )
    return report
