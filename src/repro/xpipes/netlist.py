"""Netlist construction: from a mapped topology to xpipes instances.

The netlist is the bridge between SUNMAP's abstract result (topology +
mapping + floorplan) and the generated SystemC: one switch instance per
(used) switch, one network interface per core, one pipelined link per
topology edge between instantiated endpoints.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field

from repro.core.coregraph import CoreGraph
from repro.errors import GenerationError
from repro.physical.technology import TECH_100NM, Technology
from repro.topology.base import Topology, term
from repro.xpipes.components import (
    LinkSpec,
    NISpec,
    SwitchSpec,
    pipeline_stages_for_length,
)


def _sanitize(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", text)


@dataclass
class Netlist:
    """A complete xpipes design."""

    design_name: str
    switches: list[SwitchSpec] = field(default_factory=list)
    nis: list[NISpec] = field(default_factory=list)
    links: list[LinkSpec] = field(default_factory=list)
    #: topology-graph node -> instance name
    node_instance: dict = field(default_factory=dict)

    @property
    def num_instances(self) -> int:
        return len(self.switches) + len(self.nis)

    def instance_ports(self) -> dict[str, tuple[int, int]]:
        """Declared (in, out) port counts per instance."""
        ports = {s.instance: (s.n_in, s.n_out) for s in self.switches}
        ports.update({ni.instance: (1, 1) for ni in self.nis})
        return ports

    def validate(self) -> None:
        """Structural consistency: ports exist and are used at most once."""
        ports = self.instance_ports()
        used_in: set[tuple[str, int]] = set()
        used_out: set[tuple[str, int]] = set()
        for link in self.links:
            if link.src_instance not in ports:
                raise GenerationError(f"{link.instance}: unknown source")
            if link.dst_instance not in ports:
                raise GenerationError(f"{link.instance}: unknown sink")
            if not 0 <= link.src_port < ports[link.src_instance][1]:
                raise GenerationError(f"{link.instance}: bad source port")
            if not 0 <= link.dst_port < ports[link.dst_instance][0]:
                raise GenerationError(f"{link.instance}: bad sink port")
            okey = (link.src_instance, link.src_port)
            ikey = (link.dst_instance, link.dst_port)
            if okey in used_out:
                raise GenerationError(f"output port reused: {okey}")
            if ikey in used_in:
                raise GenerationError(f"input port reused: {ikey}")
            used_out.add(okey)
            used_in.add(ikey)
        names = [s.instance for s in self.switches] + [n.instance for n in self.nis]
        if len(set(names)) != len(names):
            raise GenerationError("duplicate instance names")

    def to_json(self) -> str:
        payload = {
            "design": self.design_name,
            "switches": [asdict(s) for s in self.switches],
            "network_interfaces": [asdict(n) for n in self.nis],
            "links": [asdict(link) for link in self.links],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def build_netlist(
    core_graph: CoreGraph,
    topology: Topology,
    assignment: dict[int, int],
    lengths_mm: dict | None = None,
    used_switches: set | None = None,
    tech: Technology = TECH_100NM,
    design_name: str | None = None,
) -> Netlist:
    """Instantiate the chosen network (Figure 4, phase 3).

    Args:
        assignment: core index -> terminal slot.
        lengths_mm: floorplanned link lengths (drives link pipelining);
            nominal lengths are used when absent.
        used_switches: optional pruning set for multistage topologies.
    """
    netlist = Netlist(design_name or f"{core_graph.name}_{topology.name}")

    switches = topology.switches
    if used_switches is not None:
        switches = [sw for sw in switches if sw in used_switches]

    for sw in sorted(switches, key=repr):
        n_in, n_out = topology.switch_ports(sw)
        name = f"sw_{_sanitize(str(sw[1]))}"
        netlist.switches.append(
            SwitchSpec(
                instance=name,
                n_in=n_in,
                n_out=n_out,
                flit_width_bits=tech.flit_width_bits,
                buffer_depth_flits=tech.buffer_depth_flits,
            )
        )
        netlist.node_instance[sw] = name

    for core_index, slot in sorted(assignment.items()):
        core = core_graph.core(core_index)
        name = f"ni_{_sanitize(core.name)}"
        netlist.nis.append(
            NISpec(
                instance=name,
                core_name=core.name,
                flit_width_bits=tech.flit_width_bits,
            )
        )
        netlist.node_instance[term(slot)] = name

    # Port numbering: stable sort of each switch's graph edges. A fat
    # link (``mult`` channels) reserves one port per physical channel.
    edge_data = topology.graph.edges
    in_port: dict[tuple, int] = {}
    out_port: dict[tuple, int] = {}
    for sw in switches:
        idx = 0
        for u, v in sorted(topology.graph.in_edges(sw), key=repr):
            in_port[(u, v)] = idx
            idx += int(edge_data[u, v].get("mult", 1))
        idx = 0
        for u, v in sorted(topology.graph.out_edges(sw), key=repr):
            out_port[(u, v)] = idx
            idx += int(edge_data[u, v].get("mult", 1))

    link_id = 0
    for u, v, data in sorted(topology.graph.edges(data=True), key=repr):
        src = netlist.node_instance.get(u)
        dst = netlist.node_instance.get(v)
        if src is None or dst is None:
            continue  # unmapped terminal or pruned switch
        if lengths_mm is not None and (u, v) in lengths_mm:
            length = lengths_mm[(u, v)]
        else:
            length = data["length"]
        # One pipelined link instance per physical channel.
        for channel in range(int(data.get("mult", 1))):
            netlist.links.append(
                LinkSpec(
                    instance=f"link_{link_id}",
                    src_instance=src,
                    src_port=out_port.get((u, v), 0) + channel,
                    dst_instance=dst,
                    dst_port=in_port.get((u, v), 0) + channel,
                    flit_width_bits=tech.flit_width_bits,
                    length_mm=round(float(length), 3),
                    pipeline_stages=pipeline_stages_for_length(float(length)),
                )
            )
            link_id += 1

    netlist.validate()
    return netlist
