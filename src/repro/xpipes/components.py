"""xpipes-style component specifications (paper Section 3, [17], [18]).

SUNMAP's third phase instantiates the chosen network from a library of
composable SystemC soft macros: switches, network interfaces and links.
These dataclasses are the parameterization of those macros; the netlist
builder decides how many of each a design needs and the generator emits
the SystemC text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GenerationError


@dataclass(frozen=True)
class SwitchSpec:
    """One switch soft-macro instantiation."""

    instance: str
    n_in: int
    n_out: int
    flit_width_bits: int
    buffer_depth_flits: int

    def __post_init__(self):
        if self.n_in < 1 or self.n_out < 1:
            raise GenerationError(f"switch {self.instance}: bad port count")

    @property
    def module(self) -> str:
        return f"xpipes_switch_{self.n_in}x{self.n_out}"


@dataclass(frozen=True)
class NISpec:
    """Network interface between a core and its switch(es).

    ``target_port`` / ``initiator_port`` carry OCP-style semantics: the
    initiator side issues transactions into the network, the target side
    receives them.
    """

    instance: str
    core_name: str
    flit_width_bits: int

    @property
    def module(self) -> str:
        return "xpipes_network_interface"


@dataclass(frozen=True)
class LinkSpec:
    """One pipelined point-to-point link."""

    instance: str
    src_instance: str
    src_port: int
    dst_instance: str
    dst_port: int
    flit_width_bits: int
    length_mm: float
    pipeline_stages: int

    @property
    def module(self) -> str:
        return f"xpipes_link_p{self.pipeline_stages}"


def pipeline_stages_for_length(length_mm: float, mm_per_stage: float = 2.0) -> int:
    """xpipes links are pipelined to match wire delay: one repeater
    stage per ``mm_per_stage`` of floorplanned length (latency
    insensitivity is the xpipes architecture's defining feature)."""
    if length_mm < 0:
        raise GenerationError("link length cannot be negative")
    return max(1, round(length_mm / mm_per_stage + 0.5))
