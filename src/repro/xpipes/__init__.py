"""xpipes network generation (paper phase 3, [17] and [18])."""

from repro.xpipes.components import (
    LinkSpec,
    NISpec,
    SwitchSpec,
    pipeline_stages_for_length,
)
from repro.xpipes.generator import generate_systemc, write_systemc
from repro.xpipes.netlist import Netlist, build_netlist

__all__ = [
    "SwitchSpec",
    "NISpec",
    "LinkSpec",
    "pipeline_stages_for_length",
    "Netlist",
    "build_netlist",
    "generate_systemc",
    "write_systemc",
]
