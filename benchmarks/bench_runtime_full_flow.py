"""Experiment tab-runtime — Section 6.4's runtime claim.

"For all these applications NoC selection and generation was obtained in
few minutes on a 1GHZ SUN workstation." This benchmark times the full
three-phase flow per application on the present machine (pytest-benchmark
reports the wall clock).
"""

import pytest
from conftest import BENCH_CONFIG, write_artifact

from repro.core.constraints import Constraints
from repro.sunmap import run_sunmap

CASES = {
    "vopd": ("MP", Constraints()),
    "mpeg4": ("SM", Constraints()),
    "dsp": ("MP", Constraints(link_capacity_mb_s=1000.0)),
}


@pytest.mark.parametrize("app_name", sorted(CASES))
def test_runtime_full_flow(benchmark, app_name, request):
    app = request.getfixturevalue(f"{app_name}_app")
    routing, constraints = CASES[app_name]

    report = benchmark.pedantic(
        lambda: run_sunmap(
            app, routing=routing, objective="hops",
            constraints=constraints, config=BENCH_CONFIG,
        ),
        rounds=1,
        iterations=1,
    )
    assert report.best is not None
    write_artifact(
        f"runtime_{app_name}",
        f"{app_name}: best={report.best_topology_name} "
        f"routing={report.selection.routing_code} "
        f"(paper: 'few minutes' on a 1 GHz SUN workstation)",
    )
