"""Experiment fig3d — Figure 3(d): VOPD mesh vs torus design parameters.

Paper values: avg hops mesh 2.25 / torus 2.03 (ratio 0.9); design area
54.59 / 57.91 mm² (ratio 1.06); design power 372.1 / 454.9 mW (ratio
1.22). Expected shape: torus trades lower delay for more area and power.
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.mapper import map_onto
from repro.topology.library import make_topology

PAPER = {
    "mesh": {"hops": 2.25, "area": 54.59, "power": 372.1},
    "torus": {"hops": 2.03, "area": 57.91, "power": 454.9},
}


def run_experiment(vopd_app):
    rows = {}
    for name in ("mesh", "torus"):
        topo = make_topology(name, vopd_app.num_cores)
        rows[name] = map_onto(
            vopd_app, topo, routing="MP", objective="hops",
            config=BENCH_CONFIG,
        )
    return rows


def test_fig3d_vopd_mesh_vs_torus(benchmark, vopd_app):
    rows = once(benchmark, lambda: run_experiment(vopd_app))
    mesh, torus = rows["mesh"], rows["torus"]

    lines = [
        f"{'metric':<14}{'mesh':>10}{'torus':>10}{'tor/mesh':>10}"
        f"{'paper ratio':>12}",
    ]
    for label, m, t, paper_ratio in (
        ("avg hops", mesh.avg_hops, torus.avg_hops,
         PAPER["torus"]["hops"] / PAPER["mesh"]["hops"]),
        ("area mm2", mesh.area_mm2, torus.area_mm2,
         PAPER["torus"]["area"] / PAPER["mesh"]["area"]),
        ("power mW", mesh.power_mw, torus.power_mw,
         PAPER["torus"]["power"] / PAPER["mesh"]["power"]),
    ):
        lines.append(
            f"{label:<14}{m:>10.2f}{t:>10.2f}{t / m:>10.3f}"
            f"{paper_ratio:>12.3f}"
        )
    write_artifact("fig3d_vopd_mesh_torus", "\n".join(lines))

    # Shape assertions (paper Figure 3(d)).
    assert mesh.feasible and torus.feasible
    assert torus.avg_hops <= mesh.avg_hops  # torus delay win (~10%)
    assert 0.85 <= torus.avg_hops / mesh.avg_hops <= 1.0
    assert torus.area_mm2 > mesh.area_mm2  # mesh area win
    assert 1.0 < torus.area_mm2 / mesh.area_mm2 < 1.25
    assert torus.power_mw > mesh.power_mw  # mesh power win
    assert 1.02 < torus.power_mw / mesh.power_mw < 1.6
