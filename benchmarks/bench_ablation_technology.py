"""Experiment abl-tech — area-power libraries across technology nodes.

Section 5: "The area-power models are used to generate area-power
libraries for various switch configurations for different technology
parameters." We regenerate the VOPD mesh design point at 130 nm, 100 nm
(the paper's node) and 65 nm via constant-field scaling and check the
expected monotonicity: smaller nodes shrink both area and power while
leaving the topology ranking untouched.
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.mapper import map_onto
from repro.physical.estimate import NetworkEstimator
from repro.physical.technology import scaled_technology
from repro.topology.library import make_topology

NODES_UM = (0.13, 0.10, 0.065)


def run_experiment(vopd_app):
    rows = {}
    for feature in NODES_UM:
        estimator = NetworkEstimator(scaled_technology(feature))
        evs = {}
        for topo_name in ("mesh", "butterfly"):
            topo = make_topology(topo_name, vopd_app.num_cores)
            evs[topo_name] = map_onto(
                vopd_app, topo, routing="MP", objective="hops",
                estimator=estimator, config=BENCH_CONFIG,
            )
        rows[feature] = evs
    return rows


def test_ablation_technology_scaling(benchmark, vopd_app):
    rows = once(benchmark, lambda: run_experiment(vopd_app))

    lines = [
        f"{'node':<8}{'mesh area':>10}{'mesh mW':>9}{'bfly area':>10}"
        f"{'bfly mW':>9}"
    ]
    for feature in NODES_UM:
        evs = rows[feature]
        lines.append(
            f"{int(feature * 1000):>4} nm"
            f"{evs['mesh'].area_mm2:>12.2f}{evs['mesh'].power_mw:>9.1f}"
            f"{evs['butterfly'].area_mm2:>10.2f}"
            f"{evs['butterfly'].power_mw:>9.1f}"
        )
    write_artifact("ablation_technology", "\n".join(lines))

    # Monotone shrink of network power with feature size; the butterfly
    # stays the winner at every node.
    for topo_name in ("mesh", "butterfly"):
        powers = [rows[f][topo_name].power_mw for f in NODES_UM]
        assert powers == sorted(powers, reverse=True)
    for feature in NODES_UM:
        assert (
            rows[feature]["butterfly"].power_mw
            < rows[feature]["mesh"].power_mw
        )
        assert (
            rows[feature]["butterfly"].area_mm2
            < rows[feature]["mesh"].area_mm2
        )
