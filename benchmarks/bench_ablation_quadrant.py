"""Experiment abl-quadrant — Section 4.1's computational-saving claim.

"As the minimum-path computations are performed on the quadrant graph
instead of the entire NoC graph, large computational time savings is
achieved." We route the same commodity set over a 64-node mesh with and
without quadrant restriction and compare (a) wall time via
pytest-benchmark and (b) that the resulting hop counts are identical
(the quadrant loses no quality).
"""

import time

from conftest import once, write_artifact

from repro.apps.synthetic import random_core_graph
from repro.core.greedy import initial_greedy_mapping
from repro.routing.minimum_path import MinimumPathRouting
from repro.topology.library import make_topology


def setup_case():
    app = random_core_graph(48, n_flows=120, seed=42)
    topo = make_topology("mesh", 64)
    assignment = initial_greedy_mapping(app, topo)
    return app, topo, assignment


def test_ablation_quadrant_speedup(benchmark):
    app, topo, assignment = setup_case()
    commodities = app.commodities()

    with_quadrant = MinimumPathRouting(use_quadrant=True)
    without_quadrant = MinimumPathRouting(use_quadrant=False)

    def routed_hops(routing):
        result = routing.route_all(topo, assignment, commodities)
        return result.weighted_average_hops()

    # Timed subject: quadrant-restricted routing.
    hops_quad = once(benchmark, lambda: routed_hops(with_quadrant))

    t0 = time.perf_counter()
    hops_full = routed_hops(without_quadrant)
    t_full = time.perf_counter() - t0
    t0 = time.perf_counter()
    routed_hops(with_quadrant)
    t_quad = time.perf_counter() - t0

    speedup = t_full / max(t_quad, 1e-9)
    write_artifact(
        "ablation_quadrant",
        f"8x8 mesh, 48 cores, 120 commodities\n"
        f"whole-graph search: {t_full * 1000:8.1f} ms\n"
        f"quadrant search:    {t_quad * 1000:8.1f} ms\n"
        f"speedup:            {speedup:8.2f}x\n"
        f"avg hops (quadrant) {hops_quad:.3f} == (full) {hops_full:.3f}",
    )

    # Quality is preserved and time is saved.
    assert hops_quad == hops_full
    assert speedup > 1.5
