"""Experiment fig6 — Figure 6: mapping characteristics of VOPD.

Four panels over the five-topology library under minimum-path routing:
(a) average hop delay — butterfly 2, Clos 3, others between;
(b) resource utilization — butterfly fewest switches but more links
    than the mesh;
(c) design area — butterfly least;
(d) design power — butterfly least ("large power savings").
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.selector import select_topology

PAPER_NOTE = (
    "paper: bfly hops=2 (min), clos hops=3; bfly least switches/area/"
    "power; torus > mesh on area & power"
)


def run_experiment(vopd_app):
    return select_topology(
        vopd_app, routing="MP", objective="hops", config=BENCH_CONFIG
    )


def test_fig6_vopd_characteristics(benchmark, vopd_app):
    selection = once(benchmark, lambda: run_experiment(vopd_app))
    evs = {n.split("-")[0]: ev for n, ev in selection.evaluations.items()}

    lines = [PAPER_NOTE, ""]
    lines.append(
        f"{'topology':<12}{'avg hops':>9}{'switches':>9}{'links':>7}"
        f"{'area mm2':>10}{'power mW':>10}{'feasible':>9}"
    )
    for name in ("mesh", "torus", "hypercube", "clos", "butterfly"):
        ev = evs[name]
        lines.append(
            f"{name:<12}{ev.avg_hops:>9.2f}{ev.resources.num_switches:>9}"
            f"{ev.resources.num_links:>7}{ev.area_mm2:>10.2f}"
            f"{ev.power_mw:>10.1f}{str(ev.feasible):>9}"
        )
    write_artifact("fig6_vopd_characteristics", "\n".join(lines))

    # (a) hop delay shape
    assert evs["butterfly"].avg_hops == 2.0
    assert evs["clos"].avg_hops == 3.0
    for name in ("mesh", "torus", "hypercube"):
        assert 2.0 <= evs[name].avg_hops < 3.0
    # (b) resources
    switch_counts = {n: e.resources.num_switches for n, e in evs.items()}
    assert switch_counts["butterfly"] == min(switch_counts.values())
    assert evs["butterfly"].resources.num_links > evs["mesh"].resources.num_links
    # (c) area: butterfly least
    areas = {n: e.area_mm2 for n, e in evs.items()}
    assert areas["butterfly"] == min(areas.values())
    # (d) power: butterfly least
    powers = {n: e.power_mw for n, e in evs.items()}
    assert powers["butterfly"] == min(powers.values())
    # selection: butterfly is the best topology for VOPD (Section 6.1)
    assert selection.best_name.startswith("butterfly")
