"""Experiment abl-buffers — simulator sensitivity to buffer depth.

A design-choice ablation for the simulation substrate: input-FIFO depth
versus average latency near saturation on the 16-node mesh. Deeper
buffers absorb burstiness and postpone saturation (with diminishing
returns), validating that the default depth (8 flits) sits on the flat
part of the curve.
"""

from conftest import once, write_artifact

from repro.simulation.network import SimConfig
from repro.simulation.stats import run_measurement
from repro.simulation.traffic import SyntheticTraffic
from repro.topology.library import make_topology

DEPTHS = (2, 4, 8, 16)
RATE = 0.3


def run_experiment():
    topo = make_topology("mesh", 16)
    results = {}
    for depth in DEPTHS:
        report = run_measurement(
            topo,
            SyntheticTraffic("bit_reverse", RATE, seed=7),
            config=SimConfig(buffer_depth_flits=depth, seed=1),
            warmup=500,
            measure=2500,
            drain=2000,
            active_slots=list(range(16)),
            offered_rate=RATE,
        )
        results[depth] = report
    return results


def test_ablation_buffer_depth(benchmark):
    results = once(benchmark, run_experiment)

    lines = [f"mesh 4x4, bit_reverse @ {RATE} flits/cycle/node"]
    lines.append(f"{'depth':>6}{'avg latency':>13}{'delivered':>11}")
    for depth in DEPTHS:
        rep = results[depth]
        lines.append(
            f"{depth:>6}{rep.avg_latency:>13.1f}"
            f"{rep.delivered_fraction * 100:>10.1f}%"
        )
    write_artifact("ablation_buffers", "\n".join(lines))

    # Deeper buffers never hurt latency at this operating point...
    assert results[16].avg_latency <= results[2].avg_latency
    # ...and the default depth (8) is within 25% of the deepest.
    assert results[8].avg_latency <= 1.25 * results[16].avg_latency
