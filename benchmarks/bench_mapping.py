"""Mapping-evaluation throughput benchmark with a committed trajectory.

Measures the two things the incremental delta-routing engine
(``repro/routing/incremental.py``) changes:

* **evals_per_sec** — mapping-evaluations/sec over a pairwise-swap
  candidate stream per app x topology x routing, comparing the
  from-scratch evaluator (``baseline``: ``memo.evaluate`` of each
  swapped assignment, the pre-engine code path) against the shipped
  delta path (``current``: ``memo.evaluate_swap``, which self-tunes
  between delta and from-scratch). Both are measured interleaved in the
  same process on the same candidates, and both produce bit-identical
  evaluations (asserted while measuring).
* **full_flow** — wall-clock seconds of the complete ``run_sunmap``
  selection flow per benchmark application, with the swap search forced
  from-scratch (``MapperConfig(incremental=False)``) vs the default
  incremental path.

Results land in ``BENCH_mapping.json`` at the repo root, recorded
honestly like ``BENCH_kernel.json``: per-case numbers, geomeans (overall
and MP/SM-only), and a ``notes`` field stating where the delta engine
wins and where the exact Δ of a swap is genuinely most of the work.

The case matrix spans the paper's benchmark applications (small, dense
— every core carries several flows, so a swap's exact Δ covers a third
of the commodity sequence) and synthetic scale points from
``repro.apps.synthetic`` (the regime the ROADMAP's production-scale
ambitions target, where swaps stay local and splicing pays).

Usage::

    python benchmarks/bench_mapping.py            # full run, rewrites current
    python benchmarks/bench_mapping.py --smoke    # reduced budget (CI)
    python benchmarks/bench_mapping.py --smoke --check
        # exit 1 if evals/sec regressed > 30% vs the committed current

``--check`` compares freshly measured current-path evals/sec against the
committed ``current`` section *before* rewriting it, normalized by the
recorded machine-speed calibration, so an engine regression fails CI
while machine-to-machine variance does not.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from itertools import combinations
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_kernel import _calibrate, _geomean  # noqa: E402

from repro.apps import load_application  # noqa: E402
from repro.apps.synthetic import random_core_graph  # noqa: E402
from repro.core.constraints import Constraints  # noqa: E402
from repro.core.evaluate import evaluate_mapping  # noqa: E402
from repro.core.greedy import initial_greedy_mapping  # noqa: E402
from repro.core.mapper import MapperConfig  # noqa: E402
from repro.core.memo import MemoizedMappingEvaluator  # noqa: E402
from repro.physical.estimate import NetworkEstimator  # noqa: E402
from repro.routing.incremental import swap_assignment  # noqa: E402
from repro.routing.library import make_routing  # noqa: E402
from repro.sunmap import run_sunmap  # noqa: E402
from repro.topology.library import make_topology  # noqa: E402

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_mapping.json"

#: Acceptable evals/sec ratio vs the committed numbers before --check
#: fails (a >30% regression), after machine-speed normalization.
MIN_CHECK_RATIO = 0.7

#: Honest context for readers of the committed record.
NOTES = (
    "baseline = from-scratch evaluation of every swap candidate (the "
    "pre-engine path, still selectable via MapperConfig(incremental="
    "False)); current = the shipped evaluate_swap delta path, which "
    "self-tunes between delta and from-scratch per context. Both are "
    "bit-identical (asserted during measurement). The delta engine wins "
    "where routing decisions are load-independent (DO everywhere; "
    "butterfly, unique-quadrant pairs) and on large sparse apps where a "
    "swap's ripple stays local; on the small dense paper apps with "
    "congestion-coupled MP/SM routing the exact delta of a swap "
    "genuinely re-routes ~1/3 of the commodities (measured ground "
    "truth) and throughput stays near parity — the adaptive layer caps "
    "the downside at the probe cadence. The issue's 3x MP/SM target is "
    "not reachable bit-identically on the paper apps; the geomeans "
    "below record what is."
)


def _app(name: str):
    if name.startswith("syn"):
        cores = int(name[3:])
        return random_core_graph(cores, seed=5)
    return load_application(name)


#: (case label, app, topology, routing); label encodes app-topo-routing.
EVAL_CASES = [
    ("vopd-mesh-MP", "vopd", "mesh", "MP"),
    ("vopd-torus-MP", "vopd", "torus", "MP"),
    ("vopd-mesh-SM", "vopd", "mesh", "SM"),
    ("mpeg4-mesh-SM", "mpeg4", "mesh", "SM"),
    ("mpeg4-torus-SM", "mpeg4", "torus", "SM"),
    ("dsp-mesh-MP", "dsp", "mesh", "MP"),
    ("vopd-mesh-DO", "vopd", "mesh", "DO"),
    ("syn32-mesh-MP", "syn32", "mesh", "MP"),
    ("syn32-torus-MP", "syn32", "torus", "MP"),
    ("syn32-mesh-SM", "syn32", "mesh", "SM"),
    ("syn32-torus-SM", "syn32", "torus", "SM"),
    ("syn32-mesh-DO", "syn32", "mesh", "DO"),
    ("syn48-mesh-MP", "syn48", "mesh", "MP"),
    ("syn48-torus-MP", "syn48", "torus", "MP"),
    ("syn48-mesh-DO", "syn48", "mesh", "DO"),
]

SMOKE_EVAL_CASES = ["vopd-mesh-MP", "mpeg4-mesh-SM", "syn32-mesh-DO"]

FLOW_CASES = [
    # app, routing, link capacity (None = paper default)
    ("vopd", "MP", None),
    ("mpeg4", "SM", None),
    ("dsp", "MP", 1000.0),
]


def _candidates(base: dict, num_slots: int, limit: int) -> list:
    occupied = sorted(base.values())
    free = sorted(set(range(num_slots)) - set(occupied))
    cands = list(combinations(occupied, 2))
    cands += [(s, f) for s in occupied for f in free]
    return cands[:limit]


def measure_evals(
    app_name: str,
    topo_name: str,
    code: str,
    reps: int,
    limit: int,
) -> tuple[float, float]:
    """(baseline, current) evaluations/sec over one swap stream.

    Old and new are timed interleaved (old round, new round, repeat;
    best-of-reps each) on the identical candidate list, with fresh memo
    instances per round so neither side benefits from exact-hit
    caching. One verification pass asserts the two paths agree
    float-exactly before any timing is recorded.
    """
    app = _app(app_name)
    topology = make_topology(topo_name, app.num_cores)
    routing = make_routing(code)
    constraints = Constraints()
    estimator = NetworkEstimator()
    base = initial_greedy_mapping(app, topology)
    cands = _candidates(base, topology.num_slots, limit)

    # Warm topology-resident caches + verify bit-identity on a sample.
    # The verification memo is pinned to the delta engine — adaptively
    # it would serve small MP/SM cases from-scratch and the assertion
    # would compare evaluate_mapping with itself.
    memo = MemoizedMappingEvaluator(
        app, topology, routing, constraints, estimator
    )
    memo._delta_mode = True
    memo._probes_left = 0
    for s1, s2 in cands[: min(8, len(cands))]:
        new_ev = memo.evaluate_swap(base, s1, s2, with_floorplan=False)
        ref = evaluate_mapping(
            app, topology, swap_assignment(base, s1, s2), routing,
            constraints, estimator=estimator, with_floorplan=False,
        )
        assert new_ev.avg_hops == ref.avg_hops
        assert new_ev.power_mw == ref.power_mw
        assert new_ev.max_link_load == ref.max_link_load

    t_old = t_new = math.inf
    for _ in range(reps):
        memo = MemoizedMappingEvaluator(
            app, topology, routing, constraints, estimator
        )
        start = time.perf_counter()
        for s1, s2 in cands:
            memo.evaluate(
                swap_assignment(base, s1, s2), with_floorplan=False
            )
        t_old = min(t_old, time.perf_counter() - start)
        memo = MemoizedMappingEvaluator(
            app, topology, routing, constraints, estimator
        )
        start = time.perf_counter()
        for s1, s2 in cands:
            memo.evaluate_swap(base, s1, s2, with_floorplan=False)
        t_new = min(t_new, time.perf_counter() - start)
    n = len(cands)
    return round(n / t_old, 1), round(n / t_new, 1)


def full_flow(app_name: str, routing: str, capacity, incremental: bool):
    app = load_application(app_name)
    constraints = (
        Constraints() if capacity is None
        else Constraints(link_capacity_mb_s=capacity)
    )
    start = time.perf_counter()
    report = run_sunmap(
        app, routing=routing, objective="hops", constraints=constraints,
        config=MapperConfig(
            converge=True, max_rounds=10, incremental=incremental
        ),
    )
    wall = time.perf_counter() - start
    return report.best_topology_name, wall


def measure(smoke: bool = False, reps: int = 4) -> tuple[dict, dict]:
    """(baseline, current) sections, measured interleaved."""
    if smoke:
        cases = [c for c in EVAL_CASES if c[0] in SMOKE_EVAL_CASES]
        reps = 2
        limit = 60
    else:
        cases = EVAL_CASES
        limit = 200
    base_evals = {}
    cur_evals = {}
    for label, app_name, topo_name, code in cases:
        old, new = measure_evals(app_name, topo_name, code, reps, limit)
        base_evals[label] = old
        cur_evals[label] = new
    base_flows = {}
    cur_flows = {}
    for app_name, routing, capacity in FLOW_CASES:
        if smoke and app_name != "vopd":
            continue
        best_old = best_new = math.inf
        winner = None
        for _ in range(1 if smoke else 2):
            winner, wall = full_flow(app_name, routing, capacity, False)
            best_old = min(best_old, wall)
            winner_new, wall = full_flow(app_name, routing, capacity, True)
            assert winner_new == winner  # identical selection either way
            best_new = min(best_new, wall)
        base_flows[app_name] = {"seconds": round(best_old, 3), "winner": winner}
        cur_flows[app_name] = {"seconds": round(best_new, 3), "winner": winner}
    calibration = _calibrate()
    baseline = {
        "evals_per_sec": base_evals,
        "full_flow": base_flows,
        "calibration_ops_per_sec": calibration,
    }
    current = {
        "evals_per_sec": cur_evals,
        "full_flow": cur_flows,
        "calibration_ops_per_sec": calibration,
    }
    return baseline, current


def _eval_ratios(current: dict, reference: dict) -> list[float]:
    ratios = []
    for case, value in current.get("evals_per_sec", {}).items():
        ref = reference.get("evals_per_sec", {}).get(case)
        if ref:
            ratios.append(value / ref)
    return ratios


def _flow_ratio(current: dict, reference: dict) -> float | None:
    cur = current.get("full_flow", {})
    ref = reference.get("full_flow", {})
    shared = [k for k in cur if k in ref]
    if not shared:
        return None
    cur_total = sum(cur[k]["seconds"] for k in shared)
    ref_total = sum(ref[k]["seconds"] for k in shared)
    return ref_total / cur_total if cur_total else None


def _speedups(baseline: dict, current: dict) -> dict:
    per_case = {}
    mp_sm = []
    for case, new in current["evals_per_sec"].items():
        old = baseline["evals_per_sec"].get(case)
        if not old:
            continue
        ratio = round(new / old, 2)
        per_case[case] = ratio
        if case.rsplit("-", 1)[-1] in ("MP", "SM"):
            mp_sm.append(new / old)
    overall = _geomean(list(per_case.values()))
    return {
        "evals_per_sec": per_case,
        "evals_per_sec_geomean": None if overall is None else round(overall, 2),
        "evals_per_sec_mp_sm_geomean": (
            None if not mp_sm else round(_geomean(mp_sm), 2)
        ),
        "full_flow": (
            None
            if _flow_ratio(current, baseline) is None
            else round(_flow_ratio(current, baseline), 2)
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced budget: three eval cases, one flow, two reps",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if current-path evals/sec regressed more than 30%% "
        "versus the committed BENCH_mapping.json",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="output path (default: BENCH_mapping.json at the repo root; "
        "--smoke writes BENCH_mapping.smoke.json so a reduced-budget run "
        "never clobbers the committed record)",
    )
    args = parser.parse_args(argv)

    if args.json is not None:
        out_path = Path(args.json)
    elif args.smoke:
        out_path = BENCH_PATH.with_name("BENCH_mapping.smoke.json")
    else:
        out_path = BENCH_PATH

    committed = {}
    if BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text(encoding="utf-8"))

    baseline, current = measure(smoke=args.smoke)

    # Regression gate: fresh current-path evals/sec vs the committed
    # current, normalized by the machine-speed calibration.
    check_failed = False
    if args.check and committed.get("current"):
        ratio = _geomean(_eval_ratios(current, committed["current"]))
        if ratio is not None:
            committed_cal = committed["current"].get(
                "calibration_ops_per_sec"
            )
            fresh_cal = current.get("calibration_ops_per_sec")
            if committed_cal and fresh_cal:
                machine = fresh_cal / committed_cal
                normalized = ratio / machine
                print(
                    f"evals/sec vs committed: {ratio:.2f}x raw, machine "
                    f"speed {machine:.2f}x, normalized {normalized:.2f}x "
                    f"(gate: >= {MIN_CHECK_RATIO})"
                )
            else:
                normalized = ratio
                print(
                    f"evals/sec vs committed: {ratio:.2f}x "
                    f"(no calibration recorded; gate: >= {MIN_CHECK_RATIO})"
                )
            if normalized < MIN_CHECK_RATIO:
                print("PERF REGRESSION: mapping evals/sec dropped >30%")
                check_failed = True

    record = {
        "schema": 1,
        "baseline": baseline,
        "current": current,
        "speedup": _speedups(baseline, current),
        "notes": NOTES,
        "smoke": args.smoke,
    }
    out_path.write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    print(f"wrote {out_path}")
    for case, new in current["evals_per_sec"].items():
        old = baseline["evals_per_sec"][case]
        print(
            f"evals {case:16s} old {old:9,.0f}/s  new {new:9,.0f}/s  "
            f"{new / old:.2f}x"
        )
    for app_name in current["full_flow"]:
        old = baseline["full_flow"][app_name]["seconds"]
        new = current["full_flow"][app_name]["seconds"]
        print(
            f"flow  {app_name:16s} old {old:8.3f}s  new {new:8.3f}s  "
            f"{old / new if new else float('nan'):.2f}x"
        )
    sp = record["speedup"]
    print(
        f"geomean evals/sec {sp['evals_per_sec_geomean']}x "
        f"(MP/SM {sp['evals_per_sec_mp_sm_geomean']}x), "
        f"full flow {sp['full_flow']}x"
    )
    return 1 if check_failed else 0


if __name__ == "__main__":
    sys.exit(main())
