"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4), prints the reproduced rows, asserts the paper's *shape*
(who wins, rough factors) and archives the artifact under
``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.apps import dsp_filter, mpeg4, network_processor, vopd
from repro.core.mapper import MapperConfig

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="reduced experiment budgets (CI smoke runs)",
    )


@pytest.fixture(scope="session")
def smoke(request):
    """True when the run should use reduced budgets (--smoke)."""
    return request.config.getoption("--smoke")

#: Search configuration used by all experiment benches (the converging
#: swap search; the paper-faithful single pass is measured separately in
#: bench_ablation_swap).
BENCH_CONFIG = MapperConfig(converge=True, max_rounds=10)


def write_artifact(name: str, text: str) -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    print(f"\n[{name}]\n{text}")
    return path


@pytest.fixture(scope="session")
def vopd_app():
    return vopd()


@pytest.fixture(scope="session")
def mpeg4_app():
    return mpeg4()


@pytest.fixture(scope="session")
def dsp_app():
    return dsp_filter()


@pytest.fixture(scope="session")
def netproc_app():
    return network_processor()


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
