"""Benchmark: serial vs parallel design-space exploration.

Runs the full topology-selection sweep (every topology × routing ×
objective candidate) over the paper's four applications through the
:class:`~repro.engine.ExplorationEngine`, once with the serial executor
and once with a process pool, and reports wall time, speedup and result
identity. The parallel run must reproduce the serial results bit for
bit — same winners, same costs — which this script asserts on every run.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_parallel.py
    PYTHONPATH=src python benchmarks/bench_engine_parallel.py --smoke
    PYTHONPATH=src python benchmarks/bench_engine_parallel.py \
        --jobs 8 --routings MP SM --objectives hops power

``--smoke`` shrinks the sweep to one app × one routing × one objective
with a single-pass swap search — the reduced budget CI uses to keep this
script from rotting.

On a machine with >= 4 CPUs (and no --smoke) the script exits non-zero
unless the parallel sweep is at least MIN_SPEEDUP faster; on smaller
machines the speedup is reported but not enforced.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.apps import dsp_filter, mpeg4, network_processor, vopd
from repro.core.mapper import MapperConfig
from repro.engine import ExplorationEngine, make_executor

#: Required parallel-over-serial factor on a >= 4-core machine.
MIN_SPEEDUP = 1.5

APPS = {
    "vopd": vopd,
    "mpeg4": mpeg4,
    "dsp": dsp_filter,
    "netproc": network_processor,
}


def run_sweep(apps, routings, objectives, config, jobs):
    """One full sweep; returns (wall seconds, comparable result digest)."""
    executor = make_executor(jobs)
    start = time.perf_counter()
    digest = {}
    for name, build in apps.items():
        engine = ExplorationEngine(executor=executor)
        results = engine.sweep(
            build(),
            routings=routings,
            objectives=objectives,
            config=config,
        )
        for key, result in sorted(results.items()):
            if result.ok:
                ev = result.evaluation
                digest[(name, *key)] = (
                    round(ev.cost, 9),
                    ev.feasible,
                    tuple(sorted(ev.assignment.items())),
                    result.seed,
                )
            else:
                digest[(name, *key)] = (result.error_type, result.error)
    return time.perf_counter() - start, digest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="parallel workers (0 = one per CPU)",
    )
    parser.add_argument(
        "--apps", nargs="+", choices=sorted(APPS), default=sorted(APPS),
    )
    parser.add_argument(
        "--routings", nargs="+", default=["MP", "SM"],
        choices=["DO", "MP", "SM", "SA"],
    )
    parser.add_argument(
        "--objectives", nargs="+", default=["hops", "power"],
        choices=["hops", "area", "power", "bandwidth"],
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced budget for CI: vopd only, one candidate class, "
        "single swap pass",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        apps = {"vopd": APPS["vopd"]}
        routings, objectives = ["MP"], ["hops"]
        config = MapperConfig(converge=False, swap_rounds=1)
    else:
        apps = {name: APPS[name] for name in args.apps}
        routings, objectives = args.routings, args.objectives
        config = MapperConfig()

    cpus = os.cpu_count() or 1
    workers = args.jobs or cpus
    candidates = len(apps) * 5 * len(routings) * len(objectives)
    print(
        f"sweep: {len(apps)} apps x 5 topologies x {len(routings)} routings"
        f" x {len(objectives)} objectives = {candidates} candidates"
        f" | {cpus} CPUs, {workers} workers"
    )

    serial_s, serial_digest = run_sweep(
        apps, routings, objectives, config, jobs=1
    )
    print(f"serial   ({candidates} jobs): {serial_s:8.2f} s")
    parallel_s, parallel_digest = run_sweep(
        apps, routings, objectives, config, jobs=workers
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"parallel ({workers} workers): {parallel_s:8.2f} s")
    print(f"speedup: {speedup:.2f}x")

    if parallel_digest != serial_digest:
        print("FAIL: parallel results differ from serial results")
        for key in sorted(serial_digest):
            if serial_digest[key] != parallel_digest.get(key):
                print(f"  {key}:")
                print(f"    serial:   {serial_digest[key]}")
                print(f"    parallel: {parallel_digest.get(key)}")
        return 1
    print(f"results: identical across executors ({len(serial_digest)} rows)")

    if not args.smoke and cpus >= 4 and speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < {MIN_SPEEDUP}x on {cpus} CPUs")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
