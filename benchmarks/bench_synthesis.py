"""Synthesized-fabric vs standard-library benchmark with a committed record.

For every paper application the benchmark runs the two competitors under
identical constraints and objective (hops, 500 MB/s links):

* **library** — the full ``run_sunmap`` selection over the standard
  five-entry topology library, with the paper's routing escalation
  (MP, then SM/SA when nothing is feasible);
* **synthesized** — the automatic topology-synthesis sweep
  (``repro.synthesis``, default :class:`SynthesisConfig`), given the
  same routing escalation policy: candidates are generated from the
  core graph and each one is fully mapped/evaluated.

The committed ``BENCH_synthesis.json`` records, per application, the
best objective cost on each side and the improvement factor, plus the
synthesis wall time and a machine-speed calibration. Two assertions run
on every full measurement (the PR's acceptance criteria):

* on at least **2 of the 4** applications a synthesized fabric is
  feasible with objective cost <= the best library topology;
* synthesis is deterministic — the ``jobs=1`` and ``jobs=4`` candidate
  sets are bit-identical (names, costs, assignments).

Usage::

    python benchmarks/bench_synthesis.py            # full run, rewrites record
    python benchmarks/bench_synthesis.py --smoke    # reduced budget (CI)
    python benchmarks/bench_synthesis.py --smoke --check
        # exit 1 on lost wins or on >30% synthesis-throughput regression
        # (calibration-normalized) vs the committed record

``--smoke`` restricts the app set (vopd + dsp) and writes
``BENCH_synthesis.smoke.json`` so a reduced run never clobbers the
committed record.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_kernel import _calibrate, _geomean  # noqa: E402

from repro.apps import load_application  # noqa: E402
from repro.core.constraints import Constraints  # noqa: E402
from repro.sunmap import DEFAULT_ROUTING_FALLBACKS, run_sunmap  # noqa: E402
from repro.synthesis import SynthesisConfig, synthesize_topologies  # noqa: E402

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_synthesis.json"

#: Acceptable candidates/sec ratio vs the committed record before
#: --check fails (>30% regression), after machine-speed normalization.
MIN_CHECK_RATIO = 0.7

APPS = ("vopd", "mpeg4", "dsp", "netproc")
SMOKE_APPS = ("vopd", "dsp")

#: Full-run acceptance floor: synthesized fabrics must match-or-beat the
#: library best on at least this many of the four paper apps.
MIN_WINS_FULL = 2
MIN_WINS_SMOKE = 1

NOTES = (
    "library = full run_sunmap selection over the standard five-entry "
    "library with routing escalation (MP -> SM -> SA); synthesized = "
    "repro.synthesis default sweep (greedy/bisect/bounded partitioning, "
    "concentration 2-4, switch degree 4-8) under the same constraints, "
    "objective and escalation policy. improvement = library best cost / "
    "synthesized best cost (hops objective, 500 MB/s links); > 1.0 means "
    "the synthesized fabric wins. Concentrated application-shaped "
    "fabrics shorten the heavy flows to one switch hop, which no regular "
    "library topology can do, hence the across-the-board wins; the "
    "committed record also pins jobs=1 == jobs=4 bit-identical candidate "
    "sets (asserted while measuring)."
)


def _candidate_record(result) -> list[dict]:
    """Bit-exact comparable digest of a synthesis result."""
    return [
        {
            "name": cand.name,
            "feasible": cand.feasible,
            "cost": cand.cost,
            "assignment": (
                None
                if cand.evaluation is None
                else sorted(cand.evaluation.assignment.items())
            ),
            "error": cand.error,
        }
        for cand in result.ranked
    ]


def _synthesize_with_escalation(app, constraints, jobs: int = 1):
    """Synthesis under the same routing escalation policy the library
    selection gets: try MP, fall back to split routing when no
    candidate is feasible. Returns (result, routing_code)."""
    result = None
    code = "MP"
    for code in ("MP", *DEFAULT_ROUTING_FALLBACKS):
        result = synthesize_topologies(
            app,
            config=SynthesisConfig(),
            routing=code,
            objective="hops",
            constraints=constraints,
            jobs=jobs,
        )
        if result.best is not None:
            break
    return result, code


def measure_app(app_name: str) -> dict:
    app = load_application(app_name)
    constraints = Constraints()

    start = time.perf_counter()
    library = run_sunmap(
        app, objective="hops", constraints=constraints, generate=False
    )
    library_seconds = time.perf_counter() - start
    lib_best = library.best

    start = time.perf_counter()
    synthesized, synth_code = _synthesize_with_escalation(app, constraints)
    synth_seconds = time.perf_counter() - start

    # Determinism (acceptance criterion): the parallel sweep must
    # reproduce the serial candidate set bit-identically.
    parallel, parallel_code = _synthesize_with_escalation(
        app, constraints, jobs=4
    )
    assert parallel_code == synth_code
    assert _candidate_record(parallel) == _candidate_record(synthesized)

    best = synthesized.best
    entry = {
        "library": {
            "best": library.best_topology_name,
            "cost": None if lib_best is None else round(lib_best.cost, 6),
            "routing": library.selection.routing_code,
            "seconds": round(library_seconds, 3),
        },
        "synthesized": {
            "best": None if best is None else best.name,
            "cost": None if best is None else round(best.cost, 6),
            "routing": synth_code,
            "seconds": round(synth_seconds, 3),
            "candidates_evaluated": len(synthesized.candidates),
            "candidates_feasible": sum(
                1 for c in synthesized.candidates if c.feasible
            ),
            "candidates_pruned": len(synthesized.pruned),
        },
    }
    if lib_best is not None and best is not None:
        entry["improvement"] = round(lib_best.cost / best.cost, 3)
        entry["win"] = best.cost <= lib_best.cost + 1e-9
    else:
        entry["improvement"] = None
        entry["win"] = best is not None and lib_best is None
    return entry


def measure(smoke: bool = False) -> dict:
    apps = SMOKE_APPS if smoke else APPS
    results = {name: measure_app(name) for name in apps}
    improvements = [
        r["improvement"]
        for r in results.values()
        if r["improvement"] is not None
    ]
    total_candidates = sum(
        r["synthesized"]["candidates_evaluated"] for r in results.values()
    )
    total_seconds = sum(
        r["synthesized"]["seconds"] for r in results.values()
    )
    return {
        "apps": results,
        "wins": sum(1 for r in results.values() if r["win"]),
        "improvement_geomean": (
            None
            if not improvements
            else round(_geomean(improvements), 3)
        ),
        "candidates_per_sec": (
            round(total_candidates / total_seconds, 2)
            if total_seconds > 0
            else None
        ),
        "calibration_ops_per_sec": _calibrate(),
    }


def _shared_rate(record: dict, apps: list[str]) -> float | None:
    """Candidates/sec restricted to ``apps`` (cross-record comparable)."""
    candidates = 0
    seconds = 0.0
    for name in apps:
        entry = record["apps"].get(name)
        if entry is None:
            return None
        candidates += entry["synthesized"]["candidates_evaluated"]
        seconds += entry["synthesized"]["seconds"]
    if seconds <= 0:
        return None
    return candidates / seconds


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced budget: vopd + dsp only",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when synthesized fabrics lose their committed wins "
        "or synthesis throughput regressed more than 30%% "
        "(calibration-normalized) vs BENCH_synthesis.json",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="output path (default: BENCH_synthesis.json at the repo "
        "root; --smoke writes BENCH_synthesis.smoke.json)",
    )
    args = parser.parse_args(argv)

    if args.json is not None:
        out_path = Path(args.json)
    elif args.smoke:
        out_path = BENCH_PATH.with_name("BENCH_synthesis.smoke.json")
    else:
        out_path = BENCH_PATH

    committed = {}
    if BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text(encoding="utf-8"))

    current = measure(smoke=args.smoke)

    min_wins = MIN_WINS_SMOKE if args.smoke else MIN_WINS_FULL
    wins_ok = current["wins"] >= min_wins

    check_failed = False
    if args.check:
        if not wins_ok:
            print(
                f"ACCEPTANCE REGRESSION: only {current['wins']} of "
                f"{len(current['apps'])} apps have a synthesized fabric "
                f"matching the library best (need >= {min_wins})"
            )
            check_failed = True
        ref = committed.get("current", {})
        # Rate over the apps both records measured (--smoke runs fewer
        # apps than the committed full record; comparing whole-run rates
        # would mix workloads).
        shared = [
            name
            for name in current["apps"]
            if name in ref.get("apps", {})
        ]
        cur_rate = _shared_rate(current, shared)
        ref_rate = _shared_rate(ref, shared)
        if cur_rate and ref_rate:
            ratio = cur_rate / ref_rate
            committed_cal = ref.get("calibration_ops_per_sec")
            fresh_cal = current.get("calibration_ops_per_sec")
            if committed_cal and fresh_cal:
                machine = fresh_cal / committed_cal
                normalized = ratio / machine
                print(
                    f"candidates/sec vs committed: {ratio:.2f}x raw, "
                    f"machine speed {machine:.2f}x, normalized "
                    f"{normalized:.2f}x (gate: >= {MIN_CHECK_RATIO})"
                )
            else:
                normalized = ratio
                print(
                    f"candidates/sec vs committed: {ratio:.2f}x "
                    f"(no calibration recorded; gate: >= {MIN_CHECK_RATIO})"
                )
            if normalized < MIN_CHECK_RATIO:
                print("PERF REGRESSION: synthesis throughput dropped >30%")
                check_failed = True

    record = {
        "schema": 1,
        "current": current,
        "notes": NOTES,
        "smoke": args.smoke,
    }
    out_path.write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out_path}")

    for name, entry in current["apps"].items():
        lib = entry["library"]
        syn = entry["synthesized"]
        improvement = entry["improvement"]
        print(
            f"{name:8s} library {lib['best'] or '-':20s} "
            f"cost {lib['cost'] if lib['cost'] is not None else math.inf:8.3f} "
            f"[{lib['routing']}]  synthesized {syn['best'] or '-':20s} "
            f"cost {syn['cost'] if syn['cost'] is not None else math.inf:8.3f} "
            f"[{syn['routing']}]  "
            f"{'WIN' if entry['win'] else 'loss'}"
            f"{'' if improvement is None else f' ({improvement:.2f}x)'}"
        )
    print(
        f"wins: {current['wins']}/{len(current['apps'])} "
        f"(floor {min_wins}), improvement geomean "
        f"{current['improvement_geomean']}x, "
        f"{current['candidates_per_sec']} candidates/sec"
    )

    if not args.check and not wins_ok:
        print(
            f"WARNING: wins below the acceptance floor ({min_wins}); "
            f"--check would fail"
        )
    return 1 if check_failed else 0


if __name__ == "__main__":
    sys.exit(main())
