"""Experiment fig11 — Figures 10(b)/11: butterfly floorplan + SystemC.

Phase 3 on the DSP filter: the chosen 3-ary 2-fly is pruned to four 3x3
switches (Figure 10(b)'s floorplan) and the whole design is emitted as
SystemC (Figure 11 shows the authors' simulation of exactly this
output). We verify and archive the generated artifact.
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.constraints import Constraints
from repro.sunmap import run_sunmap


def run_experiment(dsp_app):
    return run_sunmap(
        dsp_app,
        routing="MP",
        objective="hops",
        constraints=Constraints(link_capacity_mb_s=1000.0),
        config=BENCH_CONFIG,
    )


def test_fig11_dsp_systemc_generation(benchmark, dsp_app):
    report = once(benchmark, lambda: run_experiment(dsp_app))

    netlist = report.netlist
    summary = [
        f"selected: {report.best_topology_name}",
        f"switches: {[s.instance for s in netlist.switches]}",
        f"NIs:      {[n.instance for n in netlist.nis]}",
        f"links:    {len(netlist.links)}",
        "",
        "---- generated SystemC (head) ----",
    ]
    summary += report.systemc.splitlines()[:40]
    write_artifact("fig11_generation", "\n".join(summary))

    assert report.best_topology_name.startswith("butterfly")
    # Figure 10(b): four 3x3 switches survive pruning.
    assert len(netlist.switches) == 4
    assert all(s.n_in == 3 and s.n_out == 3 for s in netlist.switches)
    assert len(netlist.nis) == 6
    netlist.validate()
    assert "sc_main" in report.systemc
    assert report.systemc.count("{") == report.systemc.count("}")
