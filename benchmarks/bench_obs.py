"""Benchmark: what does observability cost?

Two questions, answered on a real campaign workload:

1. **Always-on metrics** — the registry counters/histograms are part of
   the production path and cannot be disabled, so their cost is bounded
   from microbenchmarks: per-event instrument cost x events per run,
   expressed as a fraction of the run's wall time.
2. **Tracing on vs off** — the A/B that can be measured directly: the
   same campaign with a JSONL trace sink installed vs untraced, best of
   N repetitions each, interleaved to cancel thermal/cache drift. The
   run also asserts bit-identity of the two campaign payloads (modulo
   the volatile ``runtime`` block).

Both overheads must land under the documented 5% budget
(``docs/OBSERVABILITY.md``); the committed record is ``BENCH_obs.json``
at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.apps import vopd
from repro.core.greedy import initial_greedy_mapping
from repro.obs import JsonlSink, add_sink, get_registry, remove_sink, span
from repro.simulation.campaign import (
    CampaignConfig,
    run_campaign,
    strip_runtime,
)
from repro.topology.library import make_topology

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: The documented overhead ceiling (docs/OBSERVABILITY.md).
BUDGET = 0.05

#: Absolute wall-clock slack for the ratio gate: sub-second smoke
#: workloads jitter by tens of milliseconds, which would dwarf any real
#: ratio; a delta below this floor is noise, not overhead.
NOISE_FLOOR_S = 0.025


def canonical(value) -> str:
    """Canonical JSON for bit-identity comparison."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def instrument_costs(loops: int) -> dict:
    """Per-event cost (seconds) of each instrument primitive."""
    registry = get_registry()
    counter = registry.counter("repro_bench_obs_total", "bench", ("kind",))
    histogram = registry.histogram("repro_bench_obs_seconds", "bench", ("kind",))

    start = time.perf_counter()
    for _ in range(loops):
        counter.inc(kind="bench")
    counter_s = (time.perf_counter() - start) / loops

    start = time.perf_counter()
    for _ in range(loops):
        histogram.observe(0.01, kind="bench")
    histogram_s = (time.perf_counter() - start) / loops

    start = time.perf_counter()
    for _ in range(loops):
        with span("bench.noop"):
            pass
    span_off_s = (time.perf_counter() - start) / loops

    return {
        "counter_inc_s": counter_s,
        "histogram_observe_s": histogram_s,
        "span_noop_s": span_off_s,
    }


def campaign_once(app, topology, assignment, config) -> tuple[float, dict]:
    """One campaign run; returns (wall seconds, stripped payload)."""
    start = time.perf_counter()
    result = run_campaign(
        topology, core_graph=app, assignment=assignment, config=config
    )
    return time.perf_counter() - start, strip_runtime(result.to_dict())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced budget (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail if overhead exceeds the 5%% budget")
    parser.add_argument("--output", default=None,
                        help="record path (default: BENCH_obs.json at the "
                        "repo root, or BENCH_obs.smoke.json with --smoke "
                        "so reduced-budget CI runs never clobber the "
                        "committed record)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = str(
            BENCH_PATH.with_name("BENCH_obs.smoke.json")
            if args.smoke else BENCH_PATH
        )

    reps = 2 if args.smoke else 4
    measure = 400 if args.smoke else 2000
    loops = 20_000 if args.smoke else 200_000

    app = vopd()
    topology = make_topology("mesh", app.num_cores)
    assignment = initial_greedy_mapping(app, topology)
    rates = (0.05, 0.1) if args.smoke else (0.05, 0.1, 0.2, 0.3)
    config = CampaignConfig(
        rates=rates,
        patterns=("uniform",) if args.smoke else ("uniform", "transpose"),
        seeds=(1,),
        warmup=measure // 4,
        measure=measure,
        drain=measure // 2,
    )

    # Warm imports, topology layouts and code paths.
    campaign_once(app, topology, assignment, config)

    traced_times, untraced_times = [], []
    traced_payload = untraced_payload = None
    trace_file = Path(args.output).with_suffix(".trace.jsonl")
    for _ in range(reps):
        wall, untraced_payload = campaign_once(
            app, topology, assignment, config
        )
        untraced_times.append(wall)
        sink = JsonlSink(str(trace_file))
        add_sink(sink)
        try:
            wall, traced_payload = campaign_once(
                app, topology, assignment, config
            )
        finally:
            remove_sink(sink)
            sink.close()
        traced_times.append(wall)
    trace_file.unlink(missing_ok=True)

    if canonical(traced_payload) != canonical(untraced_payload):
        print("FAIL: traced campaign payload differs from untraced")
        return 1

    untraced = min(untraced_times)
    traced = min(traced_times)
    tracing_overhead = max(0.0, traced / untraced - 1.0)

    costs = instrument_costs(loops)
    # The campaign above issues on the order of one histogram + a few
    # counter updates per engine job (point); even a 1000x denser
    # workload stays far under budget, but record the measured
    # projection for this workload honestly.
    events_per_run = 6 * len(rates) * len(config.patterns)
    metrics_overhead = (
        events_per_run
        * max(costs["counter_inc_s"], costs["histogram_observe_s"])
        / untraced
    )

    record = {
        "budget": BUDGET,
        "workload": {
            "app": "vopd",
            "topology": topology.name,
            "rates": list(rates),
            "patterns": list(config.patterns),
            "measure_cycles": measure,
            "reps": reps,
        },
        "instrument_costs_s": {k: round(v, 9) for k, v in costs.items()},
        "campaign_wall_s": {
            "untraced": round(untraced, 4),
            "traced": round(traced, 4),
        },
        "overhead": {
            "tracing_fraction": round(tracing_overhead, 4),
            "always_on_metrics_fraction": round(metrics_overhead, 6),
        },
        "bit_identical": True,
    }
    Path(args.output).write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )

    print(
        f"untraced {untraced:.3f}s, traced {traced:.3f}s -> tracing "
        f"overhead {tracing_overhead * 100:.2f}% "
        f"(budget {BUDGET * 100:.0f}%)"
    )
    print(
        f"instrument costs: counter {costs['counter_inc_s'] * 1e9:.0f}ns, "
        f"histogram {costs['histogram_observe_s'] * 1e9:.0f}ns, "
        f"disabled span {costs['span_noop_s'] * 1e9:.0f}ns -> always-on "
        f"metrics {metrics_overhead * 100:.4f}% of this workload"
    )
    print(f"record written to {args.output}")

    if args.check:
        failures = []
        if tracing_overhead > BUDGET and traced - untraced > NOISE_FLOOR_S:
            failures.append(
                f"tracing overhead {tracing_overhead:.1%} > {BUDGET:.0%} "
                f"(delta {traced - untraced:.3f}s above the "
                f"{NOISE_FLOOR_S:.3f}s noise floor)"
            )
        if metrics_overhead > BUDGET:
            failures.append(
                f"metrics overhead {metrics_overhead:.1%} > {BUDGET:.0%}"
            )
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print("observability overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
