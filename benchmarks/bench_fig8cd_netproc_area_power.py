"""Experiment fig8cd — Figures 8(c)/8(d): network processor area/power.

Mappings are produced "by relaxing the bandwidth constraints" (Section
6.2) with split routing. Paper shape: the Clos's area and power are
"only slightly higher than the butterfly topology", with the direct
16-switch topologies costlier on power.
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.constraints import Constraints
from repro.core.selector import select_topology


def run_experiment(netproc_app):
    return select_topology(
        netproc_app,
        routing="SM",
        objective="hops",
        constraints=Constraints().relaxed(),
        config=BENCH_CONFIG,
    )


def test_fig8cd_netproc_area_power(benchmark, netproc_app):
    selection = once(benchmark, lambda: run_experiment(netproc_app))
    evs = {n.split("-")[0]: ev for n, ev in selection.evaluations.items()}

    lines = [
        f"{'topology':<12}{'area mm2':>10}{'power mW':>10}"
        f"{'switches':>9}{'avg hops':>9}"
    ]
    for name in ("mesh", "torus", "hypercube", "clos", "butterfly"):
        ev = evs[name]
        lines.append(
            f"{name:<12}{ev.area_mm2:>10.2f}{ev.power_mw:>10.1f}"
            f"{ev.resources.num_switches:>9}{ev.avg_hops:>9.2f}"
        )
    write_artifact("fig8cd_netproc_area_power", "\n".join(lines))

    # All five topologies produce mappings under relaxed bandwidth.
    assert len(evs) == 5
    # Butterfly is the cheapest network; the Clos — the latency winner of
    # Fig. 8(b) — costs "only slightly higher" (paper's justification for
    # using it in network processors).
    assert evs["butterfly"].area_mm2 == min(e.area_mm2 for e in evs.values())
    assert evs["butterfly"].power_mw == min(e.power_mw for e in evs.values())
    assert evs["clos"].area_mm2 <= 1.25 * evs["butterfly"].area_mm2
    assert evs["clos"].power_mw <= 1.5 * evs["butterfly"].power_mw
    # Clos needs fewer, smaller switches than the per-node-switch
    # topologies (12 4x4 switches versus 16 up-to-5x5 ones).
    for name in ("mesh", "torus", "hypercube"):
        assert (
            evs["clos"].resources.num_switches
            < evs[name].resources.num_switches
        )
        assert evs["clos"].area_mm2 < evs[name].area_mm2
