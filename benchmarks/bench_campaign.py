"""Benchmark: closed-loop simulation campaigns through the engine.

Sweeps one application's mapped design across injection rates, traffic
patterns and seeds (``repro.simulation.campaign``), once serially and
once through a process pool, and reports wall time, speedup, cache
behaviour and result identity. The parallel campaign must reproduce the
serial one bit for bit — same curves, same saturation points — which
this script asserts on every run, along with a monotone-until-saturation
shape check on the application-trace curve.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py
    PYTHONPATH=src python benchmarks/bench_campaign.py --smoke --jobs 2
    PYTHONPATH=src python benchmarks/bench_campaign.py \
        --app dsp --topology hypercube --rates 0.05 0.1 0.2 0.4

``--smoke`` shrinks the sweep to a tiny vopd rate grid — the reduced
budget CI uses to keep this script from rotting.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time

from repro.apps import dsp_filter, mpeg4, network_processor, vopd
from repro.core.greedy import initial_greedy_mapping
from repro.engine import ExplorationEngine, make_executor
from repro.simulation.campaign import (
    CampaignConfig,
    run_campaign,
    strip_runtime,
)
from repro.topology.library import make_topology

APPS = {
    "vopd": vopd,
    "mpeg4": mpeg4,
    "dsp": dsp_filter,
    "netproc": network_processor,
}

#: Tolerated relative latency dip between consecutive pre-saturation
#: points (finite-sample noise at low load).
MONOTONE_SLACK = 0.10


def run_once(topology, app, assignment, config, jobs):
    """One campaign; returns (wall seconds, result, engine)."""
    engine = ExplorationEngine(executor=make_executor(jobs))
    start = time.perf_counter()
    result = run_campaign(
        topology,
        core_graph=app,
        assignment=assignment,
        config=config,
        engine=engine,
    )
    return time.perf_counter() - start, result, engine


def check_curve_shape(curve) -> list[str]:
    """Monotone-until-saturation violations of one curve (empty = ok)."""
    problems = []
    pre = curve.pre_saturation()
    for (r0, l0), (r1, l1) in zip(pre, pre[1:]):
        if math.isfinite(l0) and l1 < l0 * (1 - MONOTONE_SLACK):
            problems.append(
                f"{curve.pattern}: latency fell {l0:.1f} -> {l1:.1f} "
                f"between rates {r0:g} and {r1:g}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--app", choices=sorted(APPS), default="vopd")
    parser.add_argument("--topology", default="mesh")
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="parallel workers (0 = one per CPU)",
    )
    parser.add_argument(
        "--rates", nargs="+", type=float,
        default=[0.05, 0.1, 0.2, 0.35, 0.5, 0.7],
    )
    parser.add_argument(
        "--patterns", nargs="+",
        default=["app", "uniform", "hotspot", "transpose"],
    )
    parser.add_argument("--seeds", nargs="+", type=int, default=[1, 2])
    parser.add_argument("--measure", type=int, default=3000)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced budget for CI: tiny vopd rate grid, short runs",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.app, args.topology = "vopd", "mesh"
        args.rates = [0.1, 0.4]
        args.patterns = ["app", "uniform"]
        args.seeds = [1]
        args.measure = 800

    app = APPS[args.app]()
    topology = make_topology(args.topology, app.num_cores)
    assignment = initial_greedy_mapping(app, topology)
    config = CampaignConfig(
        rates=tuple(args.rates),
        patterns=tuple(args.patterns),
        seeds=tuple(args.seeds),
        warmup=max(200, args.measure // 4),
        measure=args.measure,
        drain=max(400, args.measure // 2),
    )

    cpus = os.cpu_count() or 1
    workers = args.jobs or cpus
    print(
        f"campaign: {app.name} on {topology.name} | "
        f"{len(config.patterns)} patterns x {len(config.rates)} rates x "
        f"{len(config.seeds)} seeds = {config.num_points} points | "
        f"{cpus} CPUs, {workers} workers"
    )

    serial_s, serial, _ = run_once(topology, app, assignment, config, 1)
    print(f"serial   ({config.num_points} jobs): {serial_s:8.2f} s")
    parallel_s, parallel, engine = run_once(
        topology, app, assignment, config, workers
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"parallel ({workers} workers): {parallel_s:8.2f} s")
    print(f"speedup: {speedup:.2f}x")

    if strip_runtime(serial.to_dict()) != strip_runtime(
            parallel.to_dict()):
        print("FAIL: parallel campaign differs from serial campaign")
        return 1
    print("results: identical across executors")

    # Re-running through the same engine must be served from cache.
    start = time.perf_counter()
    run_campaign(
        topology,
        core_graph=app,
        assignment=assignment,
        config=config,
        engine=engine,
    )
    cached_s = time.perf_counter() - start
    print(
        f"cached rerun: {cached_s:8.2f} s "
        f"({engine.cache.stats})"
    )

    problems = []
    for curve in serial.curves.values():
        problems += check_curve_shape(curve)
    if problems:
        print("FAIL: non-monotone pre-saturation latency curve(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    sat = ", ".join(
        f"{p}: {('%g' % r) if r is not None else 'none'}"
        for p, r in serial.saturation_rates().items()
    )
    print(f"curve shapes ok | saturation rates: {sat}")
    print(serial.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
