"""Benchmark: fault-injection campaigns — degraded vs pristine fabrics.

Runs one application's mapped design through three campaign variants:

1. the pristine fabric (baseline latency-throughput curves);
2. ``k`` dead random inter-switch links per fault seed (routing
   re-converges around every sampled non-partitioning fault set);
3. degraded channels (half capacity, extra per-hop latency) on the same
   fabric.

The faulted campaign runs serially and through a process pool and must
be bit-identical across executors (the fault axis ships through the
engine like rates, patterns and seeds). The script reports the
saturation shift — degraded and faulted fabrics must never saturate
*later* than the pristine one — and archives the comparison under
``benchmarks/out/``.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py
    PYTHONPATH=src python benchmarks/bench_faults.py --smoke --jobs 2
    PYTHONPATH=src python benchmarks/bench_faults.py \
        --app mpeg4 --faults 2 --fault-seeds 1 2 3

``--smoke`` shrinks the sweep to a tiny vopd grid — the reduced budget
CI uses to keep this script from rotting.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.apps import dsp_filter, mpeg4, network_processor, vopd
from repro.core.greedy import initial_greedy_mapping
from repro.engine import ExplorationEngine, make_executor
from repro.faults import FaultedTopology, sample_degradations
from repro.simulation.campaign import (
    CampaignConfig,
    run_campaign,
    strip_runtime,
)
from repro.topology.library import make_topology

APPS = {
    "vopd": vopd,
    "mpeg4": mpeg4,
    "dsp": dsp_filter,
    "netproc": network_processor,
}

OUT_DIR = pathlib.Path(__file__).parent / "out"


def run_once(topology, app, assignment, config, jobs):
    """One campaign; returns (wall seconds, result)."""
    engine = ExplorationEngine(executor=make_executor(jobs))
    start = time.perf_counter()
    result = run_campaign(
        topology,
        core_graph=app,
        assignment=assignment,
        config=config,
        engine=engine,
    )
    return time.perf_counter() - start, result


def fmt_saturation(result) -> str:
    return ", ".join(
        f"{p}: {('%g' % r) if r is not None else 'none'}"
        for p, r in result.saturation_rates().items()
    )


def saturation_never_later(pristine, stressed) -> list[str]:
    """Patterns where the stressed fabric saturates after the pristine
    one (a physical impossibility — less capacity cannot buy headroom).
    """
    problems = []
    base = pristine.saturation_rates()
    hit = stressed.saturation_rates()
    for pattern, rate in hit.items():
        base_rate = base.get(pattern)
        if base_rate is not None and (rate is None or rate > base_rate):
            problems.append(
                f"{pattern}: stressed saturation "
                f"{rate if rate is not None else 'none'} later than "
                f"pristine {base_rate:g}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--app", choices=sorted(APPS), default="vopd")
    parser.add_argument("--topology", default="mesh")
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="parallel workers (0 = one per CPU)",
    )
    parser.add_argument(
        "--rates", nargs="+", type=float,
        default=[0.05, 0.1, 0.2, 0.35, 0.5],
    )
    parser.add_argument("--patterns", nargs="+", default=["app", "uniform"])
    parser.add_argument("--seeds", nargs="+", type=int, default=[1])
    parser.add_argument(
        "--faults", type=int, default=2,
        help="dead inter-switch links per fault variant",
    )
    parser.add_argument(
        "--fault-seeds", nargs="+", type=int, default=[1, 2],
        help="fault-sampling seeds (one deterministic fault set each)",
    )
    parser.add_argument("--measure", type=int, default=3000)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced budget for CI: tiny vopd grid, short runs",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.app, args.topology = "vopd", "mesh"
        args.rates = [0.1, 0.4]
        args.patterns = ["app"]
        args.seeds = [1]
        args.fault_seeds = args.fault_seeds[:2]
        args.measure = 800

    app = APPS[args.app]()
    topology = make_topology(args.topology, app.num_cores)
    assignment = initial_greedy_mapping(app, topology)
    window = dict(
        warmup=max(200, args.measure // 4),
        measure=args.measure,
        drain=max(400, args.measure // 2),
    )
    pristine_cfg = CampaignConfig(
        rates=tuple(args.rates),
        patterns=tuple(args.patterns),
        seeds=tuple(args.seeds),
        **window,
    )
    faulted_cfg = CampaignConfig(
        rates=tuple(args.rates),
        patterns=tuple(args.patterns),
        seeds=tuple(args.seeds),
        faults=args.faults,
        fault_seeds=tuple(args.fault_seeds),
        **window,
    )

    cpus = os.cpu_count() or 1
    workers = args.jobs or cpus
    print(
        f"fault campaign: {app.name} on {topology.name} | "
        f"k={args.faults} dead links x {len(args.fault_seeds)} fault "
        f"seeds | {faulted_cfg.num_points} points | "
        f"{cpus} CPUs, {workers} workers"
    )

    pristine_s, pristine = run_once(
        topology, app, assignment, pristine_cfg, workers
    )
    print(f"pristine : {pristine_s:8.2f} s | {fmt_saturation(pristine)}")

    serial_s, serial = run_once(topology, app, assignment, faulted_cfg, 1)
    print(f"faulted  ({1} worker ): {serial_s:8.2f} s")
    parallel_s, parallel = run_once(
        topology, app, assignment, faulted_cfg, workers
    )
    print(f"faulted  ({workers} workers): {parallel_s:8.2f} s")
    if strip_runtime(serial.to_dict()) != strip_runtime(
            parallel.to_dict()):
        print("FAIL: parallel fault campaign differs from serial")
        return 1
    print(f"faulted results identical across executors | "
          f"{fmt_saturation(serial)}")

    degraded = FaultedTopology(
        topology,
        sample_degradations(
            topology, args.faults, seed=args.fault_seeds[0],
            cap_factor=0.5, extra_latency=1,
        ),
    )
    degraded_s, degraded_result = run_once(
        degraded, app, assignment, pristine_cfg, workers
    )
    print(
        f"degraded : {degraded_s:8.2f} s | "
        f"{fmt_saturation(degraded_result)}"
    )

    problems = saturation_never_later(pristine, serial)
    problems += saturation_never_later(pristine, degraded_result)
    if problems:
        print("FAIL: stressed fabric saturated later than pristine:")
        for p in problems:
            print(f"  {p}")
        return 1
    print("saturation shift ok: faults never buy headroom")

    lines = [
        f"app: {app.name} | topology: {topology.name} | "
        f"k={args.faults} | fault seeds {args.fault_seeds}",
        f"pristine saturation: {fmt_saturation(pristine)}",
        f"faulted  saturation: {fmt_saturation(serial)}",
        f"degraded saturation: {fmt_saturation(degraded_result)}",
        serial.summary(),
    ]
    OUT_DIR.mkdir(exist_ok=True)
    artifact = OUT_DIR / "bench_faults.txt"
    artifact.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"artifact: {artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
