"""Experiment abl-optimizers — mapping-search strategies compared.

Greedy seed -> the paper's swap descent -> simulated annealing, against
a uniform random-search baseline with the same evaluation budget, on the
hardest structured case in the suite: MPEG4 on the mesh with split
routing (feasibility requires coordinated diagonal placements).

Expected: the structured searches dominate random search; annealing
matches or slightly betters swap descent; the paper's algorithm is
within a few percent of the best found.
"""

from conftest import once, write_artifact

from repro.core.annealing import (
    AnnealingConfig,
    random_search_map,
    simulated_annealing_map,
)
from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping
from repro.core.greedy import initial_greedy_mapping
from repro.core.mapper import MapperConfig, map_onto
from repro.routing.library import make_routing
from repro.topology.library import make_topology

BUDGET = 1200  # evaluations for annealing / random search


def run_experiment(mpeg4_app):
    topo = make_topology("mesh", mpeg4_app.num_cores)
    constraints = Constraints()
    rows = {}
    rows["greedy"] = evaluate_mapping(
        mpeg4_app, topo, initial_greedy_mapping(mpeg4_app, topo),
        make_routing("SM"), constraints,
    )
    rows["swap (paper)"] = map_onto(
        mpeg4_app, topo, routing="SM", objective="hops",
        constraints=constraints,
        config=MapperConfig(converge=False, swap_rounds=1),
    )
    rows["swap converged"] = map_onto(
        mpeg4_app, topo, routing="SM", objective="hops",
        constraints=constraints,
        config=MapperConfig(converge=True, max_rounds=10),
    )
    rows["annealing solo"] = simulated_annealing_map(
        mpeg4_app, topo, routing="SM", objective="hops",
        constraints=constraints,
        config=AnnealingConfig(iterations=BUDGET, seed=3),
    )
    rows["anneal refine"] = simulated_annealing_map(
        mpeg4_app, topo, routing="SM", objective="hops",
        constraints=constraints,
        config=AnnealingConfig(iterations=BUDGET, seed=3),
        initial_assignment=rows["swap converged"].assignment,
    )
    rows["random search"] = random_search_map(
        mpeg4_app, topo, routing="SM", objective="hops",
        constraints=constraints, iterations=BUDGET, seed=3,
    )
    return rows


def test_ablation_optimizers(benchmark, mpeg4_app):
    rows = once(benchmark, lambda: run_experiment(mpeg4_app))

    lines = [
        f"MPEG4 on mesh-3x4, SM routing, hops objective "
        f"(budget {BUDGET} evals)"
    ]
    lines.append(
        f"{'strategy':<16}{'feasible':>9}{'avg hops':>9}{'max load':>10}"
    )
    for name, ev in rows.items():
        lines.append(
            f"{name:<16}{str(ev.feasible):>9}{ev.avg_hops:>9.3f}"
            f"{ev.max_link_load:>10.1f}"
        )
    write_artifact("ablation_optimizers", "\n".join(lines))

    # The converged swap search reaches feasibility; annealing seeded
    # from it stays feasible and can only match or improve it.
    assert rows["swap converged"].feasible
    assert rows["anneal refine"].feasible
    assert (
        rows["anneal refine"].sort_key() <= rows["swap converged"].sort_key()
    )
    # Every structured search beats the unstructured baselines under the
    # feasibility-first ordering.
    for name in ("swap converged", "anneal refine", "annealing solo"):
        assert rows[name].sort_key() <= rows["greedy"].sort_key()
    for name in ("swap converged", "anneal refine"):
        assert rows[name].sort_key() <= rows["random search"].sort_key()
    # Finding worth recording: within this budget the stochastic solo
    # anneal does NOT reliably reach feasibility on this instance —
    # the paper's steepest-descent swap phase is the stronger search
    # for coordinated placement constraints (see EXPERIMENTS.md).
