"""Experiment abl-optimizers — mapping-search strategies compared.

Greedy seed -> the paper's swap descent -> simulated annealing, against
a uniform random-search baseline with the same evaluation budget, on the
hardest structured case in the suite: MPEG4 on the mesh with split
routing (feasibility requires coordinated diagonal placements).

Expected: the structured searches dominate random search; annealing
matches or slightly betters swap descent; the paper's algorithm is
within a few percent of the best found.

Each strategy also reports its mapping-evaluations/sec (assignments
evaluated per wall second — swap descent and annealing route through
the incremental delta engine, random search through the memoized
from-scratch path), so throughput wins and regressions show up next to
the quality numbers. ``--smoke`` shrinks the evaluation budget for CI.
"""

import time

from conftest import once, write_artifact

from repro.core.annealing import (
    AnnealingConfig,
    random_search_map,
    simulated_annealing_map,
)
from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping
from repro.core.greedy import initial_greedy_mapping
from repro.core.mapper import MapperConfig, map_onto
from repro.routing.library import make_routing
from repro.topology.library import make_topology

#: Evaluations for annealing / random search (full budget).
BUDGET = 1200
#: Reduced budget under --smoke.
SMOKE_BUDGET = 300


def _timed(fn, evaluations):
    """Run ``fn``; return (result, evaluations/sec)."""
    start = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - start
    count = evaluations() if callable(evaluations) else evaluations
    return result, (count / wall if wall > 0 else 0.0)


def run_experiment(mpeg4_app, smoke):
    budget = SMOKE_BUDGET if smoke else BUDGET
    topo = make_topology("mesh", mpeg4_app.num_cores)
    constraints = Constraints()
    rows = {}
    rows["greedy"] = (
        evaluate_mapping(
            mpeg4_app, topo, initial_greedy_mapping(mpeg4_app, topo),
            make_routing("SM"), constraints,
        ),
        None,
    )
    evaluated = []
    rows["swap (paper)"] = _timed(
        lambda: map_onto(
            mpeg4_app, topo, routing="SM", objective="hops",
            constraints=constraints,
            config=MapperConfig(converge=False, swap_rounds=1),
            collector=evaluated,
        ),
        lambda: len(evaluated),
    )
    evaluated_conv = []
    rows["swap converged"] = _timed(
        lambda: map_onto(
            mpeg4_app, topo, routing="SM", objective="hops",
            constraints=constraints,
            config=MapperConfig(converge=True, max_rounds=10),
            collector=evaluated_conv,
        ),
        lambda: len(evaluated_conv),
    )
    # Annealing evaluates 1 seed + up to 15 calibration probes + one
    # candidate per iteration (mesh has >= 2 slots: no skipped moves).
    rows["annealing solo"] = _timed(
        lambda: simulated_annealing_map(
            mpeg4_app, topo, routing="SM", objective="hops",
            constraints=constraints,
            config=AnnealingConfig(iterations=budget, seed=3),
        ),
        budget + 16,
    )
    rows["anneal refine"] = _timed(
        lambda: simulated_annealing_map(
            mpeg4_app, topo, routing="SM", objective="hops",
            constraints=constraints,
            config=AnnealingConfig(iterations=budget, seed=3),
            initial_assignment=rows["swap converged"][0].assignment,
        ),
        budget + 16,
    )
    rows["random search"] = _timed(
        lambda: random_search_map(
            mpeg4_app, topo, routing="SM", objective="hops",
            constraints=constraints, iterations=budget, seed=3,
        ),
        budget,
    )
    return budget, rows


def test_ablation_optimizers(benchmark, mpeg4_app, smoke):
    budget, rows = once(
        benchmark, lambda: run_experiment(mpeg4_app, smoke)
    )

    lines = [
        f"MPEG4 on mesh-3x4, SM routing, hops objective "
        f"(budget {budget} evals)"
    ]
    lines.append(
        f"{'strategy':<16}{'feasible':>9}{'avg hops':>9}{'max load':>10}"
        f"{'evals/s':>10}"
    )
    for name, (ev, rate) in rows.items():
        rate_s = "-" if rate is None else f"{rate:,.0f}"
        lines.append(
            f"{name:<16}{str(ev.feasible):>9}{ev.avg_hops:>9.3f}"
            f"{ev.max_link_load:>10.1f}{rate_s:>10}"
        )
    write_artifact("ablation_optimizers", "\n".join(lines))

    # The converged swap search reaches feasibility; annealing seeded
    # from it stays feasible and can only match or improve it.
    assert rows["swap converged"][0].feasible
    assert rows["anneal refine"][0].feasible
    assert (
        rows["anneal refine"][0].sort_key()
        <= rows["swap converged"][0].sort_key()
    )
    # Every structured search beats the unstructured baselines under the
    # feasibility-first ordering.
    for name in ("swap converged", "anneal refine", "annealing solo"):
        assert rows[name][0].sort_key() <= rows["greedy"][0].sort_key()
    for name in ("swap converged", "anneal refine"):
        assert rows[name][0].sort_key() <= rows["random search"][0].sort_key()
    # Finding worth recording: within this budget the stochastic solo
    # anneal does NOT reliably reach feasibility on this instance —
    # the paper's steepest-descent swap phase is the stronger search
    # for coordinated placement constraints (see EXPERIMENTS.md).
