"""Experiment fig8b — Figure 8(b): network processor latency curves.

Average packet latency versus injection rate (0.1-0.5 flits/cycle) for
the 16-node network processor, each topology driven by its adversarial
traffic pattern (Section 6.2). Paper shape: "the clos clearly
outperforms other topologies" — lowest latency / latest saturation;
the diversity-free butterfly collapses first.
"""

from conftest import once, write_artifact

from repro.simulation.network import SimConfig
from repro.simulation.stats import latency_vs_injection
from repro.simulation.traffic import adversarial_pattern
from repro.topology.library import make_topology

RATES = [0.1, 0.2, 0.3, 0.4, 0.5]
TOPOLOGIES = ("mesh", "torus", "hypercube", "clos", "butterfly")


def run_experiment():
    curves = {}
    for name in TOPOLOGIES:
        topo = make_topology(name, 16)
        pattern = adversarial_pattern(topo)
        reports = latency_vs_injection(
            topo,
            RATES,
            pattern=pattern,
            config=SimConfig(seed=1),
            warmup=500,
            measure=2500,
            drain=2000,
            active_slots=list(range(16)),
        )
        curves[name] = (pattern, reports)
    return curves


def test_fig8b_netproc_latency_curves(benchmark):
    curves = once(benchmark, run_experiment)

    lines = [
        f"{'topology':<12}{'pattern':<16}"
        + "".join(f"r={r:<7}" for r in RATES)
    ]
    for name, (pattern, reports) in curves.items():
        cells = []
        for rep in reports:
            mark = "*" if rep.saturated() else ""
            cells.append(f"{rep.avg_latency:7.1f}{mark:1}")
        lines.append(f"{name:<12}{pattern:<16}" + " ".join(cells))
    lines.append("(* = saturated: <90% of measured packets delivered)")
    write_artifact("fig8b_netproc_latency", "\n".join(lines))

    def latency_at(name, rate_idx):
        rep = curves[name][1][rate_idx]
        return rep.avg_latency if not rep.saturated() else float("inf")

    # Clos outperforms every other topology at the highest rates.
    for idx in (3, 4):  # 0.4 and 0.5 flits/cycle
        clos = latency_at("clos", idx)
        assert clos < float("inf"), "clos must not saturate"
        for name in TOPOLOGIES:
            if name != "clos":
                assert clos <= latency_at(name, idx) + 1e-9
    # Latency grows with injection rate for every topology.
    for name in TOPOLOGIES:
        reports = curves[name][1]
        assert reports[-1].avg_latency >= reports[0].avg_latency
    # The butterfly saturates within the swept range (no path diversity).
    assert curves["butterfly"][1][-1].saturated() or latency_at(
        "butterfly", 4
    ) > 10 * latency_at("clos", 4)
