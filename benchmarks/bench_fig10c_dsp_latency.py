"""Experiment fig10c — Figure 10(c): DSP application simulated latency.

The DSP filter is mapped onto each topology (1000 MB/s links — the app's
600 MB/s stream links exceed the video apps' 500 MB/s assumption, see
EXPERIMENTS.md), the mapped design is simulated with trace-driven
traffic, and average packet latency is compared. Paper shape: "the
butterfly topology indeed has the minimum latency"; the 3-stage Clos
sits at the high end at this light load.
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.constraints import Constraints
from repro.core.mapper import map_onto
from repro.simulation.network import Network, SimConfig
from repro.simulation.traffic import TraceTraffic
from repro.topology.library import make_topology

TOPOLOGIES = ("mesh", "torus", "hypercube", "clos", "butterfly")
CONSTRAINTS = Constraints(link_capacity_mb_s=1000.0)

#: Trace intensity: 2x the nominal rates loads the hottest link at ~0.6
#: flits/cycle, where contention separates the topologies as in the
#: paper's figure (at near-zero load all topologies tie at their
#: zero-load latency).
TRACE_SCALE = 2.0


def simulate(topo, assignment, dsp_app) -> float:
    traffic = TraceTraffic(dsp_app, assignment, scale=TRACE_SCALE, seed=5)
    net = Network(
        topo,
        SimConfig(seed=3),
        active_slots=sorted(assignment.values()),
    )
    net.run(6000, traffic)
    net.drain(max_cycles=30000)
    lats = [p.latency for p in net.delivered if p.latency is not None]
    return sum(lats) / len(lats)


def run_experiment(dsp_app):
    # Bandwidth-minimizing mappings: the paper simulates "the best
    # mappings of other topologies for comparison purposes" — for a
    # latency comparison the relevant best is the least-congested one.
    results = {}
    for name in TOPOLOGIES:
        topo = make_topology(name, dsp_app.num_cores)
        ev = map_onto(
            dsp_app, topo, routing="MP", objective="bandwidth",
            constraints=CONSTRAINTS, config=BENCH_CONFIG,
        )
        results[name] = simulate(ev.topology, ev.assignment, dsp_app)
    return results


def test_fig10c_dsp_simulated_latency(benchmark, dsp_app):
    latencies = once(benchmark, lambda: run_experiment(dsp_app))

    lines = [f"{'topology':<12}{'avg packet latency (cycles)':>30}"]
    for name in TOPOLOGIES:
        lines.append(f"{name:<12}{latencies[name]:>30.1f}")
    write_artifact("fig10c_dsp_latency", "\n".join(lines))

    # Butterfly minimal (paper's headline for Fig. 10(c)).
    assert latencies["butterfly"] == min(latencies.values())
    # Clos is the slowest of the library on this mapped traffic (3
    # stages for every packet), as in the paper's bar chart.
    assert latencies["clos"] == max(latencies.values())
    # All runs are unsaturated: latencies within a sane band.
    for value in latencies.values():
        assert 10.0 < value < 100.0
