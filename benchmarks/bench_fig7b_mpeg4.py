"""Experiment fig7b — Figure 7(b): MPEG4 mappings.

Paper: every topology violates bandwidth under minimum-path routing
(SDRAM flows exceed 500 MB/s), so split-traffic routing is applied; the
butterfly — with no path diversity — has **no feasible mapping**; the
torus has slightly lower hop delay but the mesh wins area and power
(paper values: mesh 2.49 hops / 62.51 mm² / 504.1 mW, torus 2.48 /
67.05 / 541.4, hypercube 2.47 / 66.03 / 546.7, clos 3.0 / 64.38 /
445.4).
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.mapper import MapperConfig
from repro.core.selector import select_topology


def run_experiment(mpeg4_app):
    min_path = select_topology(
        mpeg4_app, routing="MP", objective="hops",
        config=MapperConfig(converge=False),
    )
    split = select_topology(
        mpeg4_app, routing="SM", objective="hops", config=BENCH_CONFIG
    )
    return min_path, split


def test_fig7b_mpeg4(benchmark, mpeg4_app):
    min_path, split = once(benchmark, lambda: run_experiment(mpeg4_app))

    lines = ["-- minimum-path routing --"]
    for row in min_path.table():
        lines.append(
            f"{row['topology']:<20} feasible={row['feasible']} "
            f"max_load={row['max_link_load_mb_s']}"
        )
    lines.append("")
    lines.append("-- split-traffic routing (SM) --")
    lines.append(
        f"{'topology':<20}{'feasible':>9}{'avg hops':>9}{'area mm2':>10}"
        f"{'power mW':>10}"
    )
    for row in split.table():
        lines.append(
            f"{row['topology']:<20}{str(row['feasible']):>9}"
            f"{row['avg_hops']:>9}{row['area_mm2']:>10}{row['power_mw']:>10}"
        )
    write_artifact("fig7b_mpeg4", "\n".join(lines))

    # Shape: min-path infeasible on every topology.
    assert min_path.best is None
    assert all(not ev.feasible for ev in min_path.evaluations.values())
    # Split routing: butterfly alone infeasible.
    evs = {n.split("-")[0]: ev for n, ev in split.evaluations.items()}
    assert not evs["butterfly"].feasible
    assert evs["butterfly"].max_link_load >= 910.0
    for name in ("mesh", "torus", "hypercube", "clos"):
        assert evs[name].feasible, f"{name} should map MPEG4 under SM"
    # Mesh wins area and power against torus & hypercube (paper text).
    assert evs["mesh"].area_mm2 < evs["torus"].area_mm2
    assert evs["mesh"].area_mm2 < evs["hypercube"].area_mm2
    assert evs["mesh"].power_mw < evs["torus"].power_mw
    assert evs["mesh"].power_mw < evs["hypercube"].power_mw
