"""Experiment fig9a — Figure 9(a): minimum bandwidth per routing function.

MPEG4 on the mesh under DO / MP / SM / SA. Paper shape: "When maximum
available link bandwidth is 500 MB/s, only split-traffic routing can be
used for mapping MPEG4" — DO and MP need more than 500 MB/s links (the
910 MB/s SDRAM flow is unsplittable), SM and SA fit under 500.
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.exploration import minimum_bandwidth_per_routing
from repro.topology.library import make_topology


def run_experiment(mpeg4_app):
    topo = make_topology("mesh", mpeg4_app.num_cores)
    sweep = minimum_bandwidth_per_routing(
        mpeg4_app, topo, config=BENCH_CONFIG
    )
    # The paper's operational claim: with 500 MB/s links, split-traffic
    # routing still finds a feasible MPEG4 mapping. Verify it directly
    # with the constraint-driven search (it has the overflow gradient).
    from repro.core.constraints import Constraints
    from repro.core.mapper import map_onto

    sm_at_500 = map_onto(
        mpeg4_app,
        make_topology("mesh", mpeg4_app.num_cores),
        routing="SM",
        objective="hops",
        constraints=Constraints(link_capacity_mb_s=500.0),
        config=BENCH_CONFIG,
    )
    return sweep, sm_at_500


def test_fig9a_routing_function_bandwidth(benchmark, mpeg4_app):
    sweep, sm_at_500 = once(benchmark, lambda: run_experiment(mpeg4_app))

    lines = [f"{'routing':<10}{'min link bandwidth (MB/s)':>28}"]
    for code in ("DO", "MP", "SM", "SA"):
        lines.append(f"{code:<10}{sweep[code]:>28.1f}")
    lines.append(
        f"SM constraint-driven at 500 MB/s: feasible={sm_at_500.feasible} "
        f"(max load {sm_at_500.max_link_load:.1f})"
    )
    write_artifact("fig9a_routing_bw", "\n".join(lines))

    # Monotone ordering DO >= MP >= SM >= SA.
    assert sweep["DO"] >= sweep["MP"] - 1e-6
    assert sweep["MP"] >= sweep["SM"] - 1e-6
    assert sweep["SM"] >= sweep["SA"] - 1e-6
    # Deterministic/min-path routing cannot fit 500 MB/s links: the
    # 910 MB/s SDRAM flow is unsplittable.
    assert sweep["MP"] >= 910.0
    # Split-across-all-paths approaches the 910/2 = 455 splitting floor.
    assert 455.0 - 1e-6 <= sweep["SA"] <= 550.0
    # The operational crossover: split routing maps MPEG4 at 500 MB/s
    # links (verified constraint-driven), deterministic routing cannot.
    assert sm_at_500.feasible
    assert sweep["SM"] <= 650.0
