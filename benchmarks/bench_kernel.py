"""Kernel + full-flow performance benchmark with a committed trajectory.

Measures the two hot paths the integer-indexed kernel PR rewrote:

* **kernel** — simulated cycles/sec of the wormhole simulator, both as
  pure-kernel burst drains (packets pre-queued, ``step(None)`` only) and
  as open-loop runs with a synthetic traffic generator attached;
* **full_flow** — wall-clock seconds of the complete ``run_sunmap``
  selection flow per benchmark application (the Section 6.4 "few
  minutes on a 1 GHz SUN workstation" claim, see
  ``bench_runtime_full_flow.py``).

Results land in ``BENCH_kernel.json`` at the repo root:

* ``baseline`` — the pre-rewrite kernel, measured at the commit before
  this PR on the recording machine (kept verbatim so future PRs have a
  trajectory to regress against);
* ``current`` — the numbers of the checked-out code on the last
  recording machine;
* ``speedup`` — current vs. baseline (geometric mean for cycles/sec,
  aggregate-seconds ratio for the full flow).

Usage::

    python benchmarks/bench_kernel.py            # full run, rewrites current
    python benchmarks/bench_kernel.py --smoke    # reduced budget (CI)
    python benchmarks/bench_kernel.py --smoke --check
        # exit 1 if cycles/sec regressed > 30% vs the committed current

``--check`` compares freshly measured cycles/sec against the committed
``current`` section *before* rewriting it, so a kernel regression fails
CI while normal machine-to-machine variance (30% headroom) does not.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from random import Random

from repro.apps import load_application
from repro.core.constraints import Constraints
from repro.core.mapper import MapperConfig
from repro.simulation.network import Network, SimConfig
from repro.simulation.traffic import SyntheticTraffic
from repro.sunmap import run_sunmap
from repro.topology.library import make_topology

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Acceptable cycles/sec ratio vs the committed numbers before --check
#: fails (a >30% regression).
MIN_CHECK_RATIO = 0.7

KERNEL_CASES = [
    # name, topology, cores, open-loop injection rate
    ("mesh16", "mesh", 16, 0.25),
    ("torus16", "torus", 16, 0.30),
    ("clos12", "clos", 12, 0.20),
]

FLOW_CASES = [
    # app, routing, link capacity (None = paper default)
    ("vopd", "MP", None),
    ("mpeg4", "SM", None),
    ("dsp", "MP", 1000.0),
]


def _calibrate(loops: int = 200_000, reps: int = 3) -> float:
    """Machine-speed proxy: ops/sec of a fixed pure-Python loop.

    Recorded next to every measurement and used by ``--check`` to
    normalize cycles/sec across machines — CI runners are slower than
    the workstation that recorded the committed numbers, and comparing
    raw wall-clock throughput across machines would fail the gate
    without any code regression. The loop's mix (list indexing, dict
    gets, int arithmetic) roughly matches the simulator kernel's.
    """
    best = 0.0
    cells = list(range(64))
    table = {i: i + 1 for i in range(64)}
    for _ in range(reps):
        start = time.perf_counter()
        acc = 0
        get = table.get
        for i in range(loops):
            j = i & 63
            acc += cells[j] + get(j, 0)
        wall = time.perf_counter() - start
        best = max(best, loops / wall)
    return round(best, 1)


def burst_drain(topo_name: str, n: int, bursts: int = 12,
                burst_size: int = 60, seed: int = 13) -> tuple[int, float]:
    """Pure-kernel throughput: inject a packet burst, drain, repeat.

    Packet creation happens between the timed segments, so the metric
    isolates the switch/flit kernel (no traffic-generator cost).
    """
    topo = make_topology(topo_name, n)
    net = Network(topo, SimConfig(seed=1))
    rng = Random(seed)
    slots = net.active_slots
    cycles = 0
    wall = 0.0
    for _ in range(bursts):
        for _ in range(burst_size):
            src, dst = rng.sample(slots, 2)
            net.create_packet(src, dst)
        start = time.perf_counter()
        before = net.cycle
        if not net.drain(max_cycles=100000):
            raise RuntimeError(f"{topo_name} burst failed to drain")
        wall += time.perf_counter() - start
        cycles += net.cycle - before
    return cycles, wall


def open_loop(topo_name: str, n: int, rate: float,
              cycles: int = 4000) -> tuple[int, float]:
    """End-to-end simulated cycles/sec with synthetic traffic attached."""
    topo = make_topology(topo_name, n)
    net = Network(topo, SimConfig(seed=2))
    traffic = SyntheticTraffic("uniform", rate, seed=4)
    start = time.perf_counter()
    net.run(cycles, traffic)
    net.drain(max_cycles=100000)
    wall = time.perf_counter() - start
    return net.cycle, wall


def full_flow(app_name: str, routing: str, capacity) -> tuple[str, float]:
    app = load_application(app_name)
    constraints = (
        Constraints() if capacity is None
        else Constraints(link_capacity_mb_s=capacity)
    )
    start = time.perf_counter()
    report = run_sunmap(
        app, routing=routing, objective="hops", constraints=constraints,
        config=MapperConfig(converge=True, max_rounds=10),
    )
    wall = time.perf_counter() - start
    return report.best_topology_name, wall


def measure(smoke: bool = False, reps: int = 2) -> dict:
    """Measure every workload; best-of-``reps`` to damp machine noise."""
    kernel = {}
    for name, topo, n, rate in KERNEL_CASES:
        if smoke and name != "mesh16":
            continue
        best_burst = 0.0
        best_open = 0.0
        for _ in range(1 if smoke else reps):
            cycles, wall = burst_drain(topo, n, bursts=4 if smoke else 12)
            best_burst = max(best_burst, cycles / wall)
            cycles, wall = open_loop(
                topo, n, rate, cycles=1500 if smoke else 4000
            )
            best_open = max(best_open, cycles / wall)
        kernel[name] = {
            "burst_cycles_per_sec": round(best_burst, 1),
            "open_loop_cycles_per_sec": round(best_open, 1),
        }
    flows = {}
    for app_name, routing, capacity in FLOW_CASES:
        if smoke and app_name != "vopd":
            continue
        best = math.inf
        winner = None
        for _ in range(1 if smoke else reps):
            winner, wall = full_flow(app_name, routing, capacity)
            best = min(best, wall)
        flows[app_name] = {"seconds": round(best, 3), "winner": winner}
    return {
        "kernel": kernel,
        "full_flow": flows,
        "calibration_ops_per_sec": _calibrate(),
    }


def _kernel_ratios(current: dict, reference: dict) -> list[float]:
    """Per-metric cycles/sec ratios for cases present in both runs."""
    ratios = []
    for case, metrics in current.get("kernel", {}).items():
        ref = reference.get("kernel", {}).get(case)
        if not ref:
            continue
        for metric, value in metrics.items():
            if metric in ref and ref[metric]:
                ratios.append(value / ref[metric])
    return ratios


def _geomean(values: list[float]) -> float | None:
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _flow_ratio(current: dict, reference: dict) -> float | None:
    cur = current.get("full_flow", {})
    ref = reference.get("full_flow", {})
    shared = [k for k in cur if k in ref]
    if not shared:
        return None
    cur_total = sum(cur[k]["seconds"] for k in shared)
    ref_total = sum(ref[k]["seconds"] for k in shared)
    return ref_total / cur_total if cur_total else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced budget: one kernel case, one flow, single rep",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if cycles/sec regressed more than 30%% versus the "
        "committed BENCH_kernel.json",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="output path (default: BENCH_kernel.json at the repo root; "
        "--smoke writes BENCH_kernel.smoke.json so a reduced-budget run "
        "never clobbers the committed record)",
    )
    args = parser.parse_args(argv)

    if args.json is not None:
        out_path = Path(args.json)
    elif args.smoke:
        out_path = BENCH_PATH.with_name("BENCH_kernel.smoke.json")
    else:
        out_path = BENCH_PATH

    # The regression gate and the baseline always come from the
    # committed record, wherever the fresh measurement is written.
    committed = {}
    if BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text(encoding="utf-8"))

    current = measure(smoke=args.smoke)

    # Regression gate against the last committed numbers. Raw cycles/sec
    # is normalized by the recorded machine-speed calibration so the
    # gate measures the *code*, not the runner hardware.
    check_failed = False
    if args.check and committed.get("current"):
        ratio = _geomean(_kernel_ratios(current, committed["current"]))
        if ratio is not None:
            committed_cal = committed["current"].get(
                "calibration_ops_per_sec"
            )
            fresh_cal = current.get("calibration_ops_per_sec")
            if committed_cal and fresh_cal:
                machine = fresh_cal / committed_cal
                normalized = ratio / machine
                print(
                    f"cycles/sec vs committed: {ratio:.2f}x raw, machine "
                    f"speed {machine:.2f}x, normalized {normalized:.2f}x "
                    f"(gate: >= {MIN_CHECK_RATIO})"
                )
            else:
                normalized = ratio
                print(
                    f"cycles/sec vs committed: {ratio:.2f}x "
                    f"(no calibration recorded; gate: >= {MIN_CHECK_RATIO})"
                )
            if normalized < MIN_CHECK_RATIO:
                print("PERF REGRESSION: kernel cycles/sec dropped >30%")
                check_failed = True

    baseline = committed.get("baseline", {})
    record = {
        "schema": 1,
        "baseline": baseline,
        "current": current,
        "speedup": {
            "cycles_per_sec": (
                None
                if _geomean(_kernel_ratios(current, baseline)) is None
                else round(_geomean(_kernel_ratios(current, baseline)), 2)
            ),
            "full_flow": (
                None
                if _flow_ratio(current, baseline) is None
                else round(_flow_ratio(current, baseline), 2)
            ),
        },
        "smoke": args.smoke,
    }
    out_path.write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    print(f"wrote {out_path}")
    for case, metrics in current["kernel"].items():
        line = "  ".join(f"{k}={v:,.0f}" for k, v in metrics.items())
        print(f"kernel {case:8s} {line}")
    for app, data in current["full_flow"].items():
        print(f"flow   {app:8s} {data['seconds']:.3f}s  ({data['winner']})")
    if record["speedup"]["cycles_per_sec"] is not None:
        print(
            f"speedup vs pre-rewrite baseline: "
            f"cycles/sec {record['speedup']['cycles_per_sec']}x, "
            f"full flow {record['speedup']['full_flow']}x"
        )
    return 1 if check_failed else 0


if __name__ == "__main__":
    sys.exit(main())
