"""Exact-vs-batch campaign throughput with a committed trajectory.

Measures the campaign fast lane the batched-simulator PR added: the
same paper-application sweeps (vopd / mpeg4 / dsp, application trace,
rates x seeds) run interleaved through both campaign lanes —
``sim_engine="exact"`` (the bit-identical reference kernel, one point
at a time) and ``sim_engine="batch"`` (every point of the sweep
advanced in lockstep as one numpy array program) — and records
campaign points/sec and simulated cycles/sec for each.

Statistical equivalence is *asserted while measuring*: on a shared
seed subset both lanes must detect the same saturation rate per curve,
and pre-saturation latencies (away from the congestion knee, where the
exact kernel's own seed variance is just as wide) must agree within
tolerance. A throughput number measured against a divergent simulator
would be meaningless.

Results land in ``BENCH_batchsim.json`` at the repo root:

* ``current`` — the full-budget sweeps on the recording machine, with
  per-app speedups and their geometric mean (the exact lane is the
  baseline, so no separate baseline section exists);
* ``smoke_reference`` — the same cases at the reduced CI budget,
  recorded by the same full run so ``--smoke --check`` compares
  like-for-like batch widths (batch points/sec grows with batch size).

Usage::

    python benchmarks/bench_batchsim.py            # full run, rewrites current
    python benchmarks/bench_batchsim.py --smoke    # reduced budget (CI)
    python benchmarks/bench_batchsim.py --smoke --check
        # exit 1 if points/sec regressed > 30% vs the committed record

``--check`` normalizes by the recorded machine-speed calibration (same
scheme as ``bench_kernel.py``), so the gate measures the code, not the
runner hardware. A full-budget ``--check`` additionally enforces the
acceptance floor: batch points/sec >= 5x exact, geomean across apps.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

from repro.apps import load_application
from repro.simulation.campaign import CampaignConfig, run_campaign
from repro.topology.library import make_topology

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_batchsim.json"

#: Acceptable points/sec ratio vs the committed numbers before --check
#: fails (a >30% regression).
MIN_CHECK_RATIO = 0.7

#: Acceptance floor (full budget only): batch/exact points-per-second
#: geomean across the paper apps.
MIN_SPEEDUP_GEOMEAN = 5.0

#: Pre-knee latency agreement between the lanes. Measured agreement on
#: these sweeps is 0.1-7.2%; the headroom covers seed noise, not drift.
LATENCY_TOLERANCE = 0.20

#: Paper applications; every fabric is the standard mesh for the app's
#: core count, mapped identically (core i -> slot i) in both lanes.
APPS = ("vopd", "mpeg4", "dsp")

#: Measurement protocol per point (cycles).
PROTOCOL = {"warmup": 200, "measure": 800, "drain": 600}

#: Full budget: 10 rates x 24 seeds = 240-point batches per app. The
#: exact lane's per-point cost is rate-independent, so it is timed on a
#: 2-seed subset of the same sweep (20 points) to keep the full run
#: under a minute; points/sec is a per-point rate either way. The same
#: subset doubles as the (fully deterministic) equivalence probe.
FULL_RATES = tuple(round(0.05 * i, 2) for i in range(1, 11))
FULL_SEEDS = tuple(range(1, 25))
FULL_EXACT_SEEDS = (1, 2)

#: Smoke budget (CI): 3 rates x 8 seeds = 24-point batches, exact on
#: one seed. Gated against ``smoke_reference``, never against the
#: full-budget numbers — batch throughput scales with batch width.
SMOKE_RATES = (0.05, 0.1, 0.2)
SMOKE_SEEDS = tuple(range(1, 9))
SMOKE_EXACT_SEEDS = (1, 2)


def _calibrate(loops: int = 200_000, reps: int = 3) -> float:
    """Machine-speed proxy (same loop mix as ``bench_kernel.py``)."""
    best = 0.0
    cells = list(range(64))
    table = {i: i + 1 for i in range(64)}
    for _ in range(reps):
        start = time.perf_counter()
        acc = 0
        get = table.get
        for i in range(loops):
            j = i & 63
            acc += cells[j] + get(j, 0)
        wall = time.perf_counter() - start
        best = max(best, loops / wall)
    return round(best, 1)


def _sweep(app_name: str, rates, seeds, sim_engine: str):
    """Run one campaign sweep; returns (result, points/sec, cycles/sec)."""
    core_graph = load_application(app_name)
    topology = make_topology("mesh", core_graph.num_cores)
    assignment = {i: i for i in range(core_graph.num_cores)}
    config = CampaignConfig(
        rates=rates,
        patterns=("app",),
        seeds=seeds,
        sim_engine=sim_engine,
        **PROTOCOL,
    )
    result = run_campaign(
        topology,
        core_graph=core_graph,
        assignment=assignment,
        config=config,
    )
    pps = result.runtime["points_per_sec"]
    cycles_per_point = sum(PROTOCOL.values())
    return result, pps, pps * cycles_per_point


def _assert_equivalent(app_name: str, exact, batch) -> float:
    """Gate the lanes' statistical agreement; returns the worst rel err.

    Per curve: identical detected saturation rate, and pre-saturation
    average latencies within :data:`LATENCY_TOLERANCE` — comparing only
    points clear of the congestion knee (both lanes delivering >= 99%,
    exact latency within 3x the curve's zero-load baseline, rate below
    80% of any detected saturation), where the exact kernel's own
    seed-to-seed variance is as wide as any lane difference.

    Both lanes are deterministic given the seed set, so this gate never
    flakes — but the saturation detector discretizes a chaotic knee
    onto the rate grid, and when a curve's knee lands *on* a swept rate
    (mpeg4 near 0.25-0.3) the crossing is borderline and seed-set
    dependent in either lane. The recorded protocol pins the probe
    seeds, which is what makes exact equality a meaningful gate.
    """
    worst = 0.0
    for pattern, exact_curve in exact.curves.items():
        batch_curve = batch.curves[pattern]
        if exact_curve.saturation_rate != batch_curve.saturation_rate:
            raise SystemExit(
                f"EQUIVALENCE FAIL: {app_name}/{pattern} saturation "
                f"{exact_curve.saturation_rate} (exact) != "
                f"{batch_curve.saturation_rate} (batch)"
            )
        sat = exact_curve.saturation_rate
        base = exact_curve.avg_latency[0]
        for i, rate in enumerate(exact_curve.rates):
            exact_lat = exact_curve.avg_latency[i]
            batch_lat = batch_curve.avg_latency[i]
            near_knee = (
                (sat is not None and rate >= 0.8 * sat)
                # No detected saturation: the top of the swept range
                # may still sit on the (undetected) knee's shoulder.
                or (sat is None and rate >= 0.8 * exact_curve.rates[-1])
                or exact_curve.delivered[i] < 0.99
                or batch_curve.delivered[i] < 0.99
                or not math.isfinite(exact_lat)
                or exact_lat > 3.0 * base
            )
            if near_knee:
                continue
            rel = abs(batch_lat - exact_lat) / exact_lat
            worst = max(worst, rel)
            if rel > LATENCY_TOLERANCE:
                raise SystemExit(
                    f"EQUIVALENCE FAIL: {app_name}/{pattern}@{rate:g} "
                    f"latency {exact_lat:.2f} (exact) vs {batch_lat:.2f} "
                    f"(batch): rel err {rel:.1%} > {LATENCY_TOLERANCE:.0%}"
                )
    return worst


def _measure_budget(rates, seeds, exact_seeds) -> dict:
    """One interleaved exact-vs-batch pass over every app."""
    cases = {}
    for app_name in APPS:
        # Interleaved: the lanes run back-to-back per app, so slow
        # machine drift (thermal, noisy neighbours) hits both equally.
        exact, exact_pps, exact_cps = _sweep(
            app_name, rates, exact_seeds, "exact"
        )
        batch, batch_pps, batch_cps = _sweep(
            app_name, rates, seeds, "batch"
        )
        # Equivalence on the shared seed subset: same rates, same
        # seeds, so curve-level statistics are directly comparable.
        batch_eq, _, _ = _sweep(app_name, rates, exact_seeds, "batch")
        worst_rel = _assert_equivalent(app_name, exact, batch_eq)
        cases[app_name] = {
            "exact_points": len(exact.points),
            "batch_points": len(batch.points),
            "exact_points_per_sec": exact_pps,
            "batch_points_per_sec": batch_pps,
            "exact_cycles_per_sec": round(exact_cps, 1),
            "batch_cycles_per_sec": round(batch_cps, 1),
            "speedup": round(batch_pps / exact_pps, 2),
            "max_pre_knee_latency_rel_err": round(worst_rel, 4),
            "saturation": {
                p: c.saturation_rate for p, c in exact.curves.items()
            },
        }
    speedups = [case["speedup"] for case in cases.values()]
    return {
        "cases": cases,
        "speedup_geomean": round(_geomean(speedups), 2),
        "protocol": dict(PROTOCOL),
        "rates": list(rates),
        "seeds": len(seeds),
        "exact_seeds": len(exact_seeds),
    }


def measure(smoke: bool = False) -> dict:
    if smoke:
        budget = _measure_budget(SMOKE_RATES, SMOKE_SEEDS, SMOKE_EXACT_SEEDS)
    else:
        budget = _measure_budget(FULL_RATES, FULL_SEEDS, FULL_EXACT_SEEDS)
    budget["calibration_ops_per_sec"] = _calibrate()
    return budget


def _geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _throughput_ratios(current: dict, reference: dict) -> list[float]:
    """Per-case points/sec ratios for apps present in both records."""
    ratios = []
    for app_name, metrics in current.get("cases", {}).items():
        ref = reference.get("cases", {}).get(app_name)
        if not ref:
            continue
        for metric in ("exact_points_per_sec", "batch_points_per_sec"):
            if ref.get(metric):
                ratios.append(metrics[metric] / ref[metric])
    return ratios


def _check(current: dict, reference: dict) -> bool:
    """True when throughput regressed beyond the normalized gate."""
    ratios = _throughput_ratios(current, reference)
    if not ratios:
        print("no committed reference cases to check against")
        return False
    ratio = _geomean(ratios)
    committed_cal = reference.get("calibration_ops_per_sec")
    fresh_cal = current.get("calibration_ops_per_sec")
    if committed_cal and fresh_cal:
        machine = fresh_cal / committed_cal
        normalized = ratio / machine
        print(
            f"points/sec vs committed: {ratio:.2f}x raw, machine speed "
            f"{machine:.2f}x, normalized {normalized:.2f}x "
            f"(gate: >= {MIN_CHECK_RATIO})"
        )
    else:
        normalized = ratio
        print(
            f"points/sec vs committed: {ratio:.2f}x "
            f"(no calibration recorded; gate: >= {MIN_CHECK_RATIO})"
        )
    if normalized < MIN_CHECK_RATIO:
        print("PERF REGRESSION: campaign points/sec dropped >30%")
        return True
    return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced budget: 3 rates x 8 seeds per app (CI)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if points/sec regressed more than 30%% versus the "
        "committed BENCH_batchsim.json (full runs also enforce the "
        ">= 5x speedup-geomean acceptance floor)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="output path (default: BENCH_batchsim.json at the repo "
        "root; --smoke writes BENCH_batchsim.smoke.json so a reduced-"
        "budget run never clobbers the committed record)",
    )
    args = parser.parse_args(argv)

    if args.json is not None:
        out_path = Path(args.json)
    elif args.smoke:
        out_path = BENCH_PATH.with_name("BENCH_batchsim.smoke.json")
    else:
        out_path = BENCH_PATH

    committed = {}
    if BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text(encoding="utf-8"))

    current = measure(smoke=args.smoke)

    check_failed = False
    if args.check:
        # Smoke runs gate against the committed smoke-budget numbers,
        # full runs against the committed full-budget numbers: batch
        # points/sec scales with batch width, so cross-budget ratios
        # would measure the budget, not the code.
        reference = committed.get(
            "smoke_reference" if args.smoke else "current", {}
        )
        check_failed = _check(current, reference)
        if not args.smoke and current["speedup_geomean"] < MIN_SPEEDUP_GEOMEAN:
            print(
                f"SPEEDUP FLOOR FAIL: geomean "
                f"{current['speedup_geomean']}x < {MIN_SPEEDUP_GEOMEAN}x"
            )
            check_failed = True

    if args.smoke:
        record = {"schema": 1, "current": current, "smoke": True}
    else:
        # A full run also re-records the smoke budget, so CI smoke
        # checks always have a like-for-like reference from the same
        # machine and commit.
        smoke_reference = measure(smoke=True)
        record = {
            "schema": 1,
            "current": current,
            "smoke_reference": smoke_reference,
            "smoke": False,
        }
    out_path.write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    print(f"wrote {out_path}")
    for app_name, case in current["cases"].items():
        print(
            f"{app_name:8s} exact {case['exact_points_per_sec']:8.1f} pts/s"
            f"  batch {case['batch_points_per_sec']:8.1f} pts/s"
            f"  speedup {case['speedup']:5.2f}x"
            f"  (pre-knee rel err {case['max_pre_knee_latency_rel_err']:.1%})"
        )
    print(f"speedup geomean: {current['speedup_geomean']}x")
    return 1 if check_failed else 0


if __name__ == "__main__":
    sys.exit(main())
