"""Experiment fig9b — Figure 9(b): area-power Pareto points.

The swap phase's evaluated mappings of MPEG4 on the mesh span an
area-power plane; the Pareto frontier is "the set of Pareto points for
the mappings from which the optimum design point can be chosen".
Expected shape: a non-trivial frontier (multiple non-dominated points)
inside the explored cloud.
"""

from conftest import BENCH_CONFIG, once, write_artifact

from repro.core.exploration import area_power_exploration
from repro.topology.library import make_topology


def run_experiment(mpeg4_app):
    topo = make_topology("mesh", mpeg4_app.num_cores)
    return area_power_exploration(
        mpeg4_app, topo, routing="SM", config=BENCH_CONFIG
    )


def test_fig9b_area_power_pareto(benchmark, mpeg4_app):
    points, front = once(benchmark, lambda: run_experiment(mpeg4_app))

    lines = [f"explored feasible mappings: {len(points)}"]
    lines.append(f"Pareto-optimal points: {len(front)}")
    lines.append(f"{'area mm2':>10}{'power mW':>10}{'avg hops':>10}")
    for p in front:
        lines.append(
            f"{p.area_mm2:>10.2f}{p.power_mw:>10.1f}{p.avg_hops:>10.2f}"
        )
    write_artifact("fig9b_pareto", "\n".join(lines))

    assert len(points) >= 10, "swap exploration should visit many mappings"
    assert front, "frontier must not be empty"
    assert set(front) <= set(points)
    # The cloud is non-degenerate: dominated points exist.
    assert len(front) < len(points)
    # No frontier point is dominated.
    for f in front:
        assert not any(p.dominates(f) for p in points)
