"""Experiment abl-swap — value of the pairwise-swap phase (Fig. 5 steps
9-10) and of the convergent extension.

Compares, on VOPD x {mesh, butterfly}:
  greedy seed only  ->  single swap pass (the paper's algorithm)
  ->  swap-until-converged (this reproduction's default).

Expected: each stage is no worse than the previous; the converged search
is what finds the bandwidth-feasible butterfly placement.

Alongside the quality numbers the experiment reports the search's
mapping-evaluations/sec (candidates evaluated per wall second through
the incremental delta engine), so regressions in evaluation throughput
are visible in the ablation output too. ``--smoke`` restricts the run
to the mesh case for CI.
"""

import time

from conftest import once, write_artifact

from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping
from repro.core.greedy import initial_greedy_mapping
from repro.core.mapper import MapperConfig, map_onto
from repro.routing.library import make_routing
from repro.topology.library import make_topology


def _timed_search(app, topo, config):
    """(evaluation, evaluations/sec) of one swap search."""
    evaluated = []
    start = time.perf_counter()
    ev = map_onto(
        app, topo, routing="MP", objective="hops",
        config=config, collector=evaluated,
    )
    wall = time.perf_counter() - start
    rate = len(evaluated) / wall if wall > 0 else 0.0
    return ev, rate


def run_experiment(vopd_app, smoke):
    rows = {}
    for name in ("mesh",) if smoke else ("mesh", "butterfly"):
        topo = make_topology(name, vopd_app.num_cores)
        greedy_ev = evaluate_mapping(
            vopd_app, topo, initial_greedy_mapping(vopd_app, topo),
            make_routing("MP"), Constraints(),
        )
        single = _timed_search(
            vopd_app, topo, MapperConfig(converge=False, swap_rounds=1)
        )
        converged = _timed_search(
            vopd_app, topo, MapperConfig(converge=True, max_rounds=10)
        )
        rows[name] = ((greedy_ev, None), single, converged)
    return rows


def test_ablation_swap_improvement(benchmark, vopd_app, smoke):
    rows = once(benchmark, lambda: run_experiment(vopd_app, smoke))

    lines = [
        f"{'topology':<12}{'stage':<14}{'avg hops':>9}{'max load':>10}"
        f"{'feasible':>9}{'evals/s':>10}"
    ]
    for name, stages in rows.items():
        for label, (ev, rate) in zip(
            ("greedy", "one-pass", "converged"), stages
        ):
            rate_s = "-" if rate is None else f"{rate:,.0f}"
            lines.append(
                f"{name:<12}{label:<14}{ev.avg_hops:>9.3f}"
                f"{ev.max_link_load:>10.1f}{str(ev.feasible):>9}"
                f"{rate_s:>10}"
            )
    write_artifact("ablation_swap", "\n".join(lines))

    for name, ((greedy_ev, _), (single, _), (converged, _)) in rows.items():
        assert single.sort_key() <= greedy_ev.sort_key()
        assert converged.sort_key() <= single.sort_key()
    # The converged search is what makes the butterfly feasible.
    if "butterfly" in rows:
        assert rows["butterfly"][2][0].feasible
