"""Experiment abl-swap — value of the pairwise-swap phase (Fig. 5 steps
9-10) and of the convergent extension.

Compares, on VOPD x {mesh, butterfly}:
  greedy seed only  ->  single swap pass (the paper's algorithm)
  ->  swap-until-converged (this reproduction's default).

Expected: each stage is no worse than the previous; the converged search
is what finds the bandwidth-feasible butterfly placement.
"""

from conftest import once, write_artifact

from repro.core.constraints import Constraints
from repro.core.evaluate import evaluate_mapping
from repro.core.greedy import initial_greedy_mapping
from repro.core.mapper import MapperConfig, map_onto
from repro.routing.library import make_routing
from repro.topology.library import make_topology


def run_experiment(vopd_app):
    rows = {}
    for name in ("mesh", "butterfly"):
        topo = make_topology(name, vopd_app.num_cores)
        greedy_ev = evaluate_mapping(
            vopd_app, topo, initial_greedy_mapping(vopd_app, topo),
            make_routing("MP"), Constraints(),
        )
        single = map_onto(
            vopd_app, topo, routing="MP", objective="hops",
            config=MapperConfig(converge=False, swap_rounds=1),
        )
        converged = map_onto(
            vopd_app, topo, routing="MP", objective="hops",
            config=MapperConfig(converge=True, max_rounds=10),
        )
        rows[name] = (greedy_ev, single, converged)
    return rows


def test_ablation_swap_improvement(benchmark, vopd_app):
    rows = once(benchmark, lambda: run_experiment(vopd_app))

    lines = [
        f"{'topology':<12}{'stage':<14}{'avg hops':>9}{'max load':>10}"
        f"{'feasible':>9}"
    ]
    for name, stages in rows.items():
        for label, ev in zip(("greedy", "one-pass", "converged"), stages):
            lines.append(
                f"{name:<12}{label:<14}{ev.avg_hops:>9.3f}"
                f"{ev.max_link_load:>10.1f}{str(ev.feasible):>9}"
            )
    write_artifact("ablation_swap", "\n".join(lines))

    for name, (greedy_ev, single, converged) in rows.items():
        assert single.sort_key() <= greedy_ev.sort_key()
        assert converged.sort_key() <= single.sort_key()
    # The converged search is what makes the butterfly feasible.
    assert rows["butterfly"][2].feasible
