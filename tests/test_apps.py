"""Benchmark applications and synthetic generators."""

import pytest

from repro.apps import APPLICATIONS, load_application
from repro.apps.synthetic import (
    hotspot_core_graph,
    pipeline_core_graph,
    random_core_graph,
)


class TestRegistry:
    def test_all_four_paper_apps_registered(self):
        assert set(APPLICATIONS) == {"vopd", "mpeg4", "dsp", "netproc"}

    def test_load_application(self):
        app = load_application("VOPD")  # case-insensitive
        assert app.num_cores == 12

    def test_unknown_application(self):
        with pytest.raises(KeyError):
            load_application("quake")

    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_apps_validate_and_have_positive_areas(self, name):
        app = load_application(name)
        app.validate()
        for core in app.cores:
            assert core.area_mm2 > 0

    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_apps_are_freshly_built_each_call(self, name):
        a = load_application(name)
        b = load_application(name)
        assert a is not b
        assert a.flows() == b.flows()


class TestRandomCoreGraph:
    def test_reproducible_given_seed(self):
        a = random_core_graph(8, seed=5)
        b = random_core_graph(8, seed=5)
        assert a.flows() == b.flows()

    def test_different_seeds_differ(self):
        a = random_core_graph(8, seed=1)
        b = random_core_graph(8, seed=2)
        assert a.flows() != b.flows()

    def test_connected_backbone(self):
        import networkx as nx

        app = random_core_graph(10, seed=3)
        g = app.to_networkx().to_undirected()
        assert nx.is_connected(g)

    def test_flow_count_honored(self):
        app = random_core_graph(8, n_flows=12, seed=4)
        assert app.num_flows == 12

    def test_bandwidth_range_honored(self):
        app = random_core_graph(8, seed=6, bandwidth_range=(50.0, 60.0))
        for value in app.flows().values():
            assert 50.0 <= value <= 60.0

    def test_too_few_cores_rejected(self):
        with pytest.raises(ValueError):
            random_core_graph(1)


class TestStructuredGenerators:
    def test_pipeline_is_a_chain(self):
        app = pipeline_core_graph(6, bandwidth=123.0)
        assert app.num_flows == 5
        assert all(v == 123.0 for v in app.flows().values())
        assert app.comm(0, 1) > 0 and app.comm(1, 0) == 0

    def test_hotspot_concentrates_on_core_zero(self):
        app = hotspot_core_graph(8)
        inbound = sum(
            v for (s, d), v in app.flows().items() if d == 0
        )
        outbound_each = [
            v for (s, d), v in app.flows().items() if s == 0
        ]
        assert inbound == pytest.approx(600.0)
        assert len(outbound_each) == 7

    def test_generators_map_end_to_end(self):
        from repro.core.mapper import MapperConfig, map_onto
        from repro.topology.library import make_topology

        app = hotspot_core_graph(6, hotspot_bandwidth=300.0)
        topo = make_topology("mesh", 6)
        ev = map_onto(
            app, topo, config=MapperConfig(converge=False)
        )
        assert ev.feasible
