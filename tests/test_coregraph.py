"""Unit tests for the core graph model (paper Definition 1)."""

import networkx as nx
import pytest

from repro.core.coregraph import CoreGraph
from repro.errors import CoreGraphError


def make_pair() -> CoreGraph:
    g = CoreGraph("pair")
    g.add_core("a", area_mm2=2.0)
    g.add_core("b", area_mm2=3.0)
    g.add_flow("a", "b", 100.0)
    return g


class TestConstruction:
    def test_add_core_returns_increasing_indices(self):
        g = CoreGraph("x")
        assert g.add_core("a") == 0
        assert g.add_core("b") == 1
        assert g.add_core("c") == 2

    def test_duplicate_name_rejected(self):
        g = CoreGraph("x")
        g.add_core("a")
        with pytest.raises(CoreGraphError):
            g.add_core("a")

    def test_non_positive_area_rejected(self):
        g = CoreGraph("x")
        with pytest.raises(CoreGraphError):
            g.add_core("a", area_mm2=0.0)
        with pytest.raises(CoreGraphError):
            g.add_core("b", area_mm2=-1.0)

    def test_bad_aspect_bounds_rejected(self):
        g = CoreGraph("x")
        with pytest.raises(CoreGraphError):
            g.add_core("a", aspect_min=0.0)
        with pytest.raises(CoreGraphError):
            g.add_core("b", aspect_min=2.0, aspect_max=1.0)

    def test_self_flow_rejected(self):
        g = CoreGraph("x")
        g.add_core("a")
        with pytest.raises(CoreGraphError):
            g.add_flow("a", "a", 10.0)

    def test_non_positive_flow_rejected(self):
        g = make_pair()
        with pytest.raises(CoreGraphError):
            g.add_flow("b", "a", 0.0)

    def test_flow_by_index_and_name_equivalent(self):
        g = CoreGraph("x")
        g.add_core("a")
        g.add_core("b")
        g.add_flow(0, 1, 10.0)
        g.add_flow("a", "b", 5.0)
        assert g.comm("a", "b") == pytest.approx(15.0)

    def test_parallel_flows_accumulate(self):
        g = make_pair()
        g.add_flow("a", "b", 50.0)
        assert g.comm("a", "b") == pytest.approx(150.0)
        assert g.num_flows == 1

    def test_unknown_core_lookup(self):
        g = make_pair()
        with pytest.raises(CoreGraphError):
            g.core_index("zz")
        with pytest.raises(CoreGraphError):
            g.core_index(7)


class TestQueries:
    def test_comm_defaults_to_zero(self):
        g = make_pair()
        assert g.comm("b", "a") == 0.0

    def test_total_bandwidth(self):
        g = make_pair()
        g.add_flow("b", "a", 25.0)
        assert g.total_bandwidth() == pytest.approx(125.0)

    def test_core_traffic_counts_both_directions(self):
        g = make_pair()
        g.add_flow("b", "a", 30.0)
        assert g.core_traffic("a") == pytest.approx(130.0)
        assert g.core_traffic("b") == pytest.approx(130.0)

    def test_comm_between_is_symmetric(self):
        g = make_pair()
        g.add_flow("b", "a", 30.0)
        assert g.comm_between(0, 1) == g.comm_between(1, 0)
        assert g.comm_between(0, 1) == pytest.approx(130.0)

    def test_total_core_area(self):
        g = make_pair()
        assert g.total_core_area() == pytest.approx(5.0)

    def test_to_networkx_round_trip(self):
        g = make_pair()
        nxg = g.to_networkx()
        assert isinstance(nxg, nx.DiGraph)
        assert nxg.number_of_nodes() == 2
        assert nxg.edges[0, 1]["comm"] == pytest.approx(100.0)

    def test_repr_mentions_name(self):
        assert "pair" in repr(make_pair())


class TestCommodities:
    def test_sorted_decreasing(self):
        g = CoreGraph("x")
        for name in "abcd":
            g.add_core(name)
        g.add_flow("a", "b", 10.0)
        g.add_flow("b", "c", 500.0)
        g.add_flow("c", "d", 100.0)
        values = [c.value for c in g.commodities()]
        assert values == sorted(values, reverse=True)

    def test_commodity_indices_are_contiguous(self):
        g = make_pair()
        g.add_flow("b", "a", 10.0)
        indices = [c.index for c in g.commodities()]
        assert indices == [0, 1]

    def test_deterministic_tie_order(self):
        g = CoreGraph("x")
        for name in "abcd":
            g.add_core(name)
        g.add_flow("c", "d", 100.0)
        g.add_flow("a", "b", 100.0)
        first = [(c.src, c.dst) for c in g.commodities()]
        second = [(c.src, c.dst) for c in g.commodities()]
        assert first == second
        assert first[0] == (0, 1)  # ties break by (src, dst)

    def test_commodity_endpoints_and_values(self):
        g = make_pair()
        (c,) = g.commodities()
        assert (c.src, c.dst, c.value) == (0, 1, 100.0)


class TestValidate:
    def test_empty_graph_invalid(self):
        with pytest.raises(CoreGraphError):
            CoreGraph("x").validate()

    def test_valid_graph_passes(self):
        make_pair().validate()


class TestPaperApps:
    def test_vopd_shape(self, vopd_app):
        assert vopd_app.num_cores == 12
        assert vopd_app.num_flows == 14
        assert vopd_app.total_bandwidth() == pytest.approx(3478.0)

    def test_vopd_bandwidth_multiset_matches_figure(self, vopd_app):
        values = sorted(vopd_app.flows().values(), reverse=True)
        assert values == [
            500.0, 362.0, 362.0, 362.0, 357.0, 353.0, 313.0, 313.0,
            300.0, 94.0, 70.0, 49.0, 27.0, 16.0,
        ]

    def test_mpeg4_shape(self, mpeg4_app):
        assert mpeg4_app.num_cores == 12
        assert mpeg4_app.num_flows == 13

    def test_mpeg4_bandwidth_multiset_matches_figure(self, mpeg4_app):
        values = sorted(mpeg4_app.flows().values(), reverse=True)
        assert values == [
            910.0, 670.0, 600.0, 600.0, 500.0, 250.0, 190.0, 173.0,
            40.0, 40.0, 32.0, 0.5, 0.5,
        ]

    def test_mpeg4_has_flows_exceeding_link_capacity(self, mpeg4_app):
        over = [v for v in mpeg4_app.flows().values() if v > 500.0]
        assert len(over) == 4  # the reason min-path routing fails

    def test_dsp_shape(self, dsp_app):
        assert dsp_app.num_cores == 6
        values = sorted(dsp_app.flows().values(), reverse=True)
        assert values == [600.0, 600.0] + [200.0] * 6

    def test_netproc_shape(self, netproc_app):
        assert netproc_app.num_cores == 16
        assert netproc_app.num_flows == 48
        # Every node sources the same three flows.
        assert netproc_app.core_traffic(0) == netproc_app.core_traffic(7)
