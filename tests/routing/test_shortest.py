"""Load-aware shortest-path helpers."""

import networkx as nx
from repro.routing.loads import EdgeLoads
from repro.routing.shortest import (
    load_then_hops,
    min_hop_then_load,
    routing_view,
)
from repro.topology.base import term
from repro.topology.library import make_topology


def diamond() -> nx.DiGraph:
    """s -> {a, b} -> t plus a long detour s -> c -> d -> t."""
    g = nx.DiGraph()
    for u, v in [
        ("s", "a"), ("a", "t"),
        ("s", "b"), ("b", "t"),
        ("s", "c"), ("c", "d"), ("d", "t"),
    ]:
        g.add_edge(u, v)
    return g


class TestMinHopThenLoad:
    def test_prefers_min_hops_despite_load(self):
        g = diamond()
        loads = EdgeLoads()
        loads.add("s", "a", 1000.0)
        loads.add("a", "t", 1000.0)
        loads.add("s", "b", 1000.0)
        loads.add("b", "t", 1000.0)
        path = min_hop_then_load(g, "s", "t", loads, 10.0)
        assert len(path) == 3  # never takes the 4-node detour

    def test_breaks_ties_by_load(self):
        g = diamond()
        loads = EdgeLoads()
        loads.add("s", "a", 500.0)
        path = min_hop_then_load(g, "s", "t", loads, 10.0)
        assert path == ["s", "b", "t"]

    def test_zero_load_deterministic(self):
        g = diamond()
        p1 = min_hop_then_load(g, "s", "t", EdgeLoads(), 1.0)
        p2 = min_hop_then_load(g, "s", "t", EdgeLoads(), 1.0)
        assert p1 == p2


class TestLoadThenHops:
    def test_takes_detour_to_avoid_load(self):
        g = diamond()
        loads = EdgeLoads()
        for u, v in [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t")]:
            loads.add(u, v, 500.0)
        path = load_then_hops(g, "s", "t", loads, 10.0)
        assert path == ["s", "c", "d", "t"]

    def test_zero_load_is_minimal(self):
        g = diamond()
        path = load_then_hops(g, "s", "t", EdgeLoads(), 10.0)
        assert len(path) == 3


class TestRoutingView:
    def test_excludes_other_terminals(self):
        topo = make_topology("mesh", 6)
        view = routing_view(topo.graph, term(0), term(5))
        assert term(0) in view and term(5) in view
        assert term(3) not in view

    def test_keeps_all_switches(self):
        topo = make_topology("mesh", 6)
        view = routing_view(topo.graph, term(0), term(5))
        assert all(sw in view for sw in topo.switches)
