"""Behavioural tests for the four routing functions (DO, MP, SM, SA)."""

import pytest

from repro.core.coregraph import CoreGraph
from repro.errors import UnsupportedRoutingError
from repro.routing.base import RoutingResult
from repro.routing.library import ROUTING_CODES, all_routings, make_routing
from repro.routing.loads import EdgeLoads
from repro.topology.base import is_switch, term
from repro.topology.library import make_topology


def toy_app() -> CoreGraph:
    g = CoreGraph("toy")
    for i in range(12):
        g.add_core(f"c{i}")
    g.add_flow("c0", "c5", 800.0)
    g.add_flow("c1", "c2", 300.0)
    g.add_flow("c3", "c7", 200.0)
    g.add_flow("c0", "c11", 100.0)
    return g


IDENTITY = {i: i for i in range(12)}


def route(topo_name: str, code: str) -> RoutingResult:
    topo = make_topology(topo_name, 12)
    routing = make_routing(code)
    return routing.route_all(topo, IDENTITY, toy_app().commodities())


class TestRegistry:
    def test_all_codes_available(self):
        assert [r.code for r in all_routings()] == list(ROUTING_CODES)

    def test_unknown_code_rejected(self):
        with pytest.raises(UnsupportedRoutingError):
            make_routing("XX")

    def test_case_insensitive(self):
        assert make_routing("mp").code == "MP"


class TestConservation:
    @pytest.mark.parametrize("topo_name", ["mesh", "torus", "hypercube", "clos"])
    @pytest.mark.parametrize("code", ["MP", "SM", "SA"])
    def test_flow_conservation(self, topo_name, code):
        result = route(topo_name, code)
        for rc in result.routed:
            assert rc.validate_conservation()

    @pytest.mark.parametrize("code", ["DO", "MP", "SM", "SA"])
    def test_paths_are_valid_edges(self, code):
        topo = make_topology("mesh", 12)
        result = make_routing(code).route_all(
            topo, IDENTITY, toy_app().commodities()
        )
        for rc in result.routed:
            for path, _bw in rc.paths:
                assert path[0] == term(rc.src_slot)
                assert path[-1] == term(rc.dst_slot)
                for u, v in zip(path, path[1:]):
                    assert topo.graph.has_edge(u, v)

    @pytest.mark.parametrize("code", ["MP", "SM", "SA"])
    def test_no_intermediate_terminals(self, code):
        topo = make_topology("mesh", 12)
        result = make_routing(code).route_all(
            topo, IDENTITY, toy_app().commodities()
        )
        for rc in result.routed:
            for path, _bw in rc.paths:
                assert all(is_switch(n) for n in path[1:-1])

    def test_loads_match_paths(self):
        result = route("mesh", "MP")
        rebuilt = EdgeLoads()
        for rc in result.routed:
            for path, bw in rc.paths:
                rebuilt.add_path(path, bw)
        for (u, v), load in result.loads.items():
            assert rebuilt.get(u, v) == pytest.approx(load)


class TestDimensionOrdered:
    def test_do_follows_dor_path(self):
        topo = make_topology("mesh", 12)
        result = route("mesh", "DO")
        for rc in result.routed:
            (path, bw) = rc.paths[0]
            assert path == topo.dor_path(rc.src_slot, rc.dst_slot)
            assert bw == rc.commodity.value

    def test_do_unsupported_on_clos(self):
        topo = make_topology("clos", 12)
        with pytest.raises(UnsupportedRoutingError):
            make_routing("DO").route_all(
                topo, IDENTITY, toy_app().commodities()
            )

    def test_do_is_load_blind(self):
        """Two DO runs with different commodity orders give identical
        paths (no load awareness)."""
        topo = make_topology("mesh", 12)
        comms = toy_app().commodities()
        r1 = make_routing("DO").route_all(topo, IDENTITY, comms)
        r2 = make_routing("DO").route_all(topo, IDENTITY, list(reversed(comms)))
        paths1 = {rc.commodity.index: rc.paths[0][0] for rc in r1.routed}
        paths2 = {rc.commodity.index: rc.paths[0][0] for rc in r2.routed}
        assert paths1 == paths2


class TestMinimumPath:
    @pytest.mark.parametrize("topo_name", ["mesh", "torus", "hypercube"])
    def test_mp_paths_are_minimal(self, topo_name):
        topo = make_topology(topo_name, 12)
        result = make_routing("MP").route_all(
            topo, IDENTITY, toy_app().commodities()
        )
        for rc in result.routed:
            hops = sum(1 for n in rc.paths[0][0] if is_switch(n))
            assert hops == topo.hop_distance(rc.src_slot, rc.dst_slot)

    def test_mp_avoids_loaded_links(self):
        """Two equal flows between diagonal corners must not share links."""
        g = CoreGraph("diag")
        for i in range(4):
            g.add_core(f"c{i}")
        g.add_flow("c0", "c3", 100.0)
        g.add_flow("c1", "c2", 100.0)
        topo = make_topology("mesh", 4)  # 2x2
        result = make_routing("MP").route_all(
            topo, {i: i for i in range(4)}, g.commodities()
        )
        assert result.max_link_load(topo) == pytest.approx(100.0)

    def test_quadrant_toggle_gives_same_hop_count(self):
        from repro.routing.minimum_path import MinimumPathRouting

        topo = make_topology("mesh", 12)
        comms = toy_app().commodities()
        with_q = MinimumPathRouting(use_quadrant=True).route_all(
            topo, IDENTITY, comms
        )
        without_q = MinimumPathRouting(use_quadrant=False).route_all(
            topo, IDENTITY, comms
        )
        assert with_q.weighted_average_hops() == pytest.approx(
            without_q.weighted_average_hops()
        )


class TestSplitting:
    def test_sm_splits_across_disjoint_min_paths(self):
        """An 800 MB/s diagonal flow must split 400/400 in a 2x2 mesh."""
        g = CoreGraph("one")
        for i in range(4):
            g.add_core(f"c{i}")
        g.add_flow("c0", "c3", 800.0)
        topo = make_topology("mesh", 4)
        result = make_routing("SM").route_all(
            topo, {i: i for i in range(4)}, g.commodities()
        )
        assert result.max_link_load(topo) == pytest.approx(400.0)
        assert len(result.routed[0].paths) == 2

    def test_sm_cannot_split_single_path(self):
        """Butterfly has no path diversity: SM degenerates to MP."""
        result = route("butterfly", "SM")
        for rc in result.routed:
            assert len(rc.paths) == 1

    def test_sa_no_worse_than_mp_on_max_load(self):
        for topo_name in ("mesh", "torus", "hypercube", "clos"):
            topo = make_topology(topo_name, 12)
            comms = toy_app().commodities()
            mp = make_routing("MP").route_all(topo, IDENTITY, comms)
            sa = make_routing("SA").route_all(topo, IDENTITY, comms)
            assert sa.max_link_load(topo) <= mp.max_link_load(topo) + 1e-6

    def test_sm_merges_chunks_on_same_path(self):
        from repro.routing.split import SplitMinPathRouting

        topo = make_topology("mesh", 12)
        routing = SplitMinPathRouting(chunks=4)
        loads = EdgeLoads()
        paths = routing.route_commodity(topo, 4, 5, 100.0, loads)
        # Adjacent slots: one min path, all chunks merged.
        assert len(paths) == 1
        assert paths[0][1] == pytest.approx(100.0)

    def test_invalid_chunks_rejected(self):
        from repro.routing.split import SplitMinPathRouting

        with pytest.raises(ValueError):
            SplitMinPathRouting(chunks=0)


class TestResultMetrics:
    def test_weighted_average_hops_range(self):
        result = route("mesh", "MP")
        assert 2.0 <= result.weighted_average_hops() <= 7.0

    def test_clos_hops_exactly_three(self):
        result = route("clos", "MP")
        assert result.weighted_average_hops() == pytest.approx(3.0)

    def test_butterfly_hops_exactly_two(self):
        result = route("butterfly", "MP")
        assert result.weighted_average_hops() == pytest.approx(2.0)

    def test_ordering_do_mp_sm_sa(self):
        """Figure 9(a) shape: DO >= MP >= SM >= SA on max link load."""
        topo = make_topology("mesh", 12)
        comms = toy_app().commodities()
        loads = {}
        for code in ROUTING_CODES:
            result = make_routing(code).route_all(topo, IDENTITY, comms)
            loads[code] = result.max_link_load(topo)
        assert loads["DO"] >= loads["MP"] - 1e-6
        assert loads["MP"] >= loads["SM"] - 1e-6
        assert loads["SM"] >= loads["SA"] - 1e-6
