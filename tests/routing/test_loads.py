"""EdgeLoads ledger tests."""

import pytest

from repro.routing.loads import EdgeLoads


class TestEdgeLoads:
    def test_empty(self):
        loads = EdgeLoads()
        assert loads.get("a", "b") == 0.0
        assert loads.max_load() == 0.0
        assert loads.total == 0.0
        assert len(loads) == 0

    def test_add_accumulates(self):
        loads = EdgeLoads()
        loads.add("a", "b", 100.0)
        loads.add("a", "b", 50.0)
        assert loads.get("a", "b") == pytest.approx(150.0)
        assert len(loads) == 1

    def test_direction_matters(self):
        loads = EdgeLoads()
        loads.add("a", "b", 100.0)
        assert loads.get("b", "a") == 0.0

    def test_add_path(self):
        loads = EdgeLoads()
        loads.add_path(["a", "b", "c", "d"], 10.0)
        assert loads.get("a", "b") == 10.0
        assert loads.get("b", "c") == 10.0
        assert loads.get("c", "d") == 10.0
        assert loads.total == pytest.approx(30.0)

    def test_max_load_with_edge_filter(self):
        loads = EdgeLoads()
        loads.add("a", "b", 100.0)
        loads.add("b", "c", 300.0)
        assert loads.max_load() == 300.0
        assert loads.max_load([("a", "b")]) == 100.0
        assert loads.max_load([("x", "y")]) == 0.0

    def test_copy_is_independent(self):
        loads = EdgeLoads()
        loads.add("a", "b", 100.0)
        clone = loads.copy()
        clone.add("a", "b", 50.0)
        assert loads.get("a", "b") == 100.0
        assert clone.get("a", "b") == 150.0

    def test_total_upper_bounds_any_edge(self):
        loads = EdgeLoads()
        loads.add_path(["a", "b", "c"], 7.0)
        loads.add("a", "b", 3.0)
        assert loads.total >= loads.max_load()
