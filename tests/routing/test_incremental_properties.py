"""Property-based bit-identity tests for the incremental delta engine.

The contract of :mod:`repro.routing.incremental` is absolute: evaluating
a slot swap as a delta against a base routing must equal a from-scratch
:func:`~repro.core.evaluate.evaluate_mapping` of the swapped assignment
**exactly** — same paths, float-equal loads (keys and values), hops,
power, cost and feasibility — for every routing function and topology
family, across arbitrary swap *sequences* (each step's candidate record
becomes the next step's base, exercising record promotion, checkpoint
forks and divergence tracking).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import random_core_graph
from repro.core.constraints import Constraints
from repro.core.coregraph import CoreGraph
from repro.core.evaluate import evaluate_mapping
from repro.core.greedy import initial_greedy_mapping
from repro.core.memo import MemoizedMappingEvaluator
from repro.core.objectives import make_objective
from repro.errors import UnsupportedRoutingError
from repro.physical.estimate import NetworkEstimator
from repro.routing.incremental import (
    IncrementalRoutingEngine,
    swap_assignment,
)
from repro.routing.library import make_routing
from repro.topology.library import make_topology

TOPOLOGIES = ("mesh", "torus", "butterfly", "clos")
ROUTINGS = ("DO", "MP", "SM", "SA")

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_identical(incremental, scratch):
    """Float-exact equality of every metric the evaluation exposes."""
    assert incremental.assignment == scratch.assignment
    assert incremental.avg_hops == scratch.avg_hops
    assert incremental.max_link_load == scratch.max_link_load
    assert incremental.bandwidth_feasible == scratch.bandwidth_feasible
    assert incremental.overflow_mb_s == scratch.overflow_mb_s
    assert incremental.qos_feasible == scratch.qos_feasible
    assert incremental.power_mw == scratch.power_mw
    assert incremental.power.switch_dynamic == scratch.power.switch_dynamic
    assert incremental.power.link_dynamic == scratch.power.link_dynamic
    assert incremental.power.clock == scratch.power.clock
    assert incremental.power.leakage == scratch.power.leakage
    assert incremental.cost == scratch.cost
    assert incremental.feasible == scratch.feasible
    inc_loads = dict(incremental.routing_result.loads.items())
    ref_loads = dict(scratch.routing_result.loads.items())
    assert inc_loads == ref_loads  # float-exact, same key set
    assert (
        incremental.routing_result.loads.total
        == scratch.routing_result.loads.total
    )
    for a, b in zip(
        incremental.routing_result.routed, scratch.routing_result.routed
    ):
        assert a.src_slot == b.src_slot
        assert a.dst_slot == b.dst_slot
        assert a.paths == b.paths
        assert a.hops == b.hops


@SLOW
@given(
    st.integers(4, 8),         # cores
    st.integers(0, 500),       # app seed
    st.sampled_from(TOPOLOGIES),
    st.sampled_from(ROUTINGS),
    st.lists(                  # swap sequence over slots
        st.tuples(st.integers(0, 11), st.integers(0, 11)),
        min_size=1,
        max_size=4,
    ),
)
def test_swap_sequence_matches_from_scratch(
    n_cores, seed, topo_name, code, swaps
):
    app = random_core_graph(n_cores, seed=seed)
    topology = make_topology(topo_name, 12)
    routing = make_routing(code)
    constraints = Constraints()
    estimator = NetworkEstimator()
    objective = make_objective("hops")
    memo = MemoizedMappingEvaluator(
        app, topology, routing, constraints, estimator
    )
    # Pin the self-tuning evaluator to the delta engine: left adaptive,
    # small MP/SM/SA apps would serve these swaps from-scratch and the
    # property would compare evaluate_mapping with itself.
    memo._delta_mode = True
    memo._probes_left = 0
    assignment = initial_greedy_mapping(app, topology)
    for s1, s2 in swaps:
        s1 %= topology.num_slots
        s2 %= topology.num_slots
        try:
            incremental = memo.evaluate_swap(
                assignment, s1, s2, with_floorplan=False
            )
        except UnsupportedRoutingError:
            return  # e.g. DO on Clos — the selector reports these combos
        assignment = swap_assignment(assignment, s1, s2)
        scratch = evaluate_mapping(
            app,
            topology,
            assignment,
            routing,
            constraints,
            estimator=estimator,
            with_floorplan=False,
        )
        incremental.cost = objective.cost(incremental)
        scratch.cost = objective.cost(scratch)
        _assert_identical(incremental, scratch)
    # The pinned mode really did route through the delta engine.
    assert memo._engine is not None


@SLOW
@given(
    st.integers(4, 7),
    st.integers(0, 500),
    st.sampled_from(TOPOLOGIES),
    st.sampled_from(("MP", "SM")),
    st.integers(0, 11),
    st.integers(0, 11),
)
def test_memo_swap_hit_returns_same_object(
    n_cores, seed, topo_name, code, a, b
):
    """Evaluating the identical swap twice must serve the memoized
    evaluation object — the memo stays the outer layer."""
    app = random_core_graph(n_cores, seed=seed)
    topology = make_topology(topo_name, 12)
    memo = MemoizedMappingEvaluator(
        app, topology, make_routing(code), Constraints(), NetworkEstimator()
    )
    base = initial_greedy_mapping(app, topology)
    s1, s2 = a % topology.num_slots, b % topology.num_slots
    first = memo.evaluate_swap(base, s1, s2, with_floorplan=False)
    again = memo.evaluate_swap(base, s1, s2, with_floorplan=False)
    assert again is first


def _app_with_silent_core() -> CoreGraph:
    """Four communicating cores plus one that appears in no commodity."""
    app = CoreGraph("silent-core")
    for name in ("a", "b", "c", "d", "mute"):
        app.add_core(name)
    app.add_flow("a", "b", 400.0)
    app.add_flow("b", "c", 300.0)
    app.add_flow("c", "d", 200.0)
    app.add_flow("d", "a", 100.0)
    return app


def test_first_dirty_index_silent_core_swap():
    """A swap moving a commodity-less core dirties nothing: the engine
    must report first-dirty == len(commodities) and splice the entire
    base routing through unchanged."""
    app = _app_with_silent_core()
    topology = make_topology("mesh", app.num_cores)
    routing = make_routing("MP")
    engine = IncrementalRoutingEngine(
        app, topology, routing, NetworkEstimator()
    )
    assignment = initial_greedy_mapping(app, topology)
    record = engine.route_base(assignment)
    mute_slot = assignment[app.core_index("mute")]
    free = sorted(
        set(range(topology.num_slots)) - set(assignment.values())
    )[0]
    n = len(app.commodities())
    assert engine.first_dirty_index(record, mute_slot, free) == n
    assert engine.dirty_indices(record, mute_slot, free) == set()
    swapped = engine.route_swap(record, mute_slot, free)
    # Entire routing shared verbatim: same objects, same ledger.
    assert swapped.routed is record.routed
    assert swapped.loads is record.loads
    assert swapped.assignment == swap_assignment(
        assignment, mute_slot, free
    )
    # And the spliced record still evaluates exactly like from-scratch.
    memo = MemoizedMappingEvaluator(
        app, topology, routing, Constraints(), NetworkEstimator()
    )
    incremental = memo.evaluate_swap(
        assignment, mute_slot, free, with_floorplan=False
    )
    scratch = evaluate_mapping(
        app,
        topology,
        swapped.assignment,
        routing,
        Constraints(),
        estimator=NetworkEstimator(),
        with_floorplan=False,
    )
    _assert_identical(incremental, scratch)


def test_first_dirty_index_orders_by_commodity_rank():
    """The first dirty index is the earliest commodity touching either
    swapped core — commodities are ranked by decreasing bandwidth."""
    app = _app_with_silent_core()
    topology = make_topology("mesh", app.num_cores)
    engine = IncrementalRoutingEngine(
        app, topology, make_routing("MP"), NetworkEstimator()
    )
    assignment = initial_greedy_mapping(app, topology)
    record = engine.route_base(assignment)
    # Swapping core "d"'s slot with a free slot dirties exactly the
    # commodities involving d: c->d (rank 2) and d->a (rank 3).
    d_slot = assignment[app.core_index("d")]
    free = sorted(
        set(range(topology.num_slots)) - set(assignment.values())
    )[0]
    assert engine.dirty_indices(record, d_slot, free) == {2, 3}
    assert engine.first_dirty_index(record, d_slot, free) == 2
