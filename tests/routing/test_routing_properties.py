"""Property-based tests (hypothesis) for routing and route-table
invariants on random applications across the whole topology library.

Three families of invariants:

* every computed route is a connected path from the source NI (terminal)
  to the destination NI, through switches only;
* link loads are conserved: the aggregate per-edge ledger equals the sum
  of the per-flow demands crossing each edge;
* dimension-ordered routes on mesh/torus resolve X strictly before Y
  (never a Y->X turn — the classic deadlock-freedom argument).
"""

from __future__ import annotations

import math
from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import random_core_graph
from repro.core.greedy import initial_greedy_mapping
from repro.routing.library import make_routing
from repro.routing.loads import EdgeLoads
from repro.simulation.routes import RouteTable
from repro.topology.base import is_switch, is_term, term
from repro.topology.library import make_topology

LIBRARY_NAMES = (
    "mesh",
    "torus",
    "hypercube",
    "clos",
    "butterfly",
    "star",
    "ring",
)

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

app_params = st.tuples(
    st.integers(4, 10),   # cores
    st.integers(0, 1000),  # seed
)


def _routed(topo_name, n_cores, seed, code):
    app = random_core_graph(n_cores, seed=seed)
    topology = make_topology(topo_name, 12)
    assignment = initial_greedy_mapping(app, topology)
    result = make_routing(code).route_all(
        topology, assignment, app.commodities()
    )
    return app, topology, assignment, result


# ----------------------------------------------------------------------
# routes are connected NI -> NI paths
# ----------------------------------------------------------------------
@SLOW
@given(
    app_params,
    st.sampled_from(LIBRARY_NAMES),
    st.sampled_from(["MP", "SM", "SA"]),
)
def test_routes_are_connected_ni_to_ni_paths(params, topo_name, code):
    n_cores, seed = params
    app, topology, assignment, result = _routed(
        topo_name, n_cores, seed, code
    )
    graph = topology.graph
    for rc in result.routed:
        assert rc.paths, "commodity routed to zero paths"
        for path, bw in rc.paths:
            assert bw > 0
            assert path[0] == term(assignment[rc.commodity.src])
            assert path[-1] == term(assignment[rc.commodity.dst])
            assert all(is_switch(node) for node in path[1:-1])
            for u, v in zip(path, path[1:]):
                assert graph.has_edge(u, v)
            # A path never revisits a node (no routing loops).
            assert len(set(path)) == len(path)


# ----------------------------------------------------------------------
# link-load conservation
# ----------------------------------------------------------------------
@SLOW
@given(
    app_params,
    st.sampled_from(LIBRARY_NAMES),
    st.sampled_from(["MP", "SM", "SA"]),
)
def test_link_loads_are_conserved(params, topo_name, code):
    """The routing ledger equals the per-flow demands re-accumulated
    edge by edge: nothing is dropped, duplicated or smeared."""
    n_cores, seed = params
    app, topology, assignment, result = _routed(
        topo_name, n_cores, seed, code
    )
    recomputed = EdgeLoads()
    for rc in result.routed:
        assert rc.validate_conservation()
        for path, bw in rc.paths:
            recomputed.add_path(path, bw)
    ledger = dict(result.loads.items())
    rebuilt = dict(recomputed.items())
    assert set(ledger) == set(rebuilt)
    for edge, load in rebuilt.items():
        assert math.isclose(ledger[edge], load, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(
        result.loads.total, recomputed.total, rel_tol=1e-9
    )


# ----------------------------------------------------------------------
# dimension order: X resolves strictly before Y
# ----------------------------------------------------------------------
def _axis_moves(topology, path):
    """Classify each switch-to-switch move of a path as 'x' or 'y'."""
    switches = [n for n in path if is_switch(n)]
    moves = []
    for u, v in zip(switches, switches[1:]):
        xu, yu = topology.position(u)
        xv, yv = topology.position(v)
        if xu != xv:
            assert yu == yv, f"diagonal move {u} -> {v}"
            moves.append("x")
        else:
            assert yu != yv, f"null move {u} -> {v}"
            moves.append("y")
    return moves


@SLOW
@given(
    st.sampled_from(["mesh", "torus"]),
    st.integers(4, 16),
    st.integers(0, 15),
    st.integers(0, 15),
)
def test_dor_never_turns_y_to_x(topo_name, n_cores, src, dst):
    topology = make_topology(topo_name, n_cores)
    src %= topology.num_slots
    dst %= topology.num_slots
    if src == dst:
        return
    path = topology.dor_path(src, dst)
    moves = _axis_moves(topology, path)
    assert moves == sorted(moves, key=lambda m: m != "x"), (
        f"Y->X turn in dimension-ordered route {path}"
    )


@SLOW
@given(
    st.sampled_from(["mesh", "torus", "hypercube"]),
    st.integers(4, 16),
    st.integers(0, 15),
    st.integers(0, 15),
)
def test_dor_path_is_minimal(topo_name, n_cores, src, dst):
    """Dimension-ordered routes never exceed the hop distance."""
    topology = make_topology(topo_name, n_cores)
    src %= topology.num_slots
    dst %= topology.num_slots
    if src == dst:
        return
    path = topology.dor_path(src, dst)
    switches = sum(1 for n in path if is_switch(n))
    assert switches == topology.hop_distance(src, dst)


# ----------------------------------------------------------------------
# simulator route tables terminate at the right NI
# ----------------------------------------------------------------------
@SLOW
@given(
    st.sampled_from(LIBRARY_NAMES),
    st.integers(0, 11),
    st.integers(0, 11),
    st.integers(0, 1000),
)
def test_route_table_walk_reaches_destination(topo_name, src, dst, seed):
    """Following next_hop from any source always ejects at the
    destination NI within a hop bound — the invariant the flit
    simulator (and hence every campaign) rests on."""
    topology = make_topology(topo_name, 12)
    src %= topology.num_slots
    dst %= topology.num_slots
    if src == dst:
        return
    table = RouteTable(topology)
    rng = Random(seed)
    node = topology.switch_of(src)
    for _ in range(topology.graph.number_of_nodes()):
        node = table.next_hop(node, dst, rng)
        if is_term(node):
            break
    assert node == term(dst)
