"""End-to-end reproduction scenarios (the paper's Section 6 narratives).

These are the integration tests that pin the headline results:

* VOPD: butterfly is feasible and wins (Section 6.1, Figure 6);
* MPEG4: min-path fails everywhere, butterfly has no feasible mapping,
  mesh beats torus on area and power (Section 6.1, Figure 7(b));
* DSP filter: butterfly selected and generated with 4 switches
  (Section 6.4, Figure 10(b)).
"""

import pytest

from repro.core.constraints import Constraints
from repro.core.mapper import MapperConfig
from repro.core.selector import select_topology
from repro.errors import MappingInfeasibleError
from repro.sunmap import run_sunmap

CONVERGE = MapperConfig(converge=True, max_rounds=10)


@pytest.fixture(scope="module")
def vopd_selection():
    from repro.apps import vopd

    return select_topology(
        vopd(), routing="MP", objective="hops", config=CONVERGE
    )


@pytest.fixture(scope="module")
def mpeg4_sm_selection():
    from repro.apps import mpeg4

    return select_topology(
        mpeg4(), routing="SM", objective="power", config=CONVERGE
    )


class TestVopd:
    def test_butterfly_wins_on_hops(self, vopd_selection):
        assert vopd_selection.best_name.startswith("butterfly")

    def test_all_five_topologies_feasible(self, vopd_selection):
        assert len(vopd_selection.feasible) == 5

    def test_hop_ordering_matches_figure_6a(self, vopd_selection):
        evs = vopd_selection.evaluations
        hops = {name.split("-")[0]: ev.avg_hops for name, ev in evs.items()}
        assert hops["butterfly"] == pytest.approx(2.0)
        assert hops["clos"] == pytest.approx(3.0)
        assert hops["butterfly"] <= hops["torus"] <= hops["mesh"] + 0.2
        assert hops["mesh"] < hops["clos"]

    def test_butterfly_least_switches_figure_6b(self, vopd_selection):
        evs = vopd_selection.evaluations
        res = {n.split("-")[0]: ev.resources for n, ev in evs.items()}
        bfly = res["butterfly"].num_switches
        assert all(
            bfly <= r.num_switches for r in res.values()
        )
        # ... but more links than the mesh (paper Fig. 6(b)).
        assert res["butterfly"].num_links > res["mesh"].num_links

    def test_mesh_cheaper_than_torus_figure_3d(self, vopd_selection):
        evs = {n.split("-")[0]: ev for n, ev in vopd_selection.evaluations.items()}
        mesh, torus = evs["mesh"], evs["torus"]
        # Torus buys ~10% delay with more area and power (ratios 0.9 /
        # 1.06 / 1.22 in the paper's Figure 3(d)).
        assert torus.avg_hops < mesh.avg_hops
        assert 1.0 < torus.area_mm2 / mesh.area_mm2 < 1.25
        assert 1.02 < torus.power_mw / mesh.power_mw < 1.5

    def test_butterfly_lowest_power_figure_6d(self, vopd_selection):
        evs = {n.split("-")[0]: ev for n, ev in vopd_selection.evaluations.items()}
        bfly_power = evs["butterfly"].power_mw
        for name, ev in evs.items():
            if name != "butterfly":
                assert bfly_power < ev.power_mw

    def test_butterfly_lowest_area_figure_6c(self, vopd_selection):
        evs = {n.split("-")[0]: ev for n, ev in vopd_selection.evaluations.items()}
        bfly_area = evs["butterfly"].area_mm2
        for name, ev in evs.items():
            if name != "butterfly":
                assert bfly_area <= ev.area_mm2 + 1e-6


class TestMpeg4:
    def test_min_path_infeasible_everywhere(self):
        from repro.apps import mpeg4

        selection = select_topology(
            mpeg4(), routing="MP", objective="hops",
            config=MapperConfig(converge=False),
        )
        assert selection.best is None

    def test_butterfly_has_no_feasible_mapping(self, mpeg4_sm_selection):
        names = {
            n.split("-")[0]
            for n, ev in mpeg4_sm_selection.evaluations.items()
            if not ev.feasible
        }
        assert "butterfly" in names

    def test_other_topologies_feasible_with_split(self, mpeg4_sm_selection):
        feasible = {
            n.split("-")[0] for n in mpeg4_sm_selection.feasible
        }
        assert feasible == {"mesh", "torus", "hypercube", "clos"}

    def test_power_winner_is_mesh_or_clos_figure_7b(self, mpeg4_sm_selection):
        """The paper's own Fig. 7(b) table has Clos at the lowest power
        (445.4 mW vs mesh 504.1) while the narrative picks mesh on the
        combined area/power/delay judgment; torus and hypercube are
        dominated either way."""
        best = mpeg4_sm_selection.best_name
        assert best.startswith("mesh") or best.startswith("clos")

    def test_mesh_beats_torus_on_area_and_power(self, mpeg4_sm_selection):
        evs = {
            n.split("-")[0]: ev
            for n, ev in mpeg4_sm_selection.evaluations.items()
        }
        assert evs["mesh"].area_mm2 < evs["torus"].area_mm2
        assert evs["mesh"].power_mw < evs["torus"].power_mw
        assert evs["mesh"].area_mm2 < evs["hypercube"].area_mm2


class TestDsp:
    def test_butterfly_selected_and_generated(self, dsp_app):
        report = run_sunmap(
            dsp_app,
            routing="MP",
            objective="hops",
            constraints=Constraints(link_capacity_mb_s=1000.0),
            config=CONVERGE,
        )
        assert report.best_topology_name.startswith("butterfly")
        # Figure 10(b): only 4 of the six 3x3 switches remain.
        assert len(report.netlist.switches) == 4
        assert all(s.n_in == 3 and s.n_out == 3 for s in report.netlist.switches)
        assert "sc_main" in report.systemc

    def test_fallback_escalates_to_split_routing(self, dsp_app):
        report = run_sunmap(
            dsp_app,
            routing="MP",
            objective="hops",
            constraints=Constraints(link_capacity_mb_s=500.0),
            config=MapperConfig(converge=False),
        )
        assert report.selection.routing_code in ("SM", "SA")
        assert len(report.attempted_routings) >= 2

    def test_impossible_everywhere_raises(self, dsp_app):
        with pytest.raises(MappingInfeasibleError):
            run_sunmap(
                dsp_app,
                constraints=Constraints(link_capacity_mb_s=1.0),
                config=MapperConfig(converge=False, max_rounds=1),
            )

    def test_generate_false_returns_report_without_netlist(self, dsp_app):
        report = run_sunmap(
            dsp_app,
            constraints=Constraints(link_capacity_mb_s=1.0),
            config=MapperConfig(converge=False, max_rounds=1),
            generate=False,
        )
        assert report.best is None
        assert report.netlist is None
        assert "NO FEASIBLE" in report.summary()

    def test_empty_topology_list_raises_value_error(self, dsp_app):
        """An empty library is a caller bug, not a 'no feasible
        topology' outcome — both entry points refuse it up front."""
        with pytest.raises(ValueError, match="empty topologies list"):
            run_sunmap(dsp_app, topologies=[])
        with pytest.raises(ValueError, match="empty topologies list"):
            select_topology(dsp_app, topologies=[])
