"""Span tracing: nesting, retrospective emit, sinks, JSONL round-trip."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    JsonlSink,
    RingSink,
    add_sink,
    emit,
    remove_sink,
    span,
    tracing_enabled,
)


@pytest.fixture
def ring():
    """Install a RingSink for the duration of one test."""
    sink = RingSink()
    add_sink(sink)
    yield sink
    remove_sink(sink)


class TestSpans:
    def test_off_by_default_is_noop(self):
        assert not tracing_enabled()
        with span("engine.run", jobs=3) as sp:
            sp.set("ignored", 1)  # must not raise with tracing off

    def test_nesting_records_parent_ids(self, ring):
        with span("outer") as outer:
            with span("inner"):
                pass
            outer.set("tagged", True)
        inner_rec, outer_rec = ring.spans()
        assert inner_rec["name"] == "inner"
        assert inner_rec["parent"] == outer_rec["id"]
        assert outer_rec["parent"] is None
        assert outer_rec["attrs"] == {"tagged": True}
        assert outer_rec["duration_s"] >= inner_rec["duration_s"] >= 0

    def test_siblings_share_a_parent(self, ring):
        with span("outer"):
            with span("a"):
                pass
            with span("b"):
                pass
        a, b, outer = ring.spans()
        assert a["parent"] == b["parent"] == outer["id"]
        assert a["id"] != b["id"]

    def test_emit_parents_onto_open_span(self, ring):
        with span("outer"):
            emit("engine.job", 0.5, kind="evaluation")
        job, outer = ring.spans()
        assert job["parent"] == outer["id"]
        assert job["duration_s"] == 0.5
        assert job["attrs"] == {"kind": "evaluation"}
        # Retrospective start time is backdated by the duration.
        assert job["ts"] <= outer["ts"] + outer["duration_s"]

    def test_exception_still_records_the_span(self, ring):
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        assert [s["name"] for s in ring.spans()] == ["failing"]


class TestSinks:
    def test_add_sink_is_idempotent(self):
        sink = RingSink()
        add_sink(sink)
        add_sink(sink)
        try:
            with span("once"):
                pass
            assert len(sink.spans()) == 1
        finally:
            remove_sink(sink)
        remove_sink(sink)  # second removal is a silent no-op

    def test_ring_sink_bounds_memory(self):
        sink = RingSink(maxlen=3)
        add_sink(sink)
        try:
            for i in range(5):
                with span(f"s{i}"):
                    pass
        finally:
            remove_sink(sink)
        assert [s["name"] for s in sink.spans()] == ["s2", "s3", "s4"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        add_sink(sink)
        try:
            with span("outer", topology="mesh-3x4"):
                with span("inner"):
                    pass
        finally:
            remove_sink(sink)
            sink.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["parent"] == records[1]["id"]
        assert records[1]["attrs"] == {"topology": "mesh-3x4"}
        # Every record is one self-contained JSON object with the schema keys.
        for record in records:
            assert set(record) == {
                "name", "id", "parent", "ts", "duration_s", "attrs"
            }
