"""MetricsRegistry: families, labels, concurrency, exposition format."""

from __future__ import annotations

import threading

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, get_registry


class TestCounters:
    def test_counts_and_snapshots(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help text")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        snap = reg.snapshot()["repro_test_total"]
        assert snap["type"] == "counter"
        assert snap["series"] == [{"labels": {}, "value": 3.0}]

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "h")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_jobs_total", "h", ("kind", "status"))
        c.inc(kind="evaluation", status="cached")
        c.inc(2, kind="evaluation", status="computed")
        assert c.value(kind="evaluation", status="cached") == 1
        assert c.value(kind="evaluation", status="computed") == 2
        assert c.value(kind="simulation", status="cached") == 0

    def test_wrong_label_set_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_jobs_total", "h", ("kind",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(kind="x", extra="y")


class TestRegistration:
    def test_reregistration_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "h")
        b = reg.counter("repro_x_total", "h")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "h")
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total", "h")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "h", ("kind",))
        with pytest.raises(ValueError):
            reg.counter("repro_x_total", "h", ("status",))

    def test_reset_keeps_families_clears_series(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "h")
        c.inc(5)
        reg.reset()
        assert "repro_x_total" in reg.snapshot()
        assert c.value() == 0


class TestGaugesAndHistograms:
    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_inflight", "h")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_s", "h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        series = reg.snapshot()["repro_s"]["series"][0]
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(56.05)
        # Bucket counts are cumulative; +Inf is implicit in ``count``.
        assert series["buckets"] == {"0.1": 1, "1": 3, "10": 4}

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_s", "h", buckets=(1.0, 1.0))


class TestConcurrency:
    def test_parallel_increments_do_not_lose_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_hot_total", "h", ("worker",))

        def hammer(w):
            for _ in range(2000):
                c.inc(worker=str(w % 2))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(worker="0") + c.value(worker="1") == 16000


class TestExposition:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_jobs_total", "Jobs handled", ("kind",))
        c.inc(3, kind="evaluation")
        h = reg.histogram("repro_s", "Latency", buckets=(0.5, 1.0))
        h.observe(0.25)
        text = reg.exposition()
        lines = text.splitlines()
        assert "# HELP repro_jobs_total Jobs handled" in lines
        assert "# TYPE repro_jobs_total counter" in lines
        assert 'repro_jobs_total{kind="evaluation"} 3' in lines
        assert 'repro_s_bucket{le="0.5"} 1' in lines
        assert 'repro_s_bucket{le="+Inf"} 1' in lines
        assert "repro_s_sum 0.25" in lines
        assert "repro_s_count 1" in lines

    def test_exposition_escapes_label_values(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "h", ("tag",))
        c.inc(tag='a"b\\c\nd')
        line = [
            ln for ln in reg.exposition().splitlines()
            if ln.startswith("repro_x_total{")
        ][0]
        assert line == 'repro_x_total{tag="a\\"b\\\\c\\nd"} 1'


class TestProcessRegistry:
    def test_instrumented_modules_preregister_families(self):
        """A cold process already exposes the catalog's key families.

        This is what makes the service's ``metrics`` request useful
        before the first byte of work: families exist with zero values.
        """
        # Importing the layers registers their instruments.
        import repro.engine.engine  # noqa: F401
        import repro.service.server  # noqa: F401
        import repro.simulation.campaign  # noqa: F401

        names = set(get_registry().snapshot())
        expected = {
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_cache_dedup_total",
            "repro_engine_jobs_total",
            "repro_engine_retries_total",
            "repro_job_seconds",
            "repro_service_requests_total",
            "repro_campaign_points_per_sec",
        }
        assert expected <= names
