"""The passivity contract: observability never changes a result bit.

Every assertion here compares canonical JSON of payloads produced with
tracing + flight recording fully on against payloads produced with
everything off. Only the intentionally volatile blocks (``runtime`` on
campaigns, ``observability`` on sunmap reports) are stripped first —
they hold wall-clock readings, not results.
"""

from __future__ import annotations

import json

from repro.obs import FlightRecorder, RingSink, add_sink, remove_sink
from repro.simulation.campaign import (
    CampaignConfig,
    run_campaign,
    strip_runtime,
)
from repro.sunmap import run_sunmap
from repro.topology.library import make_topology

FAST_CAMPAIGN = dict(
    rates=(0.05, 0.1),
    patterns=("uniform",),
    seeds=(1,),
    warmup=50,
    measure=100,
    drain=50,
)


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def campaign_payload(vopd_app, sim_engine="exact") -> dict:
    topology = make_topology("mesh", vopd_app.num_cores)
    config = CampaignConfig(sim_engine=sim_engine, **FAST_CAMPAIGN)
    result = run_campaign(topology, core_graph=vopd_app, config=config)
    return strip_runtime(result.to_dict())


class TestBitIdentity:
    def test_traced_campaign_is_bit_identical(self, vopd_app):
        baseline = campaign_payload(vopd_app)
        sink = RingSink()
        add_sink(sink)
        try:
            with FlightRecorder(label="campaign"):
                traced = campaign_payload(vopd_app)
        finally:
            remove_sink(sink)
        assert canonical(traced) == canonical(baseline)
        assert any(s["name"] == "campaign.run" for s in sink.spans())

    def test_traced_batch_campaign_is_bit_identical(self, vopd_app):
        baseline = campaign_payload(vopd_app, sim_engine="batch")
        sink = RingSink()
        add_sink(sink)
        try:
            traced = campaign_payload(vopd_app, sim_engine="batch")
        finally:
            remove_sink(sink)
        assert canonical(traced) == canonical(baseline)
        assert any(s["name"] == "batch.simulate" for s in sink.spans())

    def test_recorded_selection_is_bit_identical(self, vopd_app):
        from repro.io import selection_to_dict

        plain = run_sunmap(vopd_app, generate=False)
        recorded = run_sunmap(vopd_app, generate=False, observability=True)
        assert recorded.observability is not None
        assert recorded.observability["label"] == "sunmap:vopd"
        assert canonical(selection_to_dict(recorded.selection)) == canonical(
            selection_to_dict(plain.selection)
        )
        assert recorded.attempted_routings == plain.attempted_routings


class TestOverhead:
    def test_always_on_metrics_overhead_is_small(self, vopd_app):
        """Registry instruments cost <5% on an engine-bound workload.

        Budget smoke only — the committed measurement lives in
        ``BENCH_obs.json`` (see ``benchmarks/bench_obs.py``). Tracing
        is off here, as in any untraced production run; the question is
        what the always-on counters cost.
        """
        # Wall-clock A/B timing is too noisy for CI; instead bound the
        # *instrument traffic* directly. The contract behind the <5%
        # budget is that instruments fire per job / per request, never
        # per simulated flit or cycle — so a campaign that simulates
        # hundreds of thousands of cycles must produce only a handful
        # of registry updates.
        from repro.obs import get_registry

        before = get_registry().snapshot()
        campaign_payload(vopd_app)
        after = get_registry().snapshot()

        def total(snap):
            count = 0.0
            for family in snap.values():
                if family["type"] == "gauge":  # point-in-time, not traffic
                    continue
                for series in family["series"]:
                    count += series.get("value", series.get("count", 0))
            return count

        assert 0 < total(after) - total(before) < 500
