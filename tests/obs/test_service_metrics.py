"""The service ``metrics`` request kind: unified registry over the wire."""

from __future__ import annotations

import asyncio
import json

from repro.service import DesignService
from repro.service.server import submit_async

METRICS = {"v": 1, "kind": "metrics", "params": {}}
SELECT = {
    "v": 1,
    "kind": "select",
    "params": {"app": "vopd", "routing": "MP"},
}


def handle(service: DesignService, payload: dict) -> dict:
    return asyncio.run(service.handle(payload))


class TestMetricsKind:
    def test_snapshot_includes_every_layer(self):
        service = DesignService()
        warm = handle(service, dict(SELECT, id="warm"))
        assert warm["ok"]
        response = handle(service, dict(METRICS, id="m"))
        assert response["ok"]
        assert response["kind"] == "metrics"
        snapshot = response["result"]
        # One registry across layers: cache, engine, retry, dedup and
        # latency families all present in a single response.
        for family in (
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_service_deduped_total",
            "repro_engine_retries_total",
            "repro_engine_jobs_total",
            "repro_job_seconds",
            "repro_service_requests_total",
            "repro_service_request_seconds",
        ):
            assert family in snapshot, family
        # The select above left visible traffic behind.
        jobs = snapshot["repro_engine_jobs_total"]["series"]
        assert any(
            s["labels"] == {"kind": "evaluation", "status": "computed"}
            and s["value"] > 0
            for s in jobs
        )
        latency = snapshot["repro_job_seconds"]["series"]
        assert any(s["count"] > 0 for s in latency)

    def test_metrics_payload_is_json_round_trippable(self):
        service = DesignService()
        response = handle(service, dict(METRICS, id="m"))
        assert json.loads(json.dumps(response)) == response

    def test_answered_even_at_saturation(self):
        """Like ``health``, ``metrics`` bypasses admission control."""
        service = DesignService(max_inflight=1)
        service._admitted = 1  # simulate a saturated service
        response = handle(service, dict(METRICS, id="m"))
        assert response["ok"]
        busy = handle(service, dict(SELECT, id="s"))
        assert not busy["ok"]
        assert busy["error"]["type"] == "ServiceBusyError"

    def test_over_real_tcp(self):
        async def scenario():
            service = DesignService()
            server = await service.start(port=0)
            port = server.sockets[0].getsockname()[1]
            payloads = [dict(SELECT, id="warm"), dict(METRICS, id="m")]
            responses = [r async for r in submit_async(payloads, port=port)]
            server.close()
            await server.wait_closed()
            return responses

        responses = asyncio.run(scenario())
        by_id = {r["id"]: r for r in responses}
        assert by_id["warm"]["ok"]
        metrics = by_id["m"]
        assert metrics["ok"]
        assert "repro_service_requests_total" in metrics["result"]
        served = {
            s["labels"]["kind"]: s["value"]
            for s in metrics["result"]["repro_service_requests_total"]["series"]
        }
        assert served.get("select", 0) >= 1
        assert served.get("metrics", 0) >= 1
