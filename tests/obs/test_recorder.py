"""FlightRecorder reports and the unified logging configuration."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    configure_logging,
    environment_fingerprint,
    span,
    tracing_enabled,
)


class TestFlightRecorder:
    def test_captures_spans_and_counter_deltas(self):
        reg = MetricsRegistry()
        jobs = reg.counter("repro_x_jobs_total", "h", ("kind",))
        jobs.inc(5, kind="evaluation")  # pre-existing traffic
        with FlightRecorder(label="unit", registry=reg) as rec:
            jobs.inc(2, kind="evaluation")
            jobs.inc(1, kind="simulation")
            with span("engine.run", jobs=3):
                pass
        report = rec.report
        assert report.label == "unit"
        assert [s["name"] for s in report.spans] == ["engine.run"]
        # Deltas cover only what moved, relative to the entry snapshot.
        assert report.metrics_delta == {
            "repro_x_jobs_total{kind=evaluation}": 2.0,
            "repro_x_jobs_total{kind=simulation}": 1.0,
        }
        assert report.duration_s >= 0
        assert not tracing_enabled()  # ring uninstalled on exit

    def test_sink_removed_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with FlightRecorder(registry=reg):
                raise RuntimeError("boom")
        assert not tracing_enabled()

    def test_to_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        with FlightRecorder(registry=reg) as rec:
            with span("campaign.run", topology="mesh-3x4"):
                pass
        payload = json.loads(json.dumps(rec.report.to_dict()))
        assert set(payload) == {
            "label", "started_at", "duration_s", "environment",
            "spans", "metrics", "metrics_delta",
        }
        assert payload["environment"] == environment_fingerprint()

    def test_markdown_lists_slowest_spans_first(self):
        reg = MetricsRegistry()
        with FlightRecorder(registry=reg) as rec:
            from repro.obs import emit

            emit("fast", 0.001, kind="a")
            emit("slow", 2.0, kind="b")
        text = rec.report.to_markdown(top=2)
        assert text.index("| slow |") < text.index("| fast |")
        assert "## flight record" in text


class TestLogging:
    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        root = configure_logging(level="INFO", stream=stream)
        configure_logging(level="INFO", stream=stream)
        ours = [h for h in root.handlers if getattr(h, "_repro_obs_handler", False)]
        assert len(ours) == 1

    def test_level_filters_records(self):
        stream = io.StringIO()
        configure_logging(level="WARNING", stream=stream)
        logger = logging.getLogger("repro.obs.testcase")
        logger.info("quiet")
        logger.warning("loud")
        text = stream.getvalue()
        assert "quiet" not in text
        assert "loud" in text

    def test_json_lines_mode(self):
        stream = io.StringIO()
        configure_logging(level="INFO", json=True, stream=stream)
        logging.getLogger("repro.obs.testcase").info("structured %d", 7)
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "structured 7"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.obs.testcase"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="LOUD")
